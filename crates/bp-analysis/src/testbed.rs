//! The end-to-end testbed: device + enterprise network + deployment.
//!
//! A [`Testbed`] reproduces the experimental setup of §VI-A: apps are
//! installed on a provisioned device, their backend endpoints are registered
//! as WAN servers, and the egress path is configured with one of three
//! deployments — no enforcement, full BorderPatrol (Context Manager on the
//! device plus Policy Enforcer and Packet Sanitizer on the network), or a
//! pure on-network baseline.  Every functionality invocation flows through the
//! same packet path the paper's Figure 1 shows, and the testbed records the
//! outcome for the analysis modules.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;

use bp_appsim::app::AppSpec;
use bp_appsim::monkey::Monkey;
use bp_baseline::{FlowSizeThreshold, IpBlocklist};
use bp_core::context::{ContextManager, SharedContextManager};
use bp_core::control::{ControlPlane, EnforcementEndpoint};
use bp_core::enforcer::{EnforcerConfig, EnforcerStats, PolicyEnforcer};
use bp_core::offline::{OfflineAnalyzer, SignatureDatabase};
use bp_core::policy::PolicySet;
use bp_core::sanitizer::PacketSanitizer;
use bp_device::device::{Device, Profile};
use bp_netsim::addr::Endpoint;
use bp_netsim::clock::{LatencyModel, SimDuration};
use bp_netsim::iface::InterfaceMode;
use bp_netsim::kernel::KernelConfig;
use bp_netsim::netfilter::{IptablesRule, RuleAction, RuleMatch};
use bp_netsim::network::{Delivery, EnterpriseNetwork};
use bp_types::{AppId, DeviceId, Error, StackTrace};

/// Which enforcement mechanism is deployed on the testbed.
#[derive(Debug, Clone)]
pub enum Deployment {
    /// No enforcement at all (profiling / baseline traffic collection).
    None,
    /// Full BorderPatrol: Context Manager on-device, Policy Enforcer and
    /// Packet Sanitizer on the network.
    BorderPatrol {
        /// The policy set installed at the enforcer.
        policies: PolicySet,
        /// Enforcer configuration.
        config: EnforcerConfig,
    },
    /// On-network IP/DNS blocklist baseline.
    IpBlocklist(IpBlocklist),
    /// On-network flow-size threshold baseline.
    FlowThreshold(FlowSizeThreshold),
}

/// The outcome of one functionality invocation driven end to end.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The app that ran.
    pub app: AppId,
    /// Name of the functionality.
    pub functionality: String,
    /// Destination address the functionality connected to.
    pub destination: Ipv4Addr,
    /// Ground-truth stack trace at connect time.
    pub stack: StackTrace,
    /// Packets that reached the WAN.
    pub packets_delivered: usize,
    /// Packets dropped inside the enterprise network.
    pub packets_dropped: usize,
    /// Component that dropped packets, if any.
    pub dropped_by: Option<String>,
    /// On-device latency contribution of the hooks.
    pub on_device_latency: SimDuration,
    /// Mean end-to-end latency of delivered packets.
    pub mean_delivery_latency: SimDuration,
}

impl RunOutcome {
    /// True if every packet of the invocation reached the WAN.
    pub fn fully_delivered(&self) -> bool {
        self.packets_dropped == 0 && self.packets_delivered > 0
    }

    /// True if every packet was dropped (the functionality is blocked).
    pub fn fully_blocked(&self) -> bool {
        self.packets_delivered == 0 && self.packets_dropped > 0
    }
}

/// The end-to-end testbed.
pub struct Testbed {
    /// The enterprise network (public so experiments can inspect captures).
    pub network: EnterpriseNetwork,
    /// The provisioned device (public so experiments can tweak the kernel).
    pub device: Device,
    database: SignatureDatabase,
    context_manager: Option<Arc<Mutex<ContextManager>>>,
    enforcer: Option<Arc<Mutex<PolicyEnforcer>>>,
    /// Control plane owning the enforcer's authoritative state (BorderPatrol
    /// deployments only); every policy/database mutation is a transaction.
    control: Option<ControlPlane>,
    sanitizer: Option<Arc<Mutex<PacketSanitizer>>>,
    host_addresses: BTreeMap<String, Ipv4Addr>,
    next_host_octet: u16,
    outcomes: Vec<RunOutcome>,
}

impl Testbed {
    /// Create a testbed with the given deployment, a TAP-backed device and the
    /// default latency model.
    pub fn new(deployment: Deployment) -> Self {
        Self::with_options(deployment, InterfaceMode::Tap, LatencyModel::default())
    }

    /// Create a testbed with explicit interface mode and latency model.
    pub fn with_options(
        deployment: Deployment,
        interface: InterfaceMode,
        latency: LatencyModel,
    ) -> Self {
        let device_id = DeviceId::new(1);
        let mut network = EnterpriseNetwork::new(latency.clone());
        network.attach_device(device_id, interface);

        let mut device = Device::new(device_id, KernelConfig::borderpatrol_prototype());
        device.set_latency_model(latency);

        let mut testbed = Testbed {
            network,
            device,
            database: SignatureDatabase::new(),
            context_manager: None,
            enforcer: None,
            control: None,
            sanitizer: None,
            host_addresses: BTreeMap::new(),
            next_host_octet: 1,
            outcomes: Vec::new(),
        };
        testbed.deploy(deployment);
        testbed
    }

    fn deploy(&mut self, deployment: Deployment) {
        match deployment {
            Deployment::None => {}
            Deployment::BorderPatrol { policies, config } => {
                let context = ContextManager::new().shared();
                self.device
                    .install_hook(Box::new(SharedContextManager(Arc::clone(&context))));
                self.context_manager = Some(context);

                // The control plane owns the authoritative state; registering
                // the enforcer installs the initial generation into it.
                let mut control = ControlPlane::new(SignatureDatabase::new(), policies, config);
                let enforcer = Arc::new(Mutex::new(PolicyEnforcer::new(
                    SignatureDatabase::new(),
                    PolicySet::new(),
                    config,
                )));
                control.register(Arc::clone(&enforcer) as Arc<dyn EnforcementEndpoint>);
                self.control = Some(control);
                let sanitizer = Arc::new(Mutex::new(PacketSanitizer::new()));
                let chain = self.network.chain_mut();
                chain.add_rule(IptablesRule {
                    matcher: RuleMatch::any(),
                    action: RuleAction::Queue(1),
                });
                chain.add_rule(IptablesRule {
                    matcher: RuleMatch::any(),
                    action: RuleAction::Queue(2),
                });
                chain.register_queue(
                    1,
                    Arc::clone(&enforcer) as Arc<Mutex<dyn bp_netsim::netfilter::QueueHandler>>,
                );
                chain.register_queue(
                    2,
                    Arc::clone(&sanitizer) as Arc<Mutex<dyn bp_netsim::netfilter::QueueHandler>>,
                );
                self.enforcer = Some(enforcer);
                self.sanitizer = Some(sanitizer);
            }
            Deployment::IpBlocklist(blocklist) => {
                let handler = Arc::new(Mutex::new(blocklist));
                let chain = self.network.chain_mut();
                chain.add_rule(IptablesRule {
                    matcher: RuleMatch::any(),
                    action: RuleAction::Queue(1),
                });
                chain.register_queue(1, handler);
            }
            Deployment::FlowThreshold(threshold) => {
                let handler = Arc::new(Mutex::new(threshold));
                let chain = self.network.chain_mut();
                chain.add_rule(IptablesRule {
                    matcher: RuleMatch::any(),
                    action: RuleAction::Queue(1),
                });
                chain.register_queue(1, handler);
            }
        }
    }

    /// Replace the enforcer's policy set through a one-shot control-plane
    /// transaction (BorderPatrol deployments only).
    pub fn install_policies(&mut self, policies: PolicySet) {
        if let Some(control) = &mut self.control {
            control
                .begin()
                .replace_policies(policies)
                .commit()
                .expect("typed policy replacement cannot be rejected");
        }
    }

    /// The control plane of a BorderPatrol deployment, for staging richer
    /// transactions (validation dry-runs, rollbacks) than
    /// [`Testbed::install_policies`] offers.
    pub fn control_plane(&mut self) -> Option<&mut ControlPlane> {
        self.control.as_mut()
    }

    /// The enforcer's statistics, if BorderPatrol is deployed.
    pub fn enforcer_stats(&self) -> Option<EnforcerStats> {
        self.enforcer.as_ref().map(|e| e.lock().stats())
    }

    /// The most recent drop reasons recorded by the enforcer.
    pub fn enforcer_drop_log(&self) -> Vec<String> {
        self.enforcer
            .as_ref()
            .map(|e| e.lock().drop_log())
            .unwrap_or_default()
    }

    /// The sanitizer statistics, if BorderPatrol is deployed.
    pub fn sanitizer_stats(&self) -> Option<bp_core::sanitizer::SanitizerStats> {
        self.sanitizer.as_ref().map(|s| s.lock().stats())
    }

    /// The signature database built by the offline analyzer for installed
    /// apps.  With BorderPatrol deployed this is the control plane's
    /// authoritative database, so out-of-band
    /// [`Testbed::control_plane`] transactions are always reflected here.
    pub fn database(&self) -> &SignatureDatabase {
        match &self.control {
            Some(control) => control.database(),
            None => &self.database,
        }
    }

    /// All recorded run outcomes.
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }

    /// Forget recorded outcomes and network observations (installed apps and
    /// policies are kept).
    pub fn reset_observations(&mut self) {
        self.outcomes.clear();
        self.network.reset_observations();
        if let Some(enforcer) = &self.enforcer {
            enforcer.lock().reset_stats();
        }
    }

    fn address_for_host(&mut self, host: &str) -> Ipv4Addr {
        if let Some(ip) = self.host_addresses.get(host) {
            return *ip;
        }
        let octet = self.next_host_octet;
        self.next_host_octet += 1;
        let ip = Ipv4Addr::new(198, 51, (octet >> 8) as u8, (octet & 0xff) as u8);
        self.host_addresses.insert(host.to_string(), ip);
        ip
    }

    /// Install an app: register its endpoints as WAN servers, run the Offline
    /// Analyzer, register it with the Context Manager (if deployed) and
    /// install it into the device's work profile.
    ///
    /// # Errors
    ///
    /// Propagates apk analysis failures.
    pub fn install_app(&mut self, spec: AppSpec) -> Result<AppId, Error> {
        for host in spec.endpoint_hosts() {
            let ip = self.address_for_host(&host);
            self.network.register_server(host.clone(), ip, 297);
        }

        let apk = spec.build_apk();
        if let Some(control) = &mut self.control {
            // Stage on top of the control plane's *authoritative* database —
            // not the testbed's private copy — so entries installed through
            // `Testbed::control_plane` transactions survive later installs
            // (and `Testbed::database` reads the control plane's state).
            let mut staged = control.database().clone();
            OfflineAnalyzer::new().analyze_into(&apk, &mut staged)?;
            control.begin().swap_database(staged).commit()?;
        } else {
            OfflineAnalyzer::new().analyze_into(&apk, &mut self.database)?;
        }
        if let Some(context) = &self.context_manager {
            context.lock().register_app(&apk)?;
        }
        Ok(self.device.install_app(spec, Profile::Work))
    }

    /// The WAN address registered for a DNS host name.
    pub fn host_address(&self, host: &str) -> Option<Ipv4Addr> {
        self.host_addresses.get(host).copied()
    }

    /// Drive one functionality end to end and record the outcome.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown apps/functionalities or kernel failures;
    /// policy drops are *not* errors (they are recorded in the outcome).
    pub fn run(&mut self, app: AppId, functionality: &str) -> Result<RunOutcome, Error> {
        let spec = self
            .device
            .app(app)
            .ok_or_else(|| Error::not_found("installed app", app.to_string()))?
            .spec
            .clone();
        let host = spec
            .functionality(functionality)
            .ok_or_else(|| Error::not_found("functionality", functionality.to_string()))?
            .endpoint_host
            .clone();
        let destination_ip = self
            .host_address(&host)
            .ok_or_else(|| Error::not_found("registered host", host.clone()))?;
        let endpoint = Endpoint::from_ip(destination_ip, 443);

        let invocation = self
            .device
            .invoke_functionality(app, functionality, endpoint)?;
        let device_id = self.device.id();

        // Keep the enforcer's flow-table TTL clock in step with simulated
        // time so long-idle flows expire instead of hitting forever.
        if let Some(enforcer) = &self.enforcer {
            enforcer.lock().set_now(self.network.now());
        }

        let mut delivered = 0usize;
        let mut dropped = 0usize;
        let mut dropped_by = None;
        let mut latency_sum = SimDuration::ZERO;
        for packet in invocation.packets {
            match self.network.transmit(device_id, packet) {
                Delivery::Delivered { latency, .. } => {
                    delivered += 1;
                    latency_sum += latency;
                }
                Delivery::Dropped { by, .. } => {
                    dropped += 1;
                    dropped_by.get_or_insert(by);
                }
                Delivery::Unroutable => {
                    dropped += 1;
                    dropped_by.get_or_insert_with(|| "unroutable".to_string());
                }
            }
        }
        self.device.close_socket(invocation.socket);

        let mean_delivery_latency = if delivered > 0 {
            SimDuration::from_micros(latency_sum.as_micros() / delivered as u64)
        } else {
            SimDuration::ZERO
        };
        let outcome = RunOutcome {
            app,
            functionality: functionality.to_string(),
            destination: destination_ip,
            stack: invocation.stack,
            packets_delivered: delivered,
            packets_dropped: dropped,
            dropped_by,
            on_device_latency: invocation.on_device_latency,
            mean_delivery_latency,
        };
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// Inject one **raw** packet from the device's egress, bypassing the
    /// Context Manager and the hardened kernel entirely — the way a
    /// compromised device emits forged, replayed or non-conforming traffic
    /// (the packet shapes `scenario`'s adversary models synthesize).
    ///
    /// The packet traverses the full Figure-1 path: interface → filter chain
    /// (Policy Enforcer + Packet Sanitizer queues) → WAN delivery, so tests
    /// can assert both the enforcer verdict and what, if anything, reached
    /// the WAN side.
    pub fn inject_raw_packet(&mut self, packet: bp_netsim::packet::Ipv4Packet) -> Delivery {
        if let Some(enforcer) = &self.enforcer {
            enforcer.lock().set_now(self.network.now());
        }
        self.network.transmit(self.device.id(), packet)
    }

    /// Exercise an app with `events` monkey events (seeded) and run every
    /// triggered functionality end to end.  Returns the outcomes of the
    /// network-relevant events.
    ///
    /// # Errors
    ///
    /// Propagates the first execution error (policy drops are not errors).
    pub fn monkey_session(
        &mut self,
        app: AppId,
        events: usize,
        seed: u64,
    ) -> Result<Vec<RunOutcome>, Error> {
        Ok(self
            .compromised_monkey_session(app, events, seed, 0.0)?
            .outcomes)
    }

    /// Exercise a **compromised** app: like [`Testbed::monkey_session`], but
    /// events marked adversarial by [`Monkey::exercise_adversarial`] forge
    /// their context (an undecodable payload injected raw, bypassing the
    /// Context Manager) instead of running through the hooks.  Returns the
    /// legitimate outcomes plus the fate of every forged packet.
    ///
    /// # Errors
    ///
    /// Propagates the first execution error (enforcement drops — of forged
    /// *or* legitimate packets — are not errors).
    pub fn compromised_monkey_session(
        &mut self,
        app: AppId,
        events: usize,
        seed: u64,
        adversarial_probability: f64,
    ) -> Result<CompromisedSession, Error> {
        let spec = self
            .device
            .app(app)
            .ok_or_else(|| Error::not_found("installed app", app.to_string()))?
            .spec
            .clone();
        let mut monkey = Monkey::new(seed);
        let mut session = CompromisedSession::default();
        for event in monkey.exercise_adversarial(&spec, events, adversarial_probability) {
            let Some(functionality) = event.triggered else {
                continue;
            };
            if !event.adversarial {
                session.outcomes.push(self.run(app, &functionality)?);
                continue;
            }
            // The compromised app rides this connect with forged context: a
            // payload too short to decode, set directly on the packet (the
            // hardened kernel is bypassed, so no hook fixes it up).
            let host = spec
                .functionality(&functionality)
                .ok_or_else(|| Error::not_found("functionality", functionality.clone()))?
                .endpoint_host
                .clone();
            let destination = self
                .host_address(&host)
                .ok_or_else(|| Error::not_found("registered host", host))?;
            let mut packet = bp_netsim::packet::Ipv4Packet::new(
                Endpoint::new([10, 0, 0, 66], 47_000 + session.forged_packets as u16),
                Endpoint::from_ip(destination, 443),
                b"forged".to_vec(),
            );
            let forged_option = bp_netsim::options::IpOption::new(
                bp_netsim::options::IpOptionKind::BorderPatrolContext,
                vec![0xBA, 0xD0],
            )?;
            packet.options_mut().push(forged_option)?;
            session.forged_packets += 1;
            if !self.inject_raw_packet(packet).is_delivered() {
                session.forged_dropped += 1;
            }
        }
        Ok(session)
    }
}

/// What a [`Testbed::compromised_monkey_session`] produced: the well-behaved
/// outcomes plus the fate of the forged injections.
#[derive(Debug, Clone, Default)]
pub struct CompromisedSession {
    /// Outcomes of the legitimately executed functionalities.
    pub outcomes: Vec<RunOutcome>,
    /// Forged packets the compromised app injected.
    pub forged_packets: u64,
    /// How many of them the network dropped (all, if the Policy Enforcer is
    /// deployed with malformed-context drops enabled).
    pub forged_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_appsim::generator::CorpusGenerator;
    use bp_core::policy::Policy;
    use bp_types::EnforcementLevel;

    fn borderpatrol_testbed(policies: PolicySet) -> Testbed {
        Testbed::new(Deployment::BorderPatrol {
            policies,
            config: EnforcerConfig::default(),
        })
    }

    #[test]
    fn unenforced_testbed_delivers_everything() {
        let mut testbed = Testbed::new(Deployment::None);
        let app = testbed.install_app(CorpusGenerator::dropbox()).unwrap();
        let outcome = testbed.run(app, "upload").unwrap();
        assert!(outcome.fully_delivered());
        assert!(outcome.dropped_by.is_none());
        assert_eq!(testbed.outcomes().len(), 1);
    }

    #[test]
    fn borderpatrol_blocks_denied_method_but_not_others() {
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Method,
            "Lcom/dropbox/android/taskqueue/UploadTask;->c",
        )]);
        let mut testbed = borderpatrol_testbed(policies);
        let app = testbed.install_app(CorpusGenerator::dropbox()).unwrap();

        let upload = testbed.run(app, "upload").unwrap();
        assert!(
            upload.fully_blocked(),
            "upload should be blocked: {upload:?}"
        );
        assert_eq!(upload.dropped_by.as_deref(), Some("policy-enforcer"));

        let download = testbed.run(app, "download").unwrap();
        assert!(download.fully_delivered());
        let browse = testbed.run(app, "browse").unwrap();
        assert!(browse.fully_delivered());

        let stats = testbed.enforcer_stats().unwrap();
        assert!(stats.dropped_by_policy > 0);
        assert!(stats.packets_accepted > 0);
    }

    #[test]
    fn enforcer_flow_cache_accelerates_multi_packet_invocations() {
        let mut testbed = borderpatrol_testbed(PolicySet::new());
        let app = testbed.install_app(CorpusGenerator::dropbox()).unwrap();
        let outcome = testbed.run(app, "upload").unwrap();
        assert!(outcome.packets_delivered > 1);

        // All packets of the invocation share one flow and one context: the
        // first misses, every later one is served from the flow table.
        let stats = testbed.enforcer_stats().unwrap();
        assert_eq!(stats.flow_misses, 1);
        assert_eq!(stats.flow_hits, stats.packets_inspected - 1);
        // Verdict replay is invisible in the outcome counters.
        assert_eq!(stats.packets_accepted, stats.packets_inspected);
    }

    #[test]
    fn control_plane_database_swaps_survive_later_installs() {
        let mut testbed = borderpatrol_testbed(PolicySet::new());
        // Stage an out-of-band analyzed entry directly through the control
        // plane (the documented path for richer transactions).
        let hash = bp_types::ApkHash::digest(b"out-of-band-analysis");
        let mut custom = testbed.control_plane().unwrap().database().clone();
        custom.insert(hash, "com.custom.oob", false, Vec::new());
        testbed
            .control_plane()
            .unwrap()
            .begin()
            .swap_database(custom)
            .commit()
            .unwrap();

        // A later install stages on top of the authoritative database, so
        // the out-of-band entry survives alongside the new app's.
        testbed.install_app(CorpusGenerator::dropbox()).unwrap();
        let control = testbed.control_plane().unwrap();
        assert!(control.database().contains(hash.tag()));
        assert_eq!(control.database().len(), 2);
    }

    #[test]
    fn sanitizer_strips_context_from_delivered_packets() {
        let mut testbed = borderpatrol_testbed(PolicySet::new());
        let app = testbed.install_app(CorpusGenerator::solcalendar()).unwrap();
        testbed.run(app, "fb-login").unwrap();

        // Packets on the WAN side must not carry the context option.
        assert_eq!(
            testbed.network.post_chain_capture().packets_with_context(),
            0
        );
        // But the device did emit tagged packets (visible pre-chain).
        assert!(testbed.network.pre_chain_capture().packets_with_context() > 0);
        assert!(testbed.sanitizer_stats().unwrap().options_stripped > 0);
    }

    #[test]
    fn shared_endpoints_resolve_to_one_server() {
        let mut testbed = Testbed::new(Deployment::None);
        let sol = testbed.install_app(CorpusGenerator::solcalendar()).unwrap();
        let login = testbed.run(sol, "fb-login").unwrap();
        let analytics = testbed.run(sol, "fb-analytics").unwrap();
        assert_eq!(login.destination, analytics.destination);
        let sync = testbed.run(sol, "calendar-sync").unwrap();
        assert_ne!(login.destination, sync.destination);
    }

    #[test]
    fn monkey_session_records_outcomes() {
        let mut testbed = Testbed::new(Deployment::None);
        let app = testbed.install_app(CorpusGenerator::box_app()).unwrap();
        let outcomes = testbed.monkey_session(app, 500, 7).unwrap();
        assert!(!outcomes.is_empty());
        assert_eq!(outcomes.len(), testbed.outcomes().len());
        testbed.reset_observations();
        assert!(testbed.outcomes().is_empty());
    }

    #[test]
    fn compromised_monkey_session_forges_context_that_the_enforcer_drops() {
        let mut testbed = borderpatrol_testbed(PolicySet::new());
        let app = testbed.install_app(CorpusGenerator::box_app()).unwrap();
        let session = testbed
            .compromised_monkey_session(app, 1_500, 21, 0.4)
            .unwrap();
        // The compromised app still does legitimate work …
        assert!(!session.outcomes.is_empty());
        // … but every forged-context injection dies at the enforcer.
        assert!(session.forged_packets > 0);
        assert_eq!(session.forged_dropped, session.forged_packets);
        assert_eq!(
            testbed.enforcer_stats().unwrap().dropped_malformed,
            session.forged_packets
        );

        // Probability zero degrades to the plain monkey session.
        let clean = testbed
            .compromised_monkey_session(app, 500, 7, 0.0)
            .unwrap();
        assert_eq!(clean.forged_packets, 0);
    }

    #[test]
    fn injected_adversarial_packets_die_at_the_enforcer() {
        use bp_netsim::fleet::{trailing_data_options, PacketTemplate};

        let mut testbed = Testbed::new(Deployment::BorderPatrol {
            policies: PolicySet::new(),
            config: EnforcerConfig::strict(),
        });
        let app = testbed.install_app(CorpusGenerator::solcalendar()).unwrap();
        // A legitimate run first, so the WAN baseline is non-empty.
        assert!(testbed.run(app, "fb-login").unwrap().fully_delivered());
        let wan_before = testbed.network.egress_packet_count();
        let graph = testbed.host_address("graph.facebook.com").unwrap();
        let destination = bp_netsim::addr::Endpoint::from_ip(graph, 443);

        // Untagged injection (strict deployment) and a covert trailing-data
        // injection: both must be dropped by the enforcer, so nothing new
        // reaches the WAN-side capture.
        let untagged = PacketTemplate::new(destination, b"smuggle".to_vec());
        let delivery = testbed.inject_raw_packet(untagged.instantiate_from(99, 0));
        assert!(!delivery.is_delivered());

        let trailing = PacketTemplate::new(destination, b"covert".to_vec())
            .with_raw_options(&trailing_data_options(&[0x00; 12]).unwrap())
            .unwrap();
        let delivery = testbed.inject_raw_packet(trailing.instantiate_from(99, 1));
        assert!(!delivery.is_delivered());

        let stats = testbed.enforcer_stats().unwrap();
        assert_eq!(stats.dropped_untagged, 1);
        assert_eq!(stats.dropped_malformed, 1);
        assert_eq!(testbed.network.egress_packet_count(), wan_before);
    }

    #[test]
    fn ip_blocklist_deployment_blocks_by_destination() {
        // Block the Facebook Graph endpoint before installing: we need its IP,
        // so install into a scratch testbed first to learn the address
        // assignment, then build the real one.
        let mut scratch = Testbed::new(Deployment::None);
        scratch.install_app(CorpusGenerator::solcalendar()).unwrap();
        let graph_ip = scratch.host_address("graph.facebook.com").unwrap();

        let mut blocklist = IpBlocklist::new();
        blocklist.block_ip(graph_ip);
        let mut testbed = Testbed::new(Deployment::IpBlocklist(blocklist));
        let app = testbed.install_app(CorpusGenerator::solcalendar()).unwrap();

        // Address assignment is deterministic, so the blocklisted IP matches.
        assert_eq!(
            testbed.host_address("graph.facebook.com").unwrap(),
            graph_ip
        );
        let login = testbed.run(app, "fb-login").unwrap();
        let analytics = testbed.run(app, "fb-analytics").unwrap();
        let sync = testbed.run(app, "calendar-sync").unwrap();
        // The blocklist cannot separate login from analytics: both die.
        assert!(login.fully_blocked());
        assert!(analytics.fully_blocked());
        assert!(sync.fully_delivered());
    }

    #[test]
    fn flow_threshold_deployment_cuts_large_uploads() {
        let mut testbed = Testbed::new(Deployment::FlowThreshold(FlowSizeThreshold::new(50_000)));
        let app = testbed.install_app(CorpusGenerator::dropbox()).unwrap();
        let upload = testbed.run(app, "upload").unwrap();
        // The large upload exceeds the threshold: most packets dropped.
        assert!(upload.packets_dropped > 0);
        // Small browse flows pass.
        let browse = testbed.run(app, "browse").unwrap();
        assert!(browse.fully_delivered());
    }
}
