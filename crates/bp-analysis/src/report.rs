//! Plain-text table rendering for experiment reports.
//!
//! Every experiment produces rows that EXPERIMENTS.md and the example binaries
//! print; [`TextTable`] keeps the formatting consistent (padded columns,
//! a header rule, no external dependencies).

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the number of cells should match the header.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as text.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let format_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for (i, &width) in widths.iter().enumerate().take(columns) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$} | "));
            }
            line.trim_end().to_string()
        };

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format_row(&self.header));
        out.push('\n');
        let rule: String = widths
            .iter()
            .map(|w| format!("|{}", "-".repeat(w + 2)))
            .collect();
        out.push_str(&format!("{rule}|\n"));
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut table = TextTable::new("Fig. 3", &["IoIs", "Apps"]);
        table.add_row(vec!["1".to_string(), "152".to_string()]);
        table.add_row(vec!["2".to_string(), "53".to_string()]);
        let rendered = table.render();
        assert!(rendered.starts_with("Fig. 3\n"));
        assert!(rendered.contains("| IoIs | Apps |"));
        assert!(rendered.contains("| 1    | 152  |"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn handles_ragged_rows_and_empty_tables() {
        let mut table = TextTable::new("t", &["a", "b", "c"]);
        table.add_row(vec!["only".to_string()]);
        let rendered = table.render();
        assert!(rendered.contains("only"));
        let empty = TextTable::new("empty", &["x"]);
        assert!(empty.is_empty());
        assert!(empty.render().contains("empty"));
    }

    #[test]
    fn display_matches_render() {
        let table = TextTable::new("t", &["a"]);
        assert_eq!(table.to_string(), table.render());
    }
}
