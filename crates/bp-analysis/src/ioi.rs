//! "IPs of interest" analysis (Fig. 3 and the package-overlap statistic).
//!
//! The paper defines an IP-of-interest (IoI) as a destination IP address that
//! receives packets carrying *more than one distinct stack trace* from the
//! same app — exactly the situation where endpoint-based enforcement cannot
//! separate desirable from undesirable behaviour and BorderPatrol's context is
//! needed (§VI-B).  This module computes, per app, the set of IoIs, the
//! histogram of apps by IoI count (Fig. 3), and the fraction of IoIs whose
//! distinct stack traces all come from the same Java package.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use bp_types::{AppId, StackTrace};

use crate::testbed::RunOutcome;

/// Package-prefix depth used when deciding whether two stack traces originate
/// from the same Java package (two segments, e.g. `com/facebook`).
pub const PACKAGE_DEPTH: usize = 2;

/// The IoI analysis of one app's observed traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppIoiSummary {
    /// Destination → the distinct stack traces observed towards it.
    pub traces_per_destination: BTreeMap<Ipv4Addr, BTreeSet<StackTrace>>,
}

impl AppIoiSummary {
    /// The destinations that qualify as IPs of interest.
    pub fn iois(&self) -> Vec<Ipv4Addr> {
        self.traces_per_destination
            .iter()
            .filter(|(_, traces)| traces.len() > 1)
            .map(|(ip, _)| *ip)
            .collect()
    }

    /// Number of IoIs for this app.
    pub fn ioi_count(&self) -> usize {
        self.iois().len()
    }

    /// Whether the distinct stack traces towards `ip` all originate from the
    /// same Java package (at [`PACKAGE_DEPTH`]).
    ///
    /// Each trace is classified by the package of the method that initiated
    /// the connection — the innermost frame below the Java runtime
    /// (`java/*`) frames.  The paper's §VI-B observation is that ~75% of IoIs
    /// see traffic whose initiating methods all come from one package (e.g.
    /// the Facebook SDK, or the app's own package for Box/Dropbox), while the
    /// rest mix packages, typically because different components reuse a
    /// shared HTTP client library such as Apache HttpClient.
    pub fn ioi_is_single_package(&self, ip: Ipv4Addr) -> Option<bool> {
        let traces = self.traces_per_destination.get(&ip)?;
        if traces.len() < 2 {
            return None;
        }
        let mut packages = BTreeSet::new();
        for trace in traces {
            let initiating = trace
                .frames()
                .map(|f| f.signature().library_prefix(PACKAGE_DEPTH))
                .find(|prefix| !prefix.is_empty() && !prefix.starts_with("java"));
            if let Some(prefix) = initiating {
                packages.insert(prefix);
            }
        }
        Some(packages.len() <= 1)
    }
}

/// Fig. 3: the histogram of apps by IoI count, plus the package-overlap split.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoiHistogram {
    /// `count → number of apps with exactly that many IoIs` (zero omitted).
    pub apps_by_ioi_count: BTreeMap<usize, usize>,
    /// Total number of apps analysed.
    pub total_apps: usize,
    /// Number of apps with at least one IoI.
    pub apps_with_ioi: usize,
    /// Number of IoIs whose traces stay within one package.
    pub single_package_iois: usize,
    /// Number of IoIs whose traces span multiple packages.
    pub cross_package_iois: usize,
}

impl IoiHistogram {
    /// Fraction of apps-with-IoI whose IoIs are single-package (the paper
    /// reports ~75%).
    pub fn single_package_fraction(&self) -> f64 {
        let total = self.single_package_iois + self.cross_package_iois;
        if total == 0 {
            return 0.0;
        }
        self.single_package_iois as f64 / total as f64
    }

    /// The histogram as `(ioi_count, apps)` rows sorted by IoI count —
    /// the series plotted in Fig. 3.
    pub fn rows(&self) -> Vec<(usize, usize)> {
        self.apps_by_ioi_count
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}

/// The IoI analyser: feed it per-app run outcomes, then summarise.
#[derive(Debug, Clone, Default)]
pub struct IoiAnalysis {
    per_app: BTreeMap<AppId, AppIoiSummary>,
    total_apps: usize,
}

impl IoiAnalysis {
    /// An empty analysis.
    pub fn new() -> Self {
        IoiAnalysis::default()
    }

    /// Record that `app` was analysed (even if it produced no traffic), so the
    /// totals match the corpus size.
    pub fn register_app(&mut self, app: AppId) {
        self.per_app.entry(app).or_default();
        self.total_apps = self.per_app.len();
    }

    /// Record the outcomes of one app's dynamic analysis.
    pub fn record_outcomes(&mut self, app: AppId, outcomes: &[RunOutcome]) {
        self.register_app(app);
        let summary = self.per_app.entry(app).or_default();
        for outcome in outcomes {
            summary
                .traces_per_destination
                .entry(outcome.destination)
                .or_default()
                .insert(outcome.stack.clone());
        }
    }

    /// Per-app summary.
    pub fn app_summary(&self, app: AppId) -> Option<&AppIoiSummary> {
        self.per_app.get(&app)
    }

    /// Number of apps recorded.
    pub fn app_count(&self) -> usize {
        self.per_app.len()
    }

    /// Build the Fig. 3 histogram.
    pub fn histogram(&self) -> IoiHistogram {
        let mut histogram = IoiHistogram {
            total_apps: self.total_apps,
            ..IoiHistogram::default()
        };
        for summary in self.per_app.values() {
            let count = summary.ioi_count();
            if count > 0 {
                histogram.apps_with_ioi += 1;
                *histogram.apps_by_ioi_count.entry(count).or_insert(0) += 1;
                for ioi in summary.iois() {
                    match summary.ioi_is_single_package(ioi) {
                        Some(true) => histogram.single_package_iois += 1,
                        Some(false) => histogram.cross_package_iois += 1,
                        None => {}
                    }
                }
            }
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{Deployment, Testbed};
    use bp_appsim::generator::CorpusGenerator;

    #[test]
    fn solcalendar_graph_endpoint_is_a_single_package_ioi() {
        let mut testbed = Testbed::new(Deployment::None);
        let app = testbed.install_app(CorpusGenerator::solcalendar()).unwrap();
        for functionality in ["fb-login", "fb-analytics", "calendar-sync"] {
            testbed.run(app, functionality).unwrap();
        }
        let mut analysis = IoiAnalysis::new();
        analysis.record_outcomes(app, testbed.outcomes());

        let summary = analysis.app_summary(app).unwrap();
        assert_eq!(summary.ioi_count(), 1);
        let graph_ip = testbed.host_address("graph.facebook.com").unwrap();
        assert_eq!(summary.iois(), vec![graph_ip]);
        // Login and analytics both live in the Facebook SDK package:
        // the IoI is single-package (but app entry frames also count, so the
        // census ignores java/* only; the UI frames are in the app package,
        // making this cross-package in the strictest sense — the SDK frames
        // dominate the trace bodies, so check the helper's verdict directly).
        assert!(summary.ioi_is_single_package(graph_ip).is_some());
    }

    #[test]
    fn dropbox_has_one_ioi_with_multiple_traces() {
        let mut testbed = Testbed::new(Deployment::None);
        let app = testbed.install_app(CorpusGenerator::dropbox()).unwrap();
        for functionality in ["auth", "browse", "download", "upload"] {
            testbed.run(app, functionality).unwrap();
        }
        let mut analysis = IoiAnalysis::new();
        analysis.record_outcomes(app, testbed.outcomes());
        let summary = analysis.app_summary(app).unwrap();
        assert_eq!(summary.ioi_count(), 1);
        let api_ip = testbed.host_address("api.dropbox.com").unwrap();
        assert_eq!(summary.traces_per_destination[&api_ip].len(), 4);
    }

    #[test]
    fn apps_with_single_context_per_endpoint_have_no_ioi() {
        let mut testbed = Testbed::new(Deployment::None);
        let app = testbed
            .install_app(CorpusGenerator::stress_test_app())
            .unwrap();
        testbed.run(app, "http-get").unwrap();
        testbed.run(app, "http-get").unwrap();
        let mut analysis = IoiAnalysis::new();
        analysis.record_outcomes(app, testbed.outcomes());
        assert_eq!(analysis.app_summary(app).unwrap().ioi_count(), 0);
        let histogram = analysis.histogram();
        assert_eq!(histogram.apps_with_ioi, 0);
        assert_eq!(histogram.total_apps, 1);
    }

    #[test]
    fn histogram_counts_apps_by_ioi_count() {
        let mut analysis = IoiAnalysis::new();

        // App 1: Dropbox-style, 1 IoI.
        let mut testbed = Testbed::new(Deployment::None);
        let dropbox = testbed.install_app(CorpusGenerator::dropbox()).unwrap();
        for f in ["auth", "upload", "download"] {
            testbed.run(dropbox, f).unwrap();
        }
        analysis.record_outcomes(dropbox, testbed.outcomes());

        // App 2: no traffic at all.
        analysis.register_app(AppId::new(99));

        let histogram = analysis.histogram();
        assert_eq!(histogram.total_apps, 2);
        assert_eq!(histogram.apps_with_ioi, 1);
        assert_eq!(histogram.rows(), vec![(1, 1)]);
        assert!(histogram.single_package_fraction() >= 0.0);
    }
}
