//! Fig. 3 — number of apps per IoI count over the generated corpus.
//!
//! The paper exercises 2,000 BUSINESS/PRODUCTIVITY apps with 5,000 monkey
//! events each and reports a log-scale histogram of apps by their number of
//! IPs-of-interest (152 / 53 / 8 / 3 / 2 apps with 1..5 IoIs), together with
//! the observation that in ~75% of apps with an IoI the differing stack traces
//! come from the same Java package.  This experiment regenerates that
//! histogram over the synthetic corpus; the absolute counts depend on the
//! corpus seed, but the shape (a steeply decreasing histogram, a minority of
//! apps having any IoI, same-package traces dominating) reproduces.

use serde::{Deserialize, Serialize};

use bp_appsim::generator::{CorpusConfig, CorpusGenerator};
use bp_types::Error;

use crate::ioi::{IoiAnalysis, IoiHistogram};
use crate::report::TextTable;
use crate::testbed::{Deployment, Testbed};

/// Configuration of the Fig. 3 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Config {
    /// Corpus generation parameters (use [`CorpusConfig::paper_scale`] for the
    /// full 2,000-app run).
    pub corpus: CorpusConfig,
    /// Monkey events per app (the paper uses 5,000).
    pub monkey_events: usize,
    /// Monkey seed.
    pub monkey_seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            corpus: CorpusConfig::small(17, 40),
            monkey_events: 400,
            monkey_seed: 11,
        }
    }
}

impl Fig3Config {
    /// The paper-scale configuration (2,000 apps × 5,000 events).  Expensive.
    pub fn paper_scale() -> Self {
        Fig3Config {
            corpus: CorpusConfig::paper_scale(),
            monkey_events: 5_000,
            monkey_seed: 11,
        }
    }
}

/// The Fig. 3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// The IoI histogram.
    pub histogram: IoiHistogram,
    /// Number of apps exercised.
    pub apps_exercised: usize,
    /// Total functionality invocations driven by the monkey.
    pub invocations: usize,
}

impl Fig3Result {
    /// Render the histogram as the Fig. 3 series.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Fig. 3 — apps per number of IPs-of-interest",
            &["IoIs per app", "Apps (log-scale axis in the paper)"],
        );
        for (iois, apps) in self.histogram.rows() {
            table.add_row(vec![iois.to_string(), apps.to_string()]);
        }
        table.add_row(vec![
            "apps with >=1 IoI".to_string(),
            self.histogram.apps_with_ioi.to_string(),
        ]);
        table.add_row(vec![
            "single-package IoI fraction".to_string(),
            format!("{:.0}%", self.histogram.single_package_fraction() * 100.0),
        ]);
        table
    }
}

/// Run the Fig. 3 experiment.
///
/// # Errors
///
/// Propagates testbed failures (apk analysis, kernel errors).
pub fn run(config: &Fig3Config) -> Result<Fig3Result, Error> {
    let corpus = CorpusGenerator::generate(&config.corpus);
    let mut analysis = IoiAnalysis::new();
    let mut invocations = 0usize;

    for (i, spec) in corpus.iter().enumerate() {
        // One unenforced testbed per app keeps per-app state isolated, exactly
        // like the paper's one-emulator-per-app worker model.
        let mut testbed = Testbed::new(Deployment::None);
        let app = testbed.install_app(spec.clone())?;
        let outcomes =
            testbed.monkey_session(app, config.monkey_events, config.monkey_seed ^ i as u64)?;
        invocations += outcomes.len();
        // Use a corpus-wide unique id so per-app summaries do not collide.
        let corpus_app_id = bp_types::AppId::new(i as u64 + 1);
        analysis.register_app(corpus_app_id);
        analysis.record_outcomes(corpus_app_id, &outcomes);
    }

    Ok(Fig3Result {
        histogram: analysis.histogram(),
        apps_exercised: corpus.len(),
        invocations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_reproduces_figure_shape() {
        let config = Fig3Config {
            corpus: CorpusConfig::small(23, 30),
            monkey_events: 300,
            monkey_seed: 5,
        };
        let result = run(&config).unwrap();
        assert_eq!(result.apps_exercised, 60);
        assert!(result.invocations > 0);

        let histogram = &result.histogram;
        assert_eq!(histogram.total_apps, 60);
        // A minority of apps (but more than zero) have at least one IoI.
        assert!(histogram.apps_with_ioi > 0);
        assert!(histogram.apps_with_ioi < histogram.total_apps);
        // The histogram decreases: far more apps have 1 IoI than 3+.
        let rows = histogram.rows();
        if rows.len() >= 2 {
            assert!(rows[0].1 >= rows[rows.len() - 1].1);
        }
        // Same-package IoIs dominate, as §VI-B reports (~75%).
        assert!(histogram.single_package_fraction() > 0.5);

        let table = result.to_table();
        assert!(table.render().contains("IoIs per app"));
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let config = Fig3Config {
            corpus: CorpusConfig::small(9, 10),
            monkey_events: 150,
            monkey_seed: 3,
        };
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a, b);
    }
}
