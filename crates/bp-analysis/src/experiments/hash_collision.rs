//! Truncated-hash collision analysis (§VII "Hash collision").
//!
//! BorderPatrol identifies the origin app of each packet by the truncated
//! 8-byte (64-bit) apk hash.  The paper argues that, with about 3.3 million
//! apps in the Play Store, the probability of two apps colliding on that tag
//! is below 10⁻⁶.  This experiment combines the analytic birthday bound with
//! an empirical scan for collisions across a generated corpus.

use serde::{Deserialize, Serialize};

use bp_appsim::generator::{CorpusConfig, CorpusGenerator};
use bp_core::offline::collision::collision_probability;
use bp_core::offline::{OfflineAnalyzer, SignatureDatabase};
use bp_types::Error;

use crate::report::TextTable;

/// Configuration of the collision experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HashCollisionConfig {
    /// Size of the corpus to scan empirically.
    pub corpus: CorpusConfig,
    /// App-count points for the analytic curve.
    pub analytic_points: Vec<u64>,
}

impl Default for HashCollisionConfig {
    fn default() -> Self {
        HashCollisionConfig {
            corpus: CorpusConfig::small(53, 50),
            analytic_points: vec![100_000, 1_000_000, 3_300_000, 10_000_000],
        }
    }
}

/// The collision experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HashCollisionResult {
    /// `(apps, probability)` for the analytic 64-bit birthday bound.
    pub analytic: Vec<(u64, f64)>,
    /// Number of apps empirically hashed.
    pub apps_hashed: usize,
    /// Number of truncated-tag collisions observed empirically.
    pub observed_collisions: usize,
    /// Whether the paper's 10⁻⁶ claim for 3.3 M apps holds.
    pub paper_claim_holds: bool,
}

impl HashCollisionResult {
    /// Render as a table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Hash collision analysis — 8-byte truncated apk hash (paper §VII)",
            &["apps", "collision probability (64-bit tag)"],
        );
        for (apps, probability) in &self.analytic {
            table.add_row(vec![apps.to_string(), format!("{probability:.3e}")]);
        }
        table.add_row(vec![
            format!("empirical ({} apps)", self.apps_hashed),
            format!("{} collisions", self.observed_collisions),
        ]);
        table
    }
}

/// Run the collision experiment.
///
/// # Errors
///
/// Propagates apk analysis failures.
pub fn run(config: &HashCollisionConfig) -> Result<HashCollisionResult, Error> {
    let analytic = config
        .analytic_points
        .iter()
        .map(|&apps| (apps, collision_probability(apps, 64)))
        .collect();

    let corpus = CorpusGenerator::generate(&config.corpus);
    let analyzer = OfflineAnalyzer::new();
    let mut db = SignatureDatabase::new();
    for spec in &corpus {
        let apk = spec.build_apk();
        match analyzer.analyze_into(&apk, &mut db) {
            Ok(_) => {}
            // A collision is this experiment's observable, not a failure;
            // the database has already recorded it.
            Err(Error::InvalidState { .. }) => {}
            Err(other) => return Err(other),
        }
    }
    let observed_collisions = db.collisions().len();

    Ok(HashCollisionResult {
        analytic,
        apps_hashed: corpus.len(),
        observed_collisions,
        paper_claim_holds: collision_probability(3_300_000, 64) < 1e-6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_holds_and_no_empirical_collisions() {
        let result = run(&HashCollisionConfig {
            corpus: CorpusConfig::small(71, 25),
            analytic_points: vec![3_300_000],
        })
        .unwrap();
        assert!(result.paper_claim_holds);
        assert_eq!(result.observed_collisions, 0);
        assert_eq!(result.apps_hashed, 50);
        assert_eq!(result.analytic.len(), 1);
        assert!(result.analytic[0].1 < 1e-6);
        assert!(result.to_table().render().contains("collision"));
    }
}
