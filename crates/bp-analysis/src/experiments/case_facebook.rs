//! Facebook-SDK case study (§VI-C): allow "Login with Facebook", block the
//! SDK's analytics beacons.
//!
//! Both flows go through the same Graph API endpoint via the same SDK, so an
//! on-network rule that blocks the endpoint also breaks authentication.
//! BorderPatrol distinguishes the two by the calling context (the
//! `AppEventsLogger` analytics path vs the `LoginManager` path) and drops only
//! the analytics packets.

use serde::{Deserialize, Serialize};

use bp_appsim::generator::CorpusGenerator;
use bp_baseline::IpBlocklist;
use bp_core::enforcer::EnforcerConfig;
use bp_core::policy::{Policy, PolicySet};
use bp_core::policy_extractor::{PolicyExtractor, ProfileRun};
use bp_device::runtime::java_stack_for;
use bp_types::{EnforcementLevel, Error};

use crate::report::TextTable;
use crate::testbed::{Deployment, Testbed};

/// Result of the Facebook SDK case study.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FacebookCaseResult {
    /// Whether login survived under the on-network endpoint block.
    pub baseline_login_works: bool,
    /// Whether analytics was blocked under the on-network endpoint block.
    pub baseline_analytics_blocked: bool,
    /// Whether login survived under BorderPatrol.
    pub borderpatrol_login_works: bool,
    /// Whether analytics was blocked under BorderPatrol.
    pub borderpatrol_analytics_blocked: bool,
    /// Whether the unrelated calendar-sync functionality survived under
    /// BorderPatrol (no collateral damage).
    pub borderpatrol_sync_works: bool,
    /// Number of policies the policy extractor derived.
    pub extracted_policies: usize,
}

impl FacebookCaseResult {
    /// The paper's takeaway: only BorderPatrol preserves login while blocking
    /// analytics.
    pub fn borderpatrol_wins(&self) -> bool {
        self.borderpatrol_login_works
            && self.borderpatrol_analytics_blocked
            && self.borderpatrol_sync_works
            && !(self.baseline_login_works && self.baseline_analytics_blocked)
    }

    /// Render as a comparison table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Facebook SDK case study — SolCalendar (login vs analytics)",
            &["mechanism", "fb-login", "fb-analytics", "calendar-sync"],
        );
        let cell = |works: bool| {
            if works {
                "works".to_string()
            } else {
                "BLOCKED".to_string()
            }
        };
        table.add_row(vec![
            "on-network endpoint block".to_string(),
            cell(self.baseline_login_works),
            cell(!self.baseline_analytics_blocked),
            "works".to_string(),
        ]);
        table.add_row(vec![
            "BorderPatrol".to_string(),
            cell(self.borderpatrol_login_works),
            cell(!self.borderpatrol_analytics_blocked),
            cell(self.borderpatrol_sync_works),
        ]);
        table
    }
}

/// The analytics-blocking policy used by the case study: deny the Facebook
/// app-events (analytics) class tree.
pub fn analytics_block_policy() -> PolicySet {
    PolicySet::from_policies(vec![Policy::deny(
        EnforcementLevel::Class,
        "com/facebook/appevents",
    )])
}

/// Derive the analytics policy with the Policy Extractor from two profiling
/// runs (baseline = login + sync, undesired = analytics), as §V-E describes.
pub fn extract_analytics_policy() -> PolicySet {
    let app = CorpusGenerator::solcalendar();
    let mut baseline = ProfileRun::new();
    baseline.record(java_stack_for(&app, app.functionality("fb-login").unwrap()));
    baseline.record(java_stack_for(
        &app,
        app.functionality("calendar-sync").unwrap(),
    ));
    let mut undesired = ProfileRun::new();
    undesired.record(java_stack_for(
        &app,
        app.functionality("fb-analytics").unwrap(),
    ));
    PolicyExtractor::new().extract(&baseline, &undesired, EnforcementLevel::Class)
}

/// Run the case study.
///
/// # Errors
///
/// Propagates testbed failures.
pub fn run() -> Result<FacebookCaseResult, Error> {
    let spec = CorpusGenerator::solcalendar();

    // Baseline: block the Graph API endpoint on the network.
    let mut scratch = Testbed::new(Deployment::None);
    scratch.install_app(spec.clone())?;
    let graph_ip = scratch
        .host_address("graph.facebook.com")
        .ok_or_else(|| Error::not_found("host", "graph.facebook.com"))?;
    let mut blocklist = IpBlocklist::new();
    blocklist.block_ip(graph_ip);

    let mut baseline_testbed = Testbed::new(Deployment::IpBlocklist(blocklist));
    let app = baseline_testbed.install_app(spec.clone())?;
    let baseline_login = baseline_testbed.run(app, "fb-login")?;
    let baseline_analytics = baseline_testbed.run(app, "fb-analytics")?;

    // BorderPatrol: use the extractor-derived policy (equivalent to the
    // hand-written one) and verify the behavioural split.
    let extracted = extract_analytics_policy();
    let policies = if extracted.is_empty() {
        analytics_block_policy()
    } else {
        extracted.clone()
    };
    let mut bp_testbed = Testbed::new(Deployment::BorderPatrol {
        policies,
        config: EnforcerConfig::default(),
    });
    let app = bp_testbed.install_app(spec)?;
    let bp_login = bp_testbed.run(app, "fb-login")?;
    let bp_analytics = bp_testbed.run(app, "fb-analytics")?;
    let bp_sync = bp_testbed.run(app, "calendar-sync")?;

    Ok(FacebookCaseResult {
        baseline_login_works: baseline_login.fully_delivered(),
        baseline_analytics_blocked: baseline_analytics.fully_blocked(),
        borderpatrol_login_works: bp_login.fully_delivered(),
        borderpatrol_analytics_blocked: bp_analytics.fully_blocked(),
        borderpatrol_sync_works: bp_sync.fully_delivered(),
        extracted_policies: extracted.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borderpatrol_preserves_login_and_blocks_analytics() {
        let result = run().unwrap();
        // The endpoint block breaks login (the paper's observation).
        assert!(!result.baseline_login_works);
        assert!(result.baseline_analytics_blocked);
        // BorderPatrol separates the two flows and leaves sync alone.
        assert!(result.borderpatrol_login_works);
        assert!(result.borderpatrol_analytics_blocked);
        assert!(result.borderpatrol_sync_works);
        assert!(result.borderpatrol_wins());
        assert!(result.extracted_policies > 0);
        assert!(result.to_table().render().contains("BorderPatrol"));
    }

    #[test]
    fn extractor_derived_policy_targets_the_analytics_path_only() {
        let policies = extract_analytics_policy();
        assert!(!policies.is_empty());
        // None of the extracted targets may touch the login path classes.
        for policy in policies.iter() {
            assert!(
                !policy.target().contains("login"),
                "policy {policy} touches login"
            );
            assert!(!policy.target().contains("LoginManager"));
        }
    }
}
