//! Adversarial fleet experiment (beyond-paper: §VI/§VII threat coverage).
//!
//! The paper validates enforcement against well-behaved traces; this
//! experiment exercises the enforcement plane the way a hostile fleet would:
//! a mixed fleet of devices where every
//! [`AdversaryModel`](crate::scenario::AdversaryModel) compromises a
//! slice of the fleet, plus a policy hot swap raced against live traffic.
//! The headline result is the adversary table — every model's packets, how
//! many were dropped, and which [`bp_core::enforcer::EnforcerStats`] counter
//! they landed in.

use serde::Serialize;

use bp_core::policy::{Policy, PolicySet};
use bp_types::{EnforcementLevel, Error};

use crate::report::TextTable;
use crate::scenario::{self, ScenarioReport, ScenarioSpec};

/// Configuration of the adversarial fleet experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AdversarialConfig {
    /// Fleet size in devices.
    pub devices: u32,
    /// Master seed.
    pub seed: u64,
    /// Worker shards of the enforcement plane.
    pub shards: usize,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            devices: 1_000,
            seed: 0xb0bde5,
            shards: 4,
        }
    }
}

impl AdversarialConfig {
    /// The acceptance-scale configuration: a 10,000-device fleet.
    pub fn fleet_scale() -> Self {
        AdversarialConfig {
            devices: 10_000,
            ..AdversarialConfig::default()
        }
    }
}

/// The adversarial fleet experiment result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AdversarialResult {
    /// The standard adversarial scenario's report.
    pub report: ScenarioReport,
    /// The same fleet with a mid-run policy hot swap raced in.
    pub hot_swap_report: ScenarioReport,
}

impl AdversarialResult {
    /// Render the adversary table of the standard run.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!(
                "Adversarial fleet — {} devices, {} shards, seed {}",
                self.report.devices, self.report.shards, self.report.seed
            ),
            &["model", "paper", "emitted", "dropped", "expected counter"],
        );
        for outcome in &self.report.adversaries {
            table.add_row(vec![
                outcome.model.name().to_string(),
                outcome.model.paper_section().to_string(),
                outcome.emitted.to_string(),
                outcome.dropped.to_string(),
                outcome.expected_counter.clone(),
            ]);
        }
        table
    }

    /// True if no adversarial packet of either run reached the WAN side.
    pub fn airtight(&self) -> bool {
        self.report.all_adversarial_traffic_dropped()
            && self.hot_swap_report.all_adversarial_traffic_dropped()
    }
}

/// Run the adversarial fleet experiment.
///
/// # Errors
///
/// Propagates scenario-engine failures.
pub fn run(config: &AdversarialConfig) -> Result<AdversarialResult, Error> {
    let spec = ScenarioSpec::adversarial_fleet(
        "adversarial-fleet",
        config.devices,
        config.seed,
        config.shards,
    );
    let report = scenario::run(&spec)?;

    // Race a swap to a harsher policy set mid-run: nothing may be served a
    // stale verdict, visible as a flow-miss wave and extra policy drops.
    let swap_policies = PolicySet::from_policies(vec![
        Policy::deny(EnforcementLevel::Library, "com/facebook"),
        Policy::deny(EnforcementLevel::Library, "com/flurry"),
        Policy::deny(
            EnforcementLevel::Method,
            "Lcom/dropbox/android/taskqueue/UploadTask;->c",
        ),
    ]);
    let swap_spec = ScenarioSpec {
        name: "adversarial-fleet-hot-swap".to_string(),
        ..spec
    }
    .with_hot_swap(2, swap_policies);
    let hot_swap_report = scenario::run(&swap_spec)?;

    Ok(AdversarialResult {
        report,
        hot_swap_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AdversaryModel;

    #[test]
    fn small_fleet_is_airtight_and_renders() {
        let result = run(&AdversarialConfig {
            devices: 120,
            seed: 5,
            shards: 2,
        })
        .unwrap();
        assert!(result.airtight());
        assert_eq!(result.report.adversaries.len(), AdversaryModel::ALL.len());
        let rendered = result.to_table().render();
        assert!(rendered.contains("context-replay"));
        assert!(rendered.contains("dropped_context_switch"));
        assert_eq!(result.hot_swap_report.hot_swaps, 1);
    }
}
