//! Fig. 4 — mean HTTP GET latency across the six stack configurations.
//!
//! The experiment wraps [`crate::perf::StressRunner`] and reports one row per
//! configuration, in the order of the figure's x-axis, together with the two
//! deltas the paper calls out: the NFQUEUE consumer cost ((ii)→(iii)) and the
//! `getStackTrace` cost ((iv)→(v)).

use serde::{Deserialize, Serialize};

use bp_netsim::clock::SimDuration;
use bp_types::Error;

use crate::perf::{ConfigurationResult, StackConfiguration, StressRunner};
use crate::report::TextTable;

/// Configuration of the Fig. 4 experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig4Config {
    /// HTTP requests per configuration (the paper: 10,000 iterations × 25 runs).
    pub iterations: usize,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config { iterations: 200 }
    }
}

impl Fig4Config {
    /// The paper-scale iteration count (expensive but still fast in simulation).
    pub fn paper_scale() -> Self {
        Fig4Config { iterations: 10_000 }
    }
}

/// The Fig. 4 result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Per-configuration mean latencies, in figure order.
    pub configurations: Vec<ConfigurationResult>,
}

impl Fig4Result {
    /// The mean latency of one configuration.
    pub fn latency(&self, configuration: StackConfiguration) -> Option<SimDuration> {
        self.configurations
            .iter()
            .find(|r| r.configuration == configuration)
            .map(|r| r.mean_latency)
    }

    /// The added cost of the NFQUEUE consumer ((ii) → (iii)); the paper
    /// reports roughly +1 ms.
    pub fn nfqueue_overhead(&self) -> Option<SimDuration> {
        Some(
            self.latency(StackConfiguration::DefaultTapNfqueue)?
                .saturating_sub(self.latency(StackConfiguration::DefaultTap)?),
        )
    }

    /// The added cost of collecting the stack trace ((iv) → (v)); the paper
    /// reports roughly +1.6 ms.
    pub fn get_stack_trace_overhead(&self) -> Option<SimDuration> {
        Some(
            self.latency(StackConfiguration::StaticGetStackTapNfqueue)?
                .saturating_sub(self.latency(StackConfiguration::StaticInjectTapNfqueue)?),
        )
    }

    /// Total overhead of the full system over the TAP baseline.
    pub fn total_overhead(&self) -> Option<SimDuration> {
        Some(
            self.latency(StackConfiguration::DynamicTapNfqueue)?
                .saturating_sub(self.latency(StackConfiguration::DefaultTap)?),
        )
    }

    /// Render the figure as a table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Fig. 4 — mean HTTP GET latency per stack configuration",
            &["configuration", "mean latency (ms)"],
        );
        for result in &self.configurations {
            table.add_row(vec![
                result.configuration.label().to_string(),
                format!("{:.3}", result.mean_latency.as_millis_f64()),
            ]);
        }
        if let (Some(nfq), Some(stack), Some(total)) = (
            self.nfqueue_overhead(),
            self.get_stack_trace_overhead(),
            self.total_overhead(),
        ) {
            table.add_row(vec![
                "delta (ii)->(iii) nfqueue".to_string(),
                format!("+{:.3}", nfq.as_millis_f64()),
            ]);
            table.add_row(vec![
                "delta (iv)->(v) getStackTrace".to_string(),
                format!("+{:.3}", stack.as_millis_f64()),
            ]);
            table.add_row(vec![
                "total overhead vs default-tap".to_string(),
                format!("+{:.3}", total.as_millis_f64()),
            ]);
        }
        table
    }
}

/// Run the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates stress-runner failures.
pub fn run(config: &Fig4Config) -> Result<Fig4Result, Error> {
    let runner = StressRunner::new(config.iterations);
    Ok(Fig4Result {
        configurations: runner.measure_all()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_and_deltas_match_the_paper() {
        let result = run(&Fig4Config { iterations: 50 }).unwrap();
        assert_eq!(result.configurations.len(), 6);

        // The nfqueue consumer adds on the order of a millisecond or less.
        let nfq = result.nfqueue_overhead().unwrap();
        assert!(
            nfq.as_micros() >= 300 && nfq.as_micros() <= 1_500,
            "nfq overhead {nfq}"
        );

        // getStackTrace dominates the on-device overhead (~1.6 ms).
        let stack = result.get_stack_trace_overhead().unwrap();
        assert!(
            stack.as_micros() >= 1_400 && stack.as_micros() <= 1_900,
            "getStackTrace overhead {stack}"
        );

        // Total absolute overhead stays within a few milliseconds —
        // "negligible compared to hundreds of ms of WAN latency".
        let total = result.total_overhead().unwrap();
        assert!(total.as_micros() < 4_000, "total overhead {total}");

        let table = result.to_table();
        assert!(table.render().contains("dynamic-tap-nfq"));
        assert!(table.render().contains("getStackTrace"));
    }

    #[test]
    fn latencies_increase_monotonically_after_the_interface_switch() {
        let result = run(&Fig4Config { iterations: 30 }).unwrap();
        let order = [
            StackConfiguration::DefaultTap,
            StackConfiguration::DefaultTapNfqueue,
            StackConfiguration::StaticInjectTapNfqueue,
            StackConfiguration::StaticGetStackTapNfqueue,
            StackConfiguration::DynamicTapNfqueue,
        ];
        for pair in order.windows(2) {
            let a = result.latency(pair[0]).unwrap();
            let b = result.latency(pair[1]).unwrap();
            assert!(
                b >= a,
                "{:?} should not be faster than {:?}",
                pair[1],
                pair[0]
            );
        }
        // And the SLIRP baseline is slower than the TAP baseline.
        assert!(
            result.latency(StackConfiguration::DefaultSlirp).unwrap()
                > result.latency(StackConfiguration::DefaultTap).unwrap()
        );
    }
}
