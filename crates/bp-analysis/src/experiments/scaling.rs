//! Connection-scaling experiment (§I / §VI-D claim).
//!
//! The paper argues the per-socket cost of collecting and encoding the call
//! stack amortises over the socket's lifetime and stays negligible "even when
//! seeking to thousands of connections".  This experiment measures the mean
//! per-connection on-device cost and the enforcer's throughput accounting as
//! the number of connections grows.

use serde::{Deserialize, Serialize};

use bp_types::Error;

use crate::perf::{connection_scaling, ScalingPoint};
use crate::report::TextTable;

/// Configuration of the scaling experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingConfig {
    /// The connection counts to measure.
    pub connection_counts: Vec<usize>,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            connection_counts: vec![10, 100, 1_000],
        }
    }
}

impl ScalingConfig {
    /// The paper-scale sweep up to thousands of connections.
    pub fn paper_scale() -> Self {
        ScalingConfig {
            connection_counts: vec![10, 100, 1_000, 5_000, 10_000],
        }
    }
}

/// The scaling experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingResult {
    /// One measurement per connection count.
    pub points: Vec<ScalingPoint>,
}

impl ScalingResult {
    /// Whether the per-connection on-device cost stays flat (within
    /// `tolerance_us` microseconds) across the sweep — the paper's
    /// amortisation claim.
    pub fn per_connection_cost_is_flat(&self, tolerance_us: u64) -> bool {
        let Some(first) = self.points.first() else {
            return true;
        };
        self.points.iter().all(|p| {
            p.mean_on_device_latency
                .as_micros()
                .abs_diff(first.mean_on_device_latency.as_micros())
                <= tolerance_us
        })
    }

    /// Render as a table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Connection scaling — per-connection overhead under full BorderPatrol",
            &[
                "connections",
                "mean on-device latency (ms)",
                "mean packets delivered",
            ],
        );
        for point in &self.points {
            table.add_row(vec![
                point.connections.to_string(),
                format!("{:.3}", point.mean_on_device_latency.as_millis_f64()),
                format!("{:.2}", point.mean_packets),
            ]);
        }
        table
    }
}

/// Run the scaling experiment.
///
/// # Errors
///
/// Propagates testbed failures.
pub fn run(config: &ScalingConfig) -> Result<ScalingResult, Error> {
    Ok(ScalingResult {
        points: connection_scaling(&config.connection_counts)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_stays_flat_as_connections_grow() {
        let result = run(&ScalingConfig {
            connection_counts: vec![5, 50, 200],
        })
        .unwrap();
        assert_eq!(result.points.len(), 3);
        assert!(result.per_connection_cost_is_flat(100));
        // Every connection delivered its packet(s).
        assert!(result.points.iter().all(|p| p.mean_packets >= 1.0));
        assert!(result.to_table().render().contains("connections"));
    }
}
