//! Cloud-storage case study (§VI-C): Dropbox and Box, upload vs download.
//!
//! The comparison the paper draws: a pure on-network enforcement point either
//! cannot separate upload from download at all (Dropbox uses one endpoint for
//! both) or breaks the workflow when it tries (blocking Box's upload endpoint
//! also breaks listing/browsing in practice; a flow-size threshold misses
//! small uploads and cuts large legitimate transfers).  BorderPatrol with one
//! method-level deny per app blocks exactly the upload functionality and
//! leaves authentication, browsing and download intact.

use serde::{Deserialize, Serialize};

use bp_appsim::generator::CorpusGenerator;
use bp_baseline::{FlowSizeThreshold, IpBlocklist};
use bp_core::enforcer::EnforcerConfig;
use bp_core::policy::{Policy, PolicySet};
use bp_types::{EnforcementLevel, Error};

use crate::report::TextTable;
use crate::testbed::{Deployment, Testbed};

/// Enforcement mechanisms compared by the case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mechanism {
    /// No enforcement (ground truth that everything works).
    NoEnforcement,
    /// On-network IP/DNS blocklist of the upload endpoint.
    IpBlocklistBaseline,
    /// On-network per-flow outbound size threshold.
    FlowThresholdBaseline,
    /// BorderPatrol with a method-level deny policy on the upload task.
    BorderPatrol,
}

impl Mechanism {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::NoEnforcement => "no enforcement",
            Mechanism::IpBlocklistBaseline => "on-network IP blocklist",
            Mechanism::FlowThresholdBaseline => "on-network flow threshold",
            Mechanism::BorderPatrol => "BorderPatrol",
        }
    }
}

/// Outcome of exercising one app's functionalities under one mechanism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MechanismOutcome {
    /// The mechanism evaluated.
    pub mechanism: Mechanism,
    /// `(functionality, delivered)` for every functionality of the app.
    pub functionality_delivered: Vec<(String, bool)>,
}

impl MechanismOutcome {
    /// Whether `functionality` survived under this mechanism.
    pub fn delivered(&self, functionality: &str) -> Option<bool> {
        self.functionality_delivered
            .iter()
            .find(|(name, _)| name == functionality)
            .map(|(_, delivered)| *delivered)
    }

    /// The paper's success criterion for the cloud-storage policy: upload
    /// blocked, everything else intact.
    pub fn upload_blocked_everything_else_intact(&self) -> bool {
        self.functionality_delivered
            .iter()
            .all(|(name, delivered)| {
                if name == "upload" {
                    !*delivered
                } else {
                    *delivered
                }
            })
    }
}

/// The full case-study result for one app.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloudCaseResult {
    /// `com.dropbox.android` or `com.box.android`.
    pub app: String,
    /// Outcomes per mechanism.
    pub outcomes: Vec<MechanismOutcome>,
}

impl CloudCaseResult {
    /// The outcome of a given mechanism.
    pub fn outcome(&self, mechanism: Mechanism) -> Option<&MechanismOutcome> {
        self.outcomes.iter().find(|o| o.mechanism == mechanism)
    }

    /// Render a functionality × mechanism matrix.
    pub fn to_table(&self) -> TextTable {
        let functionalities: Vec<String> = self
            .outcomes
            .first()
            .map(|o| {
                o.functionality_delivered
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect()
            })
            .unwrap_or_default();
        let mut header = vec!["mechanism"];
        let functionality_refs: Vec<&str> = functionalities.iter().map(String::as_str).collect();
        header.extend(functionality_refs);
        let mut table = TextTable::new(format!("Cloud storage case study — {}", self.app), &header);
        for outcome in &self.outcomes {
            let mut row = vec![outcome.mechanism.label().to_string()];
            for functionality in &functionalities {
                row.push(match outcome.delivered(functionality) {
                    Some(true) => "works".to_string(),
                    Some(false) => "BLOCKED".to_string(),
                    None => "-".to_string(),
                });
            }
            table.add_row(row);
        }
        table
    }
}

/// The method-level policies the paper derives for the two apps (Example 3 in
/// Snippet 1 for Dropbox, the `BoxRequestUpload` analogue for Box).
pub fn upload_block_policy(app_package: &str) -> PolicySet {
    let policy = if app_package.contains("dropbox") {
        Policy::deny(
            EnforcementLevel::Method,
            "Lcom/dropbox/android/taskqueue/UploadTask;->c",
        )
    } else {
        Policy::deny(
            EnforcementLevel::Class,
            "com/box/androidsdk/content/requests/BoxRequestUpload",
        )
    };
    PolicySet::from_policies(vec![policy])
}

fn exercise(
    testbed: &mut Testbed,
    spec: &bp_appsim::app::AppSpec,
    mechanism: Mechanism,
) -> Result<MechanismOutcome, Error> {
    let app = testbed.install_app(spec.clone())?;
    let mut functionality_delivered = Vec::new();
    for functionality in &spec.functionalities {
        let outcome = testbed.run(app, &functionality.name)?;
        functionality_delivered.push((functionality.name.clone(), outcome.fully_delivered()));
    }
    Ok(MechanismOutcome {
        mechanism,
        functionality_delivered,
    })
}

/// Run the case study for one cloud-storage app spec.
///
/// # Errors
///
/// Propagates testbed failures.
pub fn run_for(spec: &bp_appsim::app::AppSpec) -> Result<CloudCaseResult, Error> {
    let mut outcomes = Vec::new();

    // Ground truth.
    let mut testbed = Testbed::new(Deployment::None);
    outcomes.push(exercise(&mut testbed, spec, Mechanism::NoEnforcement)?);

    // IP blocklist baseline: block the endpoint the upload functionality uses.
    let upload_host = spec
        .functionality("upload")
        .map(|f| f.endpoint_host.clone())
        .unwrap_or_default();
    // Learn the deterministic address assignment from a scratch testbed.
    let mut scratch = Testbed::new(Deployment::None);
    scratch.install_app(spec.clone())?;
    let mut blocklist = IpBlocklist::new();
    if let Some(ip) = scratch.host_address(&upload_host) {
        blocklist.block_ip(ip);
    }
    let mut testbed = Testbed::new(Deployment::IpBlocklist(blocklist));
    outcomes.push(exercise(
        &mut testbed,
        spec,
        Mechanism::IpBlocklistBaseline,
    )?);

    // Flow-size threshold baseline (100 kB outbound per flow).
    let mut testbed = Testbed::new(Deployment::FlowThreshold(FlowSizeThreshold::new(100_000)));
    outcomes.push(exercise(
        &mut testbed,
        spec,
        Mechanism::FlowThresholdBaseline,
    )?);

    // BorderPatrol with the method-level upload deny.
    let mut testbed = Testbed::new(Deployment::BorderPatrol {
        policies: upload_block_policy(&spec.package_name),
        config: EnforcerConfig::default(),
    });
    outcomes.push(exercise(&mut testbed, spec, Mechanism::BorderPatrol)?);

    Ok(CloudCaseResult {
        app: spec.package_name.clone(),
        outcomes,
    })
}

/// Run the case study for both Dropbox and Box.
///
/// # Errors
///
/// Propagates testbed failures.
pub fn run() -> Result<Vec<CloudCaseResult>, Error> {
    Ok(vec![
        run_for(&CorpusGenerator::dropbox())?,
        run_for(&CorpusGenerator::box_app())?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropbox_only_borderpatrol_separates_upload_from_download() {
        let result = run_for(&CorpusGenerator::dropbox()).unwrap();

        let ground_truth = result.outcome(Mechanism::NoEnforcement).unwrap();
        assert!(ground_truth.functionality_delivered.iter().all(|(_, d)| *d));

        // Dropbox uses one endpoint: the IP blocklist kills download too.
        let blocklist = result.outcome(Mechanism::IpBlocklistBaseline).unwrap();
        assert_eq!(blocklist.delivered("upload"), Some(false));
        assert_eq!(blocklist.delivered("download"), Some(false));
        assert!(!blocklist.upload_blocked_everything_else_intact());

        // BorderPatrol blocks exactly the upload.
        let borderpatrol = result.outcome(Mechanism::BorderPatrol).unwrap();
        assert!(
            borderpatrol.upload_blocked_everything_else_intact(),
            "{borderpatrol:?}"
        );
    }

    #[test]
    fn box_blocklist_blocks_upload_but_borderpatrol_is_still_needed() {
        let result = run_for(&CorpusGenerator::box_app()).unwrap();

        // Box uses a dedicated upload endpoint, so the blocklist does block
        // the upload without touching browse/download in this simulation —
        // the paper's point is that in the real workflow listing precedes
        // upload; the structural takeaway preserved here is that BorderPatrol
        // achieves the same separation without any endpoint knowledge.
        let borderpatrol = result.outcome(Mechanism::BorderPatrol).unwrap();
        assert!(
            borderpatrol.upload_blocked_everything_else_intact(),
            "{borderpatrol:?}"
        );

        // The flow threshold misses nothing here only if the upload is large;
        // Box's browse/auth flows must never be cut.
        let flow = result.outcome(Mechanism::FlowThresholdBaseline).unwrap();
        assert_eq!(flow.delivered("browse"), Some(true));
        assert_eq!(flow.delivered("auth"), Some(true));
    }

    #[test]
    fn flow_threshold_misses_small_uploads() {
        // Shrink the Dropbox upload below the 100 kB threshold: the baseline
        // lets it through while BorderPatrol still blocks it.
        let mut spec = CorpusGenerator::dropbox();
        for functionality in &mut spec.functionalities {
            if functionality.name == "upload" {
                functionality.payload_bytes = 10_000;
            }
        }
        let result = run_for(&spec).unwrap();
        let flow = result.outcome(Mechanism::FlowThresholdBaseline).unwrap();
        assert_eq!(
            flow.delivered("upload"),
            Some(true),
            "small upload evades the threshold"
        );
        let borderpatrol = result.outcome(Mechanism::BorderPatrol).unwrap();
        assert_eq!(borderpatrol.delivered("upload"), Some(false));
    }

    #[test]
    fn table_renders_matrix() {
        let result = run_for(&CorpusGenerator::dropbox()).unwrap();
        let rendered = result.to_table().render();
        assert!(rendered.contains("BorderPatrol"));
        assert!(rendered.contains("BLOCKED"));
        assert!(rendered.contains("upload"));
    }
}
