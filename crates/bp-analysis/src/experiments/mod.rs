//! Runnable experiments, one per table/figure in the paper's evaluation.
//!
//! Each submodule exposes a configuration struct, a `run` entry point and a
//! result type that renders as a [`crate::report::TextTable`], so the same
//! code path backs the unit tests, the example binaries and the Criterion
//! benches.  The mapping to the paper is:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig3`] | Fig. 3 — apps per IoI count + the same-package breakdown |
//! | [`validation`] | §VI-B-1 — 1,050-library blacklist over the 60-app set |
//! | [`case_cloud`] | §VI-C — Dropbox/Box upload-vs-download case study |
//! | [`case_facebook`] | §VI-C — Facebook SDK login-vs-analytics case study |
//! | [`fig4`] | Fig. 4 — per-request latency across six configurations |
//! | [`scaling`] | §VI-D / §I — overhead when scaling to many connections |
//! | [`hash_collision`] | §VII — truncated-hash collision analysis |
//! | [`ablations`] | §VII design alternatives (set-once kernel, stripped debug info, multi-dex encoding) |
//! | [`adversarial`] | beyond-paper — adversarial fleet coverage of the §VI/§VII threat discussion |

pub mod ablations;
pub mod adversarial;
pub mod case_cloud;
pub mod case_facebook;
pub mod fig3;
pub mod fig4;
pub mod hash_collision;
pub mod scaling;
pub mod validation;
