//! Ablations of the design choices discussed in §V and §VII.
//!
//! Three design knobs the paper calls out are exercised here:
//!
//! 1. **Kernel hardening (tag replay)** — the prototype kernel patch lets any
//!    app overwrite `IP_OPTIONS`; the proposed set-once mode closes the
//!    replay channel.  The ablation shows the replay succeeding on the
//!    prototype kernel and failing on the hardened one.
//! 2. **Stripped debug information (overload merging)** — without line
//!    numbers, overloaded methods collapse into one identifier; context is
//!    still attached and policies still work at method-name granularity.
//! 3. **Multi-dex encoding width** — multi-dex apps need 3-byte frame indexes,
//!    which reduces how many frames fit the 40-byte budget.

use serde::{Deserialize, Serialize};

use bp_appsim::generator::CorpusGenerator;
use bp_core::encoding::ContextEncoding;
use bp_core::enforcer::EnforcerConfig;
use bp_core::policy::{Policy, PolicySet};
use bp_netsim::kernel::KernelConfig;
use bp_netsim::options::IpOptionKind;
use bp_types::{EnforcementLevel, Error};

use crate::report::TextTable;
use crate::testbed::{Deployment, Testbed};

/// Result of the ablation suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Tag replay succeeded on the unhardened prototype kernel.
    pub replay_possible_on_prototype_kernel: bool,
    /// Tag replay was rejected on the set-once hardened kernel.
    pub replay_blocked_on_hardened_kernel: bool,
    /// With stripped debug info, the upload-blocking policy still works.
    pub stripped_debug_policy_still_enforced: bool,
    /// Narrow (2-byte) frame capacity within the options budget.
    pub narrow_frame_capacity: usize,
    /// Wide (3-byte) frame capacity within the options budget.
    pub wide_frame_capacity: usize,
    /// Multi-dex apps emit wide-encoded contexts.
    pub multidex_uses_wide_encoding: bool,
}

impl AblationResult {
    /// Render as a table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            "Ablations — §VII design alternatives",
            &["ablation", "observation"],
        );
        let yes_no = |b: bool| if b { "yes" } else { "no" }.to_string();
        table.add_row(vec![
            "tag replay on prototype kernel".to_string(),
            yes_no(self.replay_possible_on_prototype_kernel),
        ]);
        table.add_row(vec![
            "tag replay blocked on set-once kernel".to_string(),
            yes_no(self.replay_blocked_on_hardened_kernel),
        ]);
        table.add_row(vec![
            "upload policy holds with stripped debug info".to_string(),
            yes_no(self.stripped_debug_policy_still_enforced),
        ]);
        table.add_row(vec![
            "frames per packet (2-byte indexes)".to_string(),
            self.narrow_frame_capacity.to_string(),
        ]);
        table.add_row(vec![
            "frames per packet (3-byte indexes)".to_string(),
            self.wide_frame_capacity.to_string(),
        ]);
        table.add_row(vec![
            "multi-dex app uses wide encoding".to_string(),
            yes_no(self.multidex_uses_wide_encoding),
        ]);
        table
    }
}

fn replay_outcome(config: KernelConfig) -> Result<bool, Error> {
    use bp_netsim::addr::Endpoint;
    use bp_netsim::kernel::{KernelNetStack, ProcessCredentials};
    use bp_netsim::options::{IpOption, IpOptions};
    use bp_types::AppId;

    let mut kernel = KernelNetStack::new(config, Endpoint::new([10, 0, 0, 5], 0));
    let creds = ProcessCredentials::unprivileged(10_100);
    let benign = kernel.socket(AppId::new(1));
    let malicious = kernel.socket(AppId::new(1));
    kernel.connect(&creds, benign, Endpoint::new([198, 51, 100, 1], 443))?;
    kernel.connect(&creds, malicious, Endpoint::new([198, 51, 100, 1], 443))?;

    let mut options = IpOptions::new();
    options.push(IpOption::new(
        IpOptionKind::BorderPatrolContext,
        vec![0xAA; 10],
    )?)?;
    kernel.setsockopt_ip_options(&creds, benign, options)?;

    // The malicious function first lets the (hypothetical) Context Manager tag
    // its socket, then tries to overwrite that tag with the benign one.
    let mut own_tag = IpOptions::new();
    own_tag.push(IpOption::new(
        IpOptionKind::BorderPatrolContext,
        vec![0xBB; 10],
    )?)?;
    kernel.setsockopt_ip_options(&creds, malicious, own_tag)?;
    Ok(kernel.replay_options(&creds, benign, malicious).is_ok())
}

fn stripped_debug_policy_enforced() -> Result<bool, Error> {
    let policies = PolicySet::from_policies(vec![Policy::deny(
        EnforcementLevel::Method,
        "Lcom/dropbox/android/taskqueue/UploadTask;->c",
    )]);
    let mut testbed = Testbed::new(Deployment::BorderPatrol {
        policies,
        config: EnforcerConfig::default(),
    });
    let app = testbed.install_app(CorpusGenerator::dropbox().without_debug_info())?;
    let upload = testbed.run(app, "upload")?;
    let download = testbed.run(app, "download")?;
    Ok(upload.fully_blocked() && download.fully_delivered())
}

fn multidex_wide_encoding() -> Result<bool, Error> {
    let mut testbed = Testbed::new(Deployment::BorderPatrol {
        policies: PolicySet::new(),
        config: EnforcerConfig::default(),
    });
    let app = testbed.install_app(CorpusGenerator::dropbox().as_multidex())?;
    testbed.run(app, "browse")?;
    let capture = testbed.network.pre_chain_capture();
    for captured in capture.iter() {
        if let Some(option) = captured
            .packet
            .options()
            .find(IpOptionKind::BorderPatrolContext)
        {
            return Ok(ContextEncoding::decode(&option.data)?.wide);
        }
    }
    Ok(false)
}

/// Run the ablation suite.
///
/// # Errors
///
/// Propagates testbed and kernel failures.
pub fn run() -> Result<AblationResult, Error> {
    Ok(AblationResult {
        replay_possible_on_prototype_kernel: replay_outcome(KernelConfig::borderpatrol_prototype())?,
        replay_blocked_on_hardened_kernel: !replay_outcome(KernelConfig::borderpatrol_hardened())?,
        stripped_debug_policy_still_enforced: stripped_debug_policy_enforced()?,
        narrow_frame_capacity: ContextEncoding::max_frames(false),
        wide_frame_capacity: ContextEncoding::max_frames(true),
        multidex_uses_wide_encoding: multidex_wide_encoding()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_suite_matches_paper_expectations() {
        let result = run().unwrap();
        assert!(result.replay_possible_on_prototype_kernel);
        assert!(result.replay_blocked_on_hardened_kernel);
        assert!(result.stripped_debug_policy_still_enforced);
        assert_eq!(result.narrow_frame_capacity, 14);
        assert_eq!(result.wide_frame_capacity, 9);
        assert!(result.multidex_uses_wide_encoding);
        assert!(result.to_table().render().contains("tag replay"));
    }
}
