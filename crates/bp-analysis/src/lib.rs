//! Evaluation harness reproducing every table and figure of the BorderPatrol
//! paper.
//!
//! The experiments are organised around a [`testbed::Testbed`] that wires a
//! simulated BYOD device, the enterprise network, and a deployment (full
//! BorderPatrol, a pure on-network baseline, or nothing) into the packet path
//! described by Figure 1 of the paper.  On top of the testbed:
//!
//! * [`ioi`] computes the "IPs of interest" statistics behind **Fig. 3** and
//!   the same-package / cross-package breakdown of §VI-B;
//! * [`perf`] runs the six stack configurations of the **Fig. 4** latency
//!   sweep plus the connection-scaling measurement;
//! * [`experiments`] packages each paper result (Fig. 3, Fig. 4, the 1,050-
//!   library validation, the Dropbox/Box and Facebook-SDK case studies, the
//!   hash-collision analysis and the ablations) as a runnable experiment that
//!   prints the same rows/series the paper reports;
//! * [`scenario`] goes beyond the paper's happy-path traces: a
//!   deterministic, seed-driven engine composing fleet specs (10k+ devices)
//!   with adversary models (context spoofing, replay, repackaged apps,
//!   options abuse, policy-hot-swap races) and driving them through the
//!   sharded enforcement plane — the workload harness future evaluations
//!   plug into;
//! * [`report`] renders results as plain-text tables for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod ioi;
pub mod perf;
pub mod report;
pub mod scenario;
pub mod testbed;

pub use ioi::{IoiAnalysis, IoiHistogram};
pub use report::TextTable;
pub use scenario::{
    AdversaryCounters, AdversaryModel, AdversaryProfile, ConnectRate, FleetSpec, ScenarioReport,
    ScenarioSpec, TickObserver, TickTelemetry,
};
pub use testbed::{CompromisedSession, Deployment, RunOutcome, Testbed};
