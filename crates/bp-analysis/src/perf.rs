//! Performance configurations and the stress-test runner (Fig. 4, §VI-D).
//!
//! The paper measures the average latency of an HTTP GET request for a
//! 297-byte static page across six incrementally instrumented configurations
//! of the stack, from the plain emulator with user-mode (SLIRP) networking to
//! the full BorderPatrol deployment.  [`StackConfiguration`] enumerates those
//! configurations, and [`StressRunner`] replays the stress-test app against
//! each of them, accumulating simulated latency exactly where the real system
//! pays it (interface traversal, NFQUEUE round trips, hook dispatch,
//! `getStackTrace`, context encoding, `setsockopt`).

use serde::{Deserialize, Serialize};

use bp_appsim::generator::CorpusGenerator;
use bp_core::context::{ContextManager, SharedContextManager};
use bp_core::enforcer::EnforcerConfig;
use bp_core::policy::PolicySet;
use bp_device::hooks::{GetStackOnlyHook, StaticInjectHook};
use bp_netsim::clock::{LatencyModel, SimDuration};
use bp_netsim::iface::InterfaceMode;
use bp_types::Error;

use crate::testbed::{Deployment, Testbed};

/// The six stack configurations of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StackConfiguration {
    /// (i) Default emulator with SLIRP user-mode networking.
    DefaultSlirp,
    /// (ii) Default emulator over a TAP interface.
    DefaultTap,
    /// (iii) TAP plus iptables redirection into an NFQUEUE consumed by a
    /// pass-through (empty policy) consumer.
    DefaultTapNfqueue,
    /// (iv) Patched kernel + hooking framework injecting a static string into
    /// `IP_OPTIONS` (no stack collection).
    StaticInjectTapNfqueue,
    /// (v) As (iv) but the hook also performs the `getStackTrace` call.
    StaticGetStackTapNfqueue,
    /// (vi) The full BorderPatrol prototype: dynamic stack collection,
    /// encoding and injection.
    DynamicTapNfqueue,
}

impl StackConfiguration {
    /// All configurations in the order Fig. 4 presents them.
    pub const ALL: [StackConfiguration; 6] = [
        StackConfiguration::DefaultSlirp,
        StackConfiguration::DefaultTap,
        StackConfiguration::DefaultTapNfqueue,
        StackConfiguration::StaticInjectTapNfqueue,
        StackConfiguration::StaticGetStackTapNfqueue,
        StackConfiguration::DynamicTapNfqueue,
    ];

    /// The label used on the Fig. 4 x-axis.
    pub fn label(self) -> &'static str {
        match self {
            StackConfiguration::DefaultSlirp => "default-SLIRP",
            StackConfiguration::DefaultTap => "default-tap",
            StackConfiguration::DefaultTapNfqueue => "default-tap-nfq",
            StackConfiguration::StaticInjectTapNfqueue => "static-inject-tap-nfq",
            StackConfiguration::StaticGetStackTapNfqueue => "static-getStack-tap-nfq",
            StackConfiguration::DynamicTapNfqueue => "dynamic-tap-nfq",
        }
    }

    /// The interface mode this configuration uses.
    pub fn interface_mode(self) -> InterfaceMode {
        match self {
            StackConfiguration::DefaultSlirp => InterfaceMode::Slirp,
            _ => InterfaceMode::Tap,
        }
    }

    /// Whether packets are redirected into an NFQUEUE in this configuration.
    pub fn uses_nfqueue(self) -> bool {
        !matches!(
            self,
            StackConfiguration::DefaultSlirp | StackConfiguration::DefaultTap
        )
    }
}

/// The measured result of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigurationResult {
    /// The configuration measured.
    pub configuration: StackConfiguration,
    /// Number of HTTP requests issued.
    pub requests: u64,
    /// Mean simulated latency per request.
    pub mean_latency: SimDuration,
}

/// The stress-test runner.
#[derive(Debug, Clone)]
pub struct StressRunner {
    /// Requests per configuration (the paper issues 10,000 per run and repeats
    /// 25 times; the simulation default keeps runtimes short while remaining
    /// statistically meaningless-free since the model is deterministic).
    pub iterations: usize,
    /// The latency model (shared by device and network).
    pub latency: LatencyModel,
}

impl Default for StressRunner {
    fn default() -> Self {
        StressRunner {
            iterations: 200,
            latency: LatencyModel::default(),
        }
    }
}

impl StressRunner {
    /// Create a runner issuing `iterations` requests per configuration.
    pub fn new(iterations: usize) -> Self {
        StressRunner {
            iterations,
            ..StressRunner::default()
        }
    }

    /// Build the testbed for one configuration.
    fn build_testbed(
        &self,
        configuration: StackConfiguration,
    ) -> Result<(Testbed, bp_types::AppId), Error> {
        let deployment = match configuration {
            StackConfiguration::DefaultSlirp | StackConfiguration::DefaultTap => Deployment::None,
            // (iii)-(v) use an empty-policy BorderPatrol network side; the
            // difference is on the device.
            _ => Deployment::BorderPatrol {
                policies: PolicySet::new(),
                config: EnforcerConfig::permissive(),
            },
        };
        let mut testbed = Testbed::with_options(
            deployment,
            configuration.interface_mode(),
            self.latency.clone(),
        );

        let spec = CorpusGenerator::stress_test_app();
        match configuration {
            StackConfiguration::StaticInjectTapNfqueue => {
                // Remove nothing: the BorderPatrol deployment installed the
                // Context Manager hook; configurations (iv)/(v) instead want
                // only the static hooks, so rebuild the device hook set by
                // constructing a dedicated testbed without BorderPatrol's
                // device side.  Simplest: use a None-device deployment and add
                // the network queue manually is equivalent; here we just add
                // the static hook in addition, which dominates the outcome
                // because the Context Manager is not registered for the app
                // (it never injects).
                testbed
                    .device
                    .install_hook(Box::new(StaticInjectHook::new(vec![0xAB; 12])));
            }
            StackConfiguration::StaticGetStackTapNfqueue => {
                testbed
                    .device
                    .install_hook(Box::new(GetStackOnlyHook::new(vec![0xAB; 12])));
            }
            _ => {}
        }

        let app = match configuration {
            StackConfiguration::DynamicTapNfqueue => testbed.install_app(spec)?,
            _ => {
                // For non-dynamic configurations the Context Manager must not
                // inject even if deployed; installing the app without
                // registering it with the Context Manager achieves that, so
                // bypass `install_app`'s registration by installing a spec
                // whose app the manager does not know.  `install_app` always
                // registers, so for (iii)-(v) we install through the device
                // directly and register the endpoint by hand.
                for host in spec.endpoint_hosts() {
                    let ip = std::net::Ipv4Addr::new(203, 0, 113, 7);
                    testbed.network.register_server(host, ip, 297);
                }
                testbed
                    .device
                    .install_app(spec, bp_device::device::Profile::Work)
            }
        };
        Ok((testbed, app))
    }

    /// Measure one configuration.
    ///
    /// # Errors
    ///
    /// Propagates testbed construction or execution failures.
    pub fn measure(&self, configuration: StackConfiguration) -> Result<ConfigurationResult, Error> {
        let (mut testbed, app) = self.build_testbed(configuration)?;
        // Resolve the stress endpoint: either through install_app's table or
        // the manual registration above.
        let endpoint = testbed
            .host_address("stress.local")
            .map(|ip| bp_netsim::addr::Endpoint::from_ip(ip, 443))
            .unwrap_or_else(|| bp_netsim::addr::Endpoint::new([203, 0, 113, 7], 443));

        let mut total = SimDuration::ZERO;
        let mut requests = 0u64;
        for _ in 0..self.iterations {
            let invocation = testbed
                .device
                .invoke_functionality(app, "http-get", endpoint)?;
            let mut request_latency = invocation.on_device_latency;
            for packet in invocation.packets {
                if let Some(latency) = testbed
                    .network
                    .transmit(testbed.device.id(), packet)
                    .latency()
                {
                    request_latency += latency;
                }
            }
            testbed.device.close_socket(invocation.socket);
            total += request_latency;
            requests += 1;
        }
        let mean_latency = SimDuration::from_micros(total.as_micros() / requests.max(1));
        Ok(ConfigurationResult {
            configuration,
            requests,
            mean_latency,
        })
    }

    /// Measure every configuration in Fig. 4 order.
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure.
    pub fn measure_all(&self) -> Result<Vec<ConfigurationResult>, Error> {
        StackConfiguration::ALL
            .iter()
            .map(|c| self.measure(*c))
            .collect()
    }
}

/// Connection-scaling measurement: mean per-connection setup cost when an app
/// opens `connections` sockets under the full BorderPatrol deployment.  The
/// expensive work (stack collection + encoding) happens once per socket and
/// amortises over that socket's packets, which is the paper's argument for the
/// overhead being negligible at scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of connections opened.
    pub connections: usize,
    /// Mean on-device latency per connection.
    pub mean_on_device_latency: SimDuration,
    /// Mean number of packets delivered per connection.
    pub mean_packets: f64,
}

/// Run the connection-scaling measurement for the given connection counts.
///
/// # Errors
///
/// Propagates testbed failures.
pub fn connection_scaling(counts: &[usize]) -> Result<Vec<ScalingPoint>, Error> {
    let mut points = Vec::with_capacity(counts.len());
    for &connections in counts {
        let mut testbed = Testbed::new(Deployment::BorderPatrol {
            policies: PolicySet::new(),
            config: EnforcerConfig::default(),
        });
        let app = testbed.install_app(CorpusGenerator::stress_test_app())?;
        let mut total_latency = SimDuration::ZERO;
        let mut total_packets = 0usize;
        for _ in 0..connections {
            let outcome = testbed.run(app, "http-get")?;
            total_latency += outcome.on_device_latency;
            total_packets += outcome.packets_delivered;
        }
        points.push(ScalingPoint {
            connections,
            mean_on_device_latency: SimDuration::from_micros(
                total_latency.as_micros() / connections.max(1) as u64,
            ),
            mean_packets: total_packets as f64 / connections.max(1) as f64,
        });
    }
    Ok(points)
}

/// An explicit mention of the Context Manager type so the dynamic
/// configuration's dependency is visible to readers of this module.
#[allow(dead_code)]
fn _uses_context_manager(_: &ContextManager, _: &SharedContextManager) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configuration_metadata() {
        assert_eq!(StackConfiguration::ALL.len(), 6);
        assert_eq!(
            StackConfiguration::DefaultSlirp.interface_mode(),
            InterfaceMode::Slirp
        );
        assert_eq!(
            StackConfiguration::DynamicTapNfqueue.interface_mode(),
            InterfaceMode::Tap
        );
        assert!(!StackConfiguration::DefaultTap.uses_nfqueue());
        assert!(StackConfiguration::DynamicTapNfqueue.uses_nfqueue());
        assert_eq!(StackConfiguration::DefaultSlirp.label(), "default-SLIRP");
    }

    #[test]
    fn latency_ordering_matches_figure_4() {
        let runner = StressRunner::new(25);
        let results = runner.measure_all().unwrap();
        let by_config: std::collections::BTreeMap<_, _> = results
            .iter()
            .map(|r| (r.configuration, r.mean_latency))
            .collect();

        let slirp = by_config[&StackConfiguration::DefaultSlirp];
        let tap = by_config[&StackConfiguration::DefaultTap];
        let nfq = by_config[&StackConfiguration::DefaultTapNfqueue];
        let static_inject = by_config[&StackConfiguration::StaticInjectTapNfqueue];
        let get_stack = by_config[&StackConfiguration::StaticGetStackTapNfqueue];
        let dynamic = by_config[&StackConfiguration::DynamicTapNfqueue];

        // SLIRP is slower than TAP (the paper's (i) vs (ii)).
        assert!(slirp > tap);
        // Adding the NFQUEUE consumer costs measurably more ((ii) vs (iii)).
        assert!(nfq > tap);
        // Hook + static inject adds a little ((iii) vs (iv)).
        assert!(static_inject >= nfq);
        // getStackTrace is the dominant added cost ((iv) vs (v)).
        assert!(get_stack.as_micros() - static_inject.as_micros() >= 1_000);
        // The full dynamic pipeline is the most expensive configuration.
        assert!(dynamic >= get_stack);
        // Absolute overhead over the TAP baseline stays below ~2.5 ms + nfq cost,
        // mirroring the paper's "less than 2.5ms" claim for the added machinery.
        assert!(dynamic.saturating_sub(nfq).as_micros() < 2_500);
    }

    #[test]
    fn scaling_amortises_per_connection_cost() {
        let points = connection_scaling(&[5, 20]).unwrap();
        assert_eq!(points.len(), 2);
        // Per-connection on-device cost is constant (it does not grow with the
        // number of connections).
        let diff = points[1]
            .mean_on_device_latency
            .as_micros()
            .abs_diff(points[0].mean_on_device_latency.as_micros());
        assert!(
            diff < 100,
            "per-connection cost should stay flat, diff {diff}us"
        );
        assert!(points.iter().all(|p| p.mean_packets >= 1.0));
    }
}
