//! The adversarial fleet-scale scenario engine.
//!
//! This is the workload harness every beyond-paper evaluation plugs into: a
//! [`ScenarioSpec`] composes a **fleet** (N devices × app mix × connect-rate
//! distribution on the simulated clock, see [`fleet::FleetSpec`]) with a set
//! of **adversary models** (context spoofing, replay, repackaged apps,
//! options abuse, … — see [`adversary::AdversaryModel`]) and drives the
//! whole fleet through the sharded enforcement plane
//! ([`ShardedEnforcer::inspect_batch`]), producing a [`ScenarioReport`].
//!
//! # Determinism
//!
//! Everything is seeded: the app mix, the device→app assignment, the
//! flow→functionality binding, every per-tick connect-rate draw and every
//! adversary's compromised-device set derive from [`ScenarioSpec::seed`]
//! alone, and packet batches reach the enforcer in a fixed order.  Running
//! the same spec twice yields **byte-identical** reports
//! ([`ScenarioReport::render`]), regardless of shard count — which is what
//! makes scenario reports diffable artifacts in regression tests.
//!
//! # Adversary → counter accounting
//!
//! The engine knows which packets it injected for which adversary model, and
//! [`ShardedEnforcer::inspect_batch`] returns verdicts in input order, so
//! every adversarial packet's fate is attributed exactly (no inference from
//! aggregate counters).  Under the standard strict configuration every
//! adversarial packet must be *dropped* and charged to the model's expected
//! [`EnforcerStats`] counter; an accepted adversarial packet is an
//! enforcement gap, and the integration tests fail on it.
//!
//! # Example
//!
//! ```
//! use bp_analysis::scenario::{self, ScenarioSpec};
//!
//! let spec = ScenarioSpec::adversarial_fleet("smoke", 50, 7, 2);
//! let report = scenario::run(&spec)?;
//! assert_eq!(report.devices, 50);
//! // Same seed ⇒ byte-identical report.
//! assert_eq!(scenario::run(&spec)?.render(), report.render());
//! # Ok::<(), bp_types::Error>(())
//! ```

pub mod adversary;
pub mod fleet;

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use std::sync::Arc;

use bp_appsim::monkey::weighted_index;
use bp_core::control::{ControlPlane, EnforcementEndpoint, RolloutError};
use bp_core::encoding::ContextEncoding;
use bp_core::enforcer::{EnforcerConfig, EnforcerStats, ShardedEnforcer};
use bp_core::faults::{FaultInjector, FaultPlan};
use bp_core::flow::FlowTableConfig;
use bp_core::offline::{OfflineAnalyzer, SignatureDatabase};
use bp_core::policy::{Policy, PolicySet};
use bp_core::runtime::BatchRuntime;
use bp_core::wire::{CaptureHeader, CaptureReader, CaptureWriter};
use bp_dex::MethodTable;
use bp_netsim::addr::Endpoint;
use bp_netsim::clock::SimDuration;
use bp_netsim::fleet::{trailing_data_options, PacketTemplate};
use bp_netsim::packet::Ipv4Packet;
use bp_types::{EnforcementLevel, Error};

pub use adversary::{AdversaryModel, AdversaryProfile};
pub use fleet::{ConnectRate, FleetSpec};

/// Callback [`PreparedScenario::run_recorded`] threads through the tick
/// loop: called once per synthesized packet with `(tick, origin_tag,
/// packet)` before inspection, in exact batch order.
type FrameRecorder<'a> = dyn FnMut(u32, u8, &Ipv4Packet) -> Result<(), Error> + 'a;

/// A deterministic policy-hot-swap event raced against fleet traffic.
///
/// At the start of the given tick the scenario commits a control-plane
/// transaction replacing the policy set: the commit compiles fresh tables
/// (one epoch bump) and hot-swaps the registered enforcer while every flow's
/// verdict is still cached under the old epoch — the bump must lazily
/// invalidate all of them (visible as a flow-miss wave in the report), and
/// no packet of the swap tick may be served a stale verdict.  A replacement
/// set equal to the active one commits as a no-op (no rebuild, no
/// invalidation).
#[derive(Debug, Clone, PartialEq)]
pub struct HotSwap {
    /// Tick at whose start the swap is installed (0-based).
    pub at_tick: u32,
    /// The replacement policy set.
    pub policies: PolicySet,
}

/// Complete description of one scenario run: fleet × adversaries × policies
/// × enforcement plane shape.
///
/// This is the input half of the engine's public contract
/// (`ScenarioSpec → ScenarioReport`); see [`run`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report heading).
    pub name: String,
    /// Master seed; every random draw in the run derives from it.
    pub seed: u64,
    /// The device fleet.
    pub fleet: FleetSpec,
    /// The adversaries deployed against the fleet (may be empty for a
    /// clean-traffic baseline).
    pub adversaries: Vec<AdversaryProfile>,
    /// The policy set compiled into the enforcement tables.
    pub policies: PolicySet,
    /// Enforcer configuration; adversarial scenarios normally run
    /// [`EnforcerConfig::strict`] so every model's packets are dropped.
    pub config: EnforcerConfig,
    /// Worker shards of the [`ShardedEnforcer`].
    pub shards: usize,
    /// Batch runtime of the [`ShardedEnforcer`] (persistent worker pool by
    /// default; [`BatchRuntime::Scoped`] re-enables the spawn-per-batch
    /// baseline for runtime-delta measurements).
    pub runtime: BatchRuntime,
    /// Number of simulated ticks driven.
    pub ticks: u32,
    /// Simulated wall-clock length of one tick, in milliseconds (drives the
    /// enforcer's flow-TTL clock).
    pub tick_millis: u64,
    /// Optional policy hot swap raced against the traffic.
    pub hot_swap: Option<HotSwap>,
    /// Optional deterministic fault plan (chaos runs): worker panics, wire
    /// corruption and commit failures injected by one shared
    /// [`FaultInjector`], so the same seed replays the same faults.
    pub faults: Option<FaultPlan>,
}

impl ScenarioSpec {
    /// The standard adversarial scenario: a mixed fleet of `devices` devices
    /// (case-study apps + seeded corpus), every adversary model at a 3%
    /// compromise ratio, the case-study deny policies, strict enforcement,
    /// three ticks of traffic.
    pub fn adversarial_fleet(
        name: impl Into<String>,
        devices: u32,
        seed: u64,
        shards: usize,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            seed,
            fleet: FleetSpec::mixed(devices, seed),
            adversaries: AdversaryProfile::all_models(0.03),
            policies: PolicySet::from_policies(vec![
                Policy::deny(
                    EnforcementLevel::Method,
                    "Lcom/dropbox/android/taskqueue/UploadTask;->c",
                ),
                Policy::deny(EnforcementLevel::Class, "com/facebook/appevents"),
                Policy::deny(EnforcementLevel::Library, "com/flurry"),
            ]),
            config: EnforcerConfig::strict(),
            shards,
            runtime: BatchRuntime::default(),
            ticks: 3,
            tick_millis: 500,
            hot_swap: None,
            faults: None,
        }
    }

    /// The chaos variant of [`ScenarioSpec::adversarial_fleet`]: the same
    /// mixed fleet and adversary load, plus a seed-derived
    /// [`FaultPlan`] (a worker panic scheduled on every shard, periodic
    /// wire corruption, an early commit failure) and enough ticks for every
    /// scheduled fault to fire and every worker to be respawned.  Two runs
    /// with the same seed produce byte-identical reports.
    pub fn chaos_fleet(name: impl Into<String>, devices: u32, seed: u64, shards: usize) -> Self {
        let mut spec = Self::adversarial_fleet(name, devices, seed, shards);
        spec.ticks = 8;
        spec.faults = Some(FaultPlan::seeded(seed, shards.max(1)));
        spec
    }

    /// Race a policy hot swap at the start of `at_tick` (builder style).
    pub fn with_hot_swap(mut self, at_tick: u32, policies: PolicySet) -> Self {
        self.hot_swap = Some(HotSwap { at_tick, policies });
        self
    }

    /// Install a deterministic fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Running per-adversary counters, as exposed to a tick observer and to the
/// facade's `Engine::observe()` — the live (mid-run) form of
/// [`AdversaryOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryCounters {
    /// The adversary model.
    pub model: AdversaryModel,
    /// Adversarial packets injected for this model so far.
    pub emitted: u64,
    /// How many of them the enforcer has dropped so far.
    pub dropped: u64,
}

/// What a tick observer sees after each tick's batch has been inspected and
/// accounted: the position in the run, the live enforcement plane (for
/// telemetry polling) and the engine's ground-truth adversary attribution.
///
/// Passed by [`PreparedScenario::run_observed`] /
/// [`PreparedScenario::replay_observed`]; the `bp_top` dashboard polls
/// [`ShardedEnforcer::telemetry`] through `enforcer` here, tick-aligned with
/// the simulated clock.
pub struct TickTelemetry<'a> {
    /// The tick just completed (0-based).
    pub tick: u32,
    /// Ticks the run will drive in total.
    pub ticks: u32,
    /// Simulated milliseconds per tick.
    pub tick_millis: u64,
    /// The live enforcement plane.
    pub enforcer: &'a Arc<ShardedEnforcer>,
    /// Ground-truth per-adversary counters, in spec profile order.
    pub adversaries: Vec<AdversaryCounters>,
    /// Hot swaps committed so far.
    pub hot_swaps: u32,
}

/// A tick observer: called once per tick, after verdict accounting.
pub type TickObserver<'a> = dyn FnMut(TickTelemetry<'_>) + 'a;

/// Per-adversary accounting in a [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AdversaryOutcome {
    /// The adversary model.
    pub model: AdversaryModel,
    /// Adversarial packets the engine injected for this model.
    pub emitted: u64,
    /// How many of them the enforcer dropped (attributed per packet from the
    /// batch verdicts, not inferred from counters).
    pub dropped: u64,
    /// How many of them the enforcer accepted — any non-zero value here is
    /// an enforcement gap.
    pub accepted: u64,
    /// Name of the [`EnforcerStats`] counter this model's packets must be
    /// charged to.
    pub expected_counter: String,
    /// That counter's final value (shared by models mapping to the same
    /// counter, e.g. spoofing and trailing data both land in
    /// `dropped_malformed`).
    pub counter_value: u64,
}

/// The output half of the engine's contract: everything a scenario run
/// observed, renderable as a stable plain-text artifact.
///
/// Two runs of the same [`ScenarioSpec`] produce equal reports
/// (`PartialEq`) and byte-identical [`ScenarioReport::render`] output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// The seed the run derived from.
    pub seed: u64,
    /// Fleet size in devices.
    pub devices: u32,
    /// Worker shards used.
    pub shards: usize,
    /// Ticks driven.
    pub ticks: u32,
    /// Long-lived flows the fleet kept open.
    pub flows: u64,
    /// Total packets driven through the enforcer.
    pub packets: u64,
    /// Packets emitted by well-behaved devices.
    pub legit_packets: u64,
    /// Legitimate packets accepted.
    pub legit_accepted: u64,
    /// Legitimate packets dropped (policy denials of the fleet's own
    /// denied functionalities).
    pub legit_dropped: u64,
    /// Per-adversary accounting, in [`AdversaryModel::ALL`] order.
    pub adversaries: Vec<AdversaryOutcome>,
    /// Number of policy hot swaps installed mid-run.
    pub hot_swaps: u32,
    /// Final merged enforcer statistics.
    pub stats: EnforcerStats,
}

impl ScenarioReport {
    /// Render the report as stable plain text (two [`crate::report::TextTable`]s).
    pub fn render(&self) -> String {
        let mut summary = crate::report::TextTable::new(
            format!("Scenario '{}' (seed {})", self.name, self.seed),
            &[
                "devices",
                "shards",
                "ticks",
                "flows",
                "packets",
                "legit",
                "accepted",
                "dropped",
                "hot swaps",
            ],
        );
        summary.add_row(vec![
            self.devices.to_string(),
            self.shards.to_string(),
            self.ticks.to_string(),
            self.flows.to_string(),
            self.packets.to_string(),
            self.legit_packets.to_string(),
            self.legit_accepted.to_string(),
            self.legit_dropped.to_string(),
            self.hot_swaps.to_string(),
        ]);

        let mut adversaries = crate::report::TextTable::new(
            "Adversary models",
            &[
                "model",
                "paper",
                "emitted",
                "dropped",
                "accepted",
                "expected counter",
                "value",
            ],
        );
        for outcome in &self.adversaries {
            adversaries.add_row(vec![
                outcome.model.name().to_string(),
                outcome.model.paper_section().to_string(),
                outcome.emitted.to_string(),
                outcome.dropped.to_string(),
                outcome.accepted.to_string(),
                outcome.expected_counter.clone(),
                outcome.counter_value.to_string(),
            ]);
        }

        let s = &self.stats;
        let mut stats = crate::report::TextTable::new("Enforcer statistics", &["counter", "value"]);
        for (name, value) in [
            ("packets_inspected", s.packets_inspected),
            ("packets_accepted", s.packets_accepted),
            ("dropped_by_policy", s.dropped_by_policy),
            ("dropped_untagged", s.dropped_untagged),
            ("dropped_unknown_app", s.dropped_unknown_app),
            ("dropped_malformed", s.dropped_malformed),
            ("dropped_duplicate_context", s.dropped_duplicate_context),
            ("dropped_context_switch", s.dropped_context_switch),
            ("dropped_wire", s.dropped_wire),
            ("dropped_runtime_fault", s.dropped_runtime_fault),
            ("dropped_overload", s.dropped_overload),
            ("flow_hits", s.flow_hits),
            ("flow_misses", s.flow_misses),
            ("flow_evictions", s.flow_evictions),
            ("flow_context_switches", s.flow_context_switches),
        ] {
            stats.add_row(vec![name.to_string(), value.to_string()]);
        }

        format!("{summary}\n{adversaries}\n{stats}")
    }

    /// The accounting row of one adversary model, if it was deployed.
    pub fn adversary(&self, model: AdversaryModel) -> Option<&AdversaryOutcome> {
        self.adversaries.iter().find(|o| o.model == model)
    }

    /// True if every adversarial packet was dropped — the property the
    /// strict configuration must deliver against all models.
    pub fn all_adversarial_traffic_dropped(&self) -> bool {
        self.adversaries.iter().all(|o| o.accepted == 0)
    }
}

/// Pre-compiled traffic state for one app of the mix: legitimate templates
/// per functionality plus one template per **deployed** adversarial packet
/// shape, all built once so per-packet synthesis touches no encoder and no
/// validator.  Models the spec does not deploy get no template — and none
/// of their constraints (a context to replay, budget headroom for a second
/// option) apply to the scenario.
struct AppTraffic {
    funcs: Vec<FuncTraffic>,
    adversarial: BTreeMap<AdversaryModel, PacketTemplate>,
}

struct FuncTraffic {
    template: PacketTemplate,
    weight: u32,
}

const BODY: &[u8] = b"BP/fleet";

/// One app's forged context payloads — spoofed indexes and repackaged tag —
/// each present only when the matching adversary model is deployed.
type ForgedPayloads = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Deterministic host → WAN address assignment (mirrors the testbed's).
fn endpoint_for(hosts: &mut BTreeMap<String, Endpoint>, host: &str) -> Endpoint {
    if let Some(&ep) = hosts.get(host) {
        return ep;
    }
    let octet = hosts.len() as u16 + 1;
    let ep = Endpoint::new([198, 51, (octet >> 8) as u8, (octet & 0xff) as u8], 443);
    hosts.insert(host.to_string(), ep);
    ep
}

fn analyze_mix(
    spec: &ScenarioSpec,
    db: &mut SignatureDatabase,
    deployed: &BTreeSet<AdversaryModel>,
) -> Result<Vec<AppTraffic>, Error> {
    let mix = &spec.fleet.app_mix;
    if mix.is_empty() {
        return Err(Error::malformed("scenario spec", "empty app mix"));
    }

    let mut hosts = BTreeMap::new();
    // First pass: per-app context payloads for every functionality, plus the
    // forged payloads of the deployed payload-level adversaries.
    let mut payloads: Vec<Vec<(Vec<u8>, Endpoint, u32)>> = Vec::with_capacity(mix.len());
    let mut forged_payloads: Vec<ForgedPayloads> = Vec::with_capacity(mix.len());
    for app in mix {
        let apk = app.build_apk();
        OfflineAnalyzer::new().analyze_into(&apk, db)?;
        let table = MethodTable::from_apk(&apk)?;
        let tag = apk.hash().tag();
        let wide = apk.is_multidex();

        let mut app_payloads = Vec::with_capacity(app.functionalities.len());
        for func in &app.functionalities {
            let indexes: Vec<u32> = func
                .call_chain
                .iter()
                .rev()
                .filter_map(|sig| table.index_of(sig))
                .collect();
            let payload = ContextEncoding::encode(tag, &indexes, wide)?;
            let endpoint = endpoint_for(&mut hosts, &func.endpoint_host);
            app_payloads.push((payload, endpoint, func.trigger_weight.max(1)));
        }
        if app_payloads.is_empty() {
            return Err(Error::malformed(
                "scenario spec",
                format!("app {} has no functionalities", app.package_name),
            ));
        }
        // The flow→functionality binding is stored as one byte per flow;
        // wider apps would silently wrap the index.
        if app_payloads.len() > 256 {
            return Err(Error::capacity(
                "functionalities per app",
                app_payloads.len(),
                256,
            ));
        }

        // Forged indexes near the top of the encoding's index space: far
        // beyond any synthetic app's method table, so decoding flags them as
        // undecodable for this (known) tag.
        let spoof = deployed
            .contains(&AdversaryModel::ContextSpoofing)
            .then(|| {
                let forged = ContextEncoding::max_index(wide) - 7;
                ContextEncoding::encode(tag, &[forged, forged - 1], wide)
            })
            .transpose()?;
        // The repackaged build has identical code (same indexes) under a
        // different MD5: its tag resolves nowhere.
        let repack = deployed
            .contains(&AdversaryModel::RepackagedApp)
            .then(|| {
                let repack_tag = app.build_repackaged_apk("scenario-repack").hash().tag();
                let first_indexes: Vec<u32> = app.functionalities[0]
                    .call_chain
                    .iter()
                    .rev()
                    .filter_map(|sig| table.index_of(sig))
                    .collect();
                ContextEncoding::encode(repack_tag, &first_indexes, wide)
            })
            .transpose()?;
        forged_payloads.push((spoof, repack));
        payloads.push(app_payloads);
    }

    // Second pass: build templates (the replay model needs the payloads of
    // *other* apps), one per deployed adversarial shape.
    let mut apps = Vec::with_capacity(mix.len());
    for (index, app_payloads) in payloads.iter().enumerate() {
        let (primary_payload, primary_endpoint, _) = &app_payloads[0];
        let (spoof_payload, repack_payload) = &forged_payloads[index];
        let blank = || PacketTemplate::new(*primary_endpoint, BODY.to_vec());

        let mut adversarial = BTreeMap::new();
        for &model in deployed {
            let template =
                match model {
                    AdversaryModel::ContextSpoofing => blank()
                        .with_context(spoof_payload.as_ref().expect("built when deployed"))?,
                    AdversaryModel::RepackagedApp => blank()
                        .with_context(repack_payload.as_ref().expect("built when deployed"))?,
                    AdversaryModel::DuplicateOption => {
                        // A second, minimal context option rides behind the
                        // legitimate one: the 9-byte payload header (flags +
                        // app tag) alone decodes as an empty stack under the
                        // app's own tag.
                        blank()
                            .with_context(primary_payload)?
                            .with_context(&primary_payload[..9])?
                    }
                    AdversaryModel::TrailingData => {
                        blank().with_raw_options(&trailing_data_options(primary_payload)?)?
                    }
                    AdversaryModel::UntaggedEgress => blank(),
                    AdversaryModel::ContextReplay => {
                        // The replayed context: another app's (first) context,
                        // verbatim.  With a single-app mix fall back to another
                        // functionality of the same app; either way the bytes
                        // must differ from the flow's own.
                        let replayed = if payloads.len() > 1 {
                            &payloads[(index + 1) % payloads.len()][0].0
                        } else if app_payloads.len() > 1 {
                            &app_payloads[1].0
                        } else {
                            return Err(Error::malformed(
                                "scenario spec",
                                "context replay needs a second app or functionality \
                             to steal context from",
                            ));
                        };
                        blank().with_context(replayed)?
                    }
                };
            adversarial.insert(model, template);
        }

        apps.push(AppTraffic {
            funcs: app_payloads
                .iter()
                .map(|(payload, endpoint, weight)| {
                    Ok(FuncTraffic {
                        template: PacketTemplate::new(*endpoint, BODY.to_vec())
                            .with_context(payload)?,
                        weight: *weight,
                    })
                })
                .collect::<Result<Vec<_>, Error>>()?,
            adversarial,
        });
    }
    Ok(apps)
}

/// A scenario with its expensive, enforcement-independent state built once:
/// the analyzed app mix (apk builds + offline analysis), the packet
/// templates and the fleet assembly.
///
/// [`PreparedScenario::run`] then drives the tick loop against a **fresh**
/// control plane + sharded enforcer, so callers measuring the enforcement
/// plane (the `fleet_scale` bench, repeated-run experiments) amortize the
/// preparation instead of re-analyzing the mix on every run.  Repeated runs
/// of one prepared scenario are byte-identical to each other and to
/// [`run`] on the same spec: the post-assembly RNG state is snapshotted at
/// preparation time and every run resumes from a copy of it.
pub struct PreparedScenario {
    spec: ScenarioSpec,
    db: SignatureDatabase,
    apps: Vec<AppTraffic>,
    device_apps: Vec<u16>,
    flow_funcs: Vec<u8>,
    total_flows: u64,
    /// RNG state after fleet assembly; the per-tick connect-rate draws of
    /// every run resume from a clone of this.
    traffic_rng: StdRng,
}

impl PreparedScenario {
    /// Validate `spec`, analyze its app mix and assemble the fleet.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid specs (empty mix, app without
    /// functionalities, replay with nothing to replay) and propagates apk
    /// analysis or encoding failures.
    pub fn prepare(spec: &ScenarioSpec) -> Result<Self, Error> {
        if spec.fleet.devices == 0 {
            return Err(Error::malformed("scenario spec", "fleet has no devices"));
        }
        if spec.fleet.sockets_per_device == 0 {
            return Err(Error::malformed(
                "scenario spec",
                "fleet devices need at least one socket",
            ));
        }

        // The model is an adversary's identity throughout the engine
        // (templates, attack sockets, compromise membership, report rows),
        // so duplicate models would double-count every tally: reject them up
        // front.
        let mut models = BTreeSet::new();
        for profile in &spec.adversaries {
            if !models.insert(profile.model) {
                return Err(Error::malformed(
                    "scenario spec",
                    format!("duplicate adversary model {}", profile.model),
                ));
            }
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut db = SignatureDatabase::new();
        // Only adversaries that can actually emit packets constrain the mix
        // (templates are built per deployed model).
        let deployed: BTreeSet<AdversaryModel> = spec
            .adversaries
            .iter()
            .filter(|p| p.packets_per_tick > 0 && p.device_ratio > 0.0)
            .map(|p| p.model)
            .collect();
        let apps = analyze_mix(spec, &mut db, &deployed)?;

        // Fleet assembly: device → app, flow → functionality.  Draw order is
        // fixed (devices, then flows, then per-tick rates), so every run of
        // the same seed sees identical traffic.
        let device_apps = spec.fleet.assign_apps(&mut rng);
        let sockets = spec.fleet.sockets_per_device;
        // Socket 0 always carries the app's primary functionality (the main
        // connection the replay adversary rides); further sockets draw from
        // the app's functionalities weighted by trigger weight.
        let flow_funcs: Vec<u8> = (0..spec.fleet.devices)
            .flat_map(|device| {
                let app = &apps[device_apps[device as usize] as usize];
                let weights: Vec<u64> = app.funcs.iter().map(|f| u64::from(f.weight)).collect();
                (0..sockets)
                    .map(|socket| {
                        if socket == 0 {
                            0
                        } else {
                            weighted_index(&mut rng, &weights).unwrap_or(0) as u8
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        Ok(PreparedScenario {
            spec: spec.clone(),
            db,
            apps,
            device_apps,
            flow_funcs,
            total_flows: spec.fleet.total_flows(),
            traffic_rng: rng,
        })
    }

    /// The spec this scenario was prepared from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Drive the tick loop against a fresh control plane + sharded enforcer
    /// and account the verdicts.
    ///
    /// # Errors
    ///
    /// Propagates hot-swap commit failures.  Enforcement drops are
    /// *results*, never errors.
    pub fn run(&self) -> Result<ScenarioReport, Error> {
        self.run_with_runtime(self.spec.runtime)
    }

    /// Like [`PreparedScenario::run`] with the batch runtime overridden for
    /// this run only — the spawn-vs-pool comparison of the `fleet_scale`
    /// bench drives one prepared scenario under both runtimes.  The report
    /// does not depend on the runtime (both produce identical verdicts).
    pub fn run_with_runtime(&self, runtime: BatchRuntime) -> Result<ScenarioReport, Error> {
        self.run_impl(runtime, None, None)
    }

    /// Like [`PreparedScenario::run`], invoking `observer` after every
    /// tick's batch has been inspected and accounted.  The observer sees the
    /// live enforcement plane plus the engine's ground-truth adversary
    /// counters ([`TickTelemetry`]) — this is the hook the observability
    /// plane's dashboard rides, tick-aligned with the simulated clock.
    ///
    /// # Errors
    ///
    /// Propagates hot-swap commit failures, exactly as
    /// [`PreparedScenario::run`].
    pub fn run_observed(&self, observer: &mut TickObserver<'_>) -> Result<ScenarioReport, Error> {
        self.run_impl(self.spec.runtime, None, Some(observer))
    }

    /// Run the scenario while recording every synthesized packet — wire
    /// bytes, in exact batch order — into a capture stream on `sink`
    /// ([`bp_core::wire::CaptureWriter`]).  The capture's header pins the
    /// spec's seed, tick length and tick count; each frame carries the tag
    /// [`PreparedScenario::replay`] uses to re-attribute it (0 = legitimate,
    /// `k` = the spec's `k-1`-th adversary profile).
    ///
    /// Returns the report of the recorded run together with the sink.
    ///
    /// # Errors
    ///
    /// Propagates hot-swap commit failures and sink I/O errors (as
    /// [`Error::InvalidState`]).
    pub fn run_recorded<W: std::io::Write>(&self, sink: W) -> Result<(ScenarioReport, W), Error> {
        let spec = &self.spec;
        let header = CaptureHeader {
            seed: spec.seed,
            tick_millis: spec.tick_millis,
            ticks: spec.ticks,
        };
        let mut writer = CaptureWriter::new(sink, header).map_err(capture_io)?;
        let mut frame_buf = Vec::new();
        let report = self.run_impl(
            spec.runtime,
            Some(&mut |tick, tag, packet: &Ipv4Packet| {
                packet.write_wire_bytes(&mut frame_buf);
                writer.record(tick, tag, &frame_buf).map_err(capture_io)
            }),
            None,
        )?;
        let sink = writer.finish().map_err(capture_io)?;
        Ok((report, sink))
    }

    /// Replay a recorded capture through the **byte ingress path**
    /// ([`ShardedEnforcer::inspect_wire_batch_into`]): the same control
    /// plane, hot-swap schedule and virtual clock as a live run, but every
    /// packet arrives as raw wire bytes instead of a synthesized struct.
    ///
    /// Because the wire codec round-trips exactly, a replayed capture
    /// produces a report whose [`ScenarioReport::render`] is byte-identical
    /// to the recorded run's, on any shard count the spec asks for.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] if the capture's header does not match
    /// this scenario's seed/clock/ticks or a frame tag names no adversary
    /// profile; propagates hot-swap commit failures.
    pub fn replay(&self, capture: &CaptureReader) -> Result<ScenarioReport, Error> {
        self.replay_with_runtime(capture, self.spec.runtime)
    }

    /// Like [`PreparedScenario::replay`] with the batch runtime overridden.
    pub fn replay_with_runtime(
        &self,
        capture: &CaptureReader,
        runtime: BatchRuntime,
    ) -> Result<ScenarioReport, Error> {
        self.replay_impl(capture, runtime, None)
    }

    /// Like [`PreparedScenario::replay`], invoking `observer` after every
    /// tick — the capture-replay twin of
    /// [`PreparedScenario::run_observed`], so the dashboard can be driven
    /// from a recorded capture as well as a live run.
    ///
    /// # Errors
    ///
    /// As [`PreparedScenario::replay`].
    pub fn replay_observed(
        &self,
        capture: &CaptureReader,
        observer: &mut TickObserver<'_>,
    ) -> Result<ScenarioReport, Error> {
        self.replay_impl(capture, self.spec.runtime, Some(observer))
    }

    /// Shared body of [`PreparedScenario::replay_with_runtime`] and
    /// [`PreparedScenario::replay_observed`].
    fn replay_impl(
        &self,
        capture: &CaptureReader,
        runtime: BatchRuntime,
        mut observer: Option<&mut TickObserver<'_>>,
    ) -> Result<ScenarioReport, Error> {
        let spec = &self.spec;
        let header = capture.header();
        if header.seed != spec.seed
            || header.tick_millis != spec.tick_millis
            || header.ticks != spec.ticks
        {
            return Err(Error::malformed(
                "capture",
                format!(
                    "capture header (seed {}, {} ms/tick, {} ticks) does not match \
                     spec '{}' (seed {}, {} ms/tick, {} ticks)",
                    header.seed,
                    header.tick_millis,
                    header.ticks,
                    spec.name,
                    spec.seed,
                    spec.tick_millis,
                    spec.ticks
                ),
            ));
        }

        let (mut control, enforcer) = self.build_plane(runtime);
        let mut tally = Tally::default();
        let mut frames: Vec<&[u8]> = Vec::new();
        let mut origins: Vec<Option<AdversaryModel>> = Vec::new();
        let mut verdicts: Vec<bp_netsim::netfilter::Verdict> = Vec::new();
        let mut frame_iter = capture.frames().peekable();

        for tick in 0..spec.ticks {
            enforcer.set_now(SimDuration::from_millis(u64::from(tick) * spec.tick_millis));
            if let Some(swap) = &spec.hot_swap {
                if swap.at_tick == tick {
                    match control
                        .begin()
                        .replace_policies(swap.policies.clone())
                        .commit()
                    {
                        Ok(_) => tally.hot_swaps += 1,
                        // A chaos plan failing the commit is part of the
                        // run, not an error: the old generation stays
                        // installed and the scenario keeps serving.
                        Err(RolloutError::FaultInjected { .. }) => {}
                        Err(error) => return Err(error.into()),
                    }
                }
            }

            frames.clear();
            origins.clear();
            while frame_iter.peek().map(|f| f.tick) == Some(tick) {
                let frame = frame_iter.next().expect("peeked frame exists");
                origins.push(match frame.tag {
                    0 => None,
                    k => Some(
                        spec.adversaries
                            .get(k as usize - 1)
                            .ok_or_else(|| {
                                Error::malformed(
                                    "capture",
                                    format!("frame tag {k} names no adversary profile"),
                                )
                            })?
                            .model,
                    ),
                });
                frames.push(frame.bytes);
            }

            enforcer.inspect_wire_batch_into(&frames, &mut verdicts);
            tally.account(&origins, &verdicts);
            if let Some(observer) = observer.as_deref_mut() {
                observer(TickTelemetry {
                    tick,
                    ticks: spec.ticks,
                    tick_millis: spec.tick_millis,
                    enforcer: &enforcer,
                    adversaries: tally.adversary_counters(spec),
                    hot_swaps: tally.hot_swaps,
                });
            }
        }

        Ok(self.assemble_report(tally, enforcer.stats()))
    }

    /// The enforcement plane under test: a sharded enforcer registered as
    /// the endpoint of a control plane, which owns the authoritative state
    /// and drives the hot swap.  Flow capacity covers every long-lived flow
    /// plus the adversaries' injection flows so eviction noise never
    /// perturbs attribution.
    fn build_plane(&self, runtime: BatchRuntime) -> (ControlPlane, Arc<ShardedEnforcer>) {
        let spec = &self.spec;
        let mut control = ControlPlane::new(self.db.clone(), spec.policies.clone(), spec.config);
        let flow_config = FlowTableConfig {
            capacity: (self.total_flows as usize * 2).max(4_096),
            ..FlowTableConfig::default()
        };
        let enforcer = Arc::new(ShardedEnforcer::with_runtime(
            control.tables(),
            spec.shards,
            flow_config,
            runtime,
        ));
        control.register(Arc::clone(&enforcer) as Arc<dyn EnforcementEndpoint>);
        if let Some(plan) = &spec.faults {
            // One injector drives both planes so a single seed schedules
            // every fault of the run.
            let injector = Arc::new(FaultInjector::new(plan.clone(), spec.shards.max(1)));
            enforcer.install_faults(Arc::clone(&injector));
            control.install_faults(injector);
        }
        (control, enforcer)
    }

    /// Shared tick loop of [`PreparedScenario::run_with_runtime`] and
    /// [`PreparedScenario::run_recorded`]: synthesize, optionally record,
    /// inspect, account.
    fn run_impl(
        &self,
        runtime: BatchRuntime,
        mut recorder: Option<&mut FrameRecorder<'_>>,
        mut observer: Option<&mut TickObserver<'_>>,
    ) -> Result<ScenarioReport, Error> {
        let spec = &self.spec;
        let apps = &self.apps;
        let device_apps = &self.device_apps;
        let sockets = spec.fleet.sockets_per_device;
        let mut rng = self.traffic_rng.clone();

        let (mut control, enforcer) = self.build_plane(runtime);
        let mut tally = Tally::default();

        let mut packets: Vec<Ipv4Packet> = Vec::new();
        let mut origins: Vec<Option<AdversaryModel>> = Vec::new();
        let mut verdicts: Vec<bp_netsim::netfilter::Verdict> = Vec::new();

        for tick in 0..spec.ticks {
            enforcer.set_now(SimDuration::from_millis(u64::from(tick) * spec.tick_millis));
            if let Some(swap) = &spec.hot_swap {
                if swap.at_tick == tick {
                    match control
                        .begin()
                        .replace_policies(swap.policies.clone())
                        .commit()
                    {
                        Ok(_) => tally.hot_swaps += 1,
                        // A chaos plan failing the commit is part of the
                        // run, not an error: the old generation stays
                        // installed and the scenario keeps serving.
                        Err(RolloutError::FaultInjected { .. }) => {}
                        Err(error) => return Err(error.into()),
                    }
                }
            }

            packets.clear();
            origins.clear();

            // Legitimate fleet traffic: every long-lived flow re-sends its
            // connect-time context.  Tick 0 is the connect wave — at least one
            // packet per flow — so adversaries inject against live flows.
            for device in 0..spec.fleet.devices {
                let app = &apps[device_apps[device as usize] as usize];
                for socket in 0..sockets {
                    let flow = device as usize * sockets as usize + socket as usize;
                    let mut count = spec.fleet.connect_rate.sample(&mut rng);
                    if tick == 0 {
                        count = count.max(1);
                    }
                    let func = &app.funcs[self.flow_funcs[flow] as usize];
                    for _ in 0..count {
                        packets.push(func.template.instantiate_from(device, socket));
                        origins.push(None);
                    }
                }
            }

            // Adversarial injections.  Every model gets its own attack socket
            // (ports beyond the legitimate range) except replay, which by
            // definition rides an established flow (socket 0).
            for (ordinal, profile) in spec.adversaries.iter().enumerate() {
                if profile.packets_per_tick == 0 {
                    continue;
                }
                // Replay targets the entry cached at tick 0.
                if profile.model == AdversaryModel::ContextReplay && tick == 0 {
                    continue;
                }
                for device in 0..spec.fleet.devices {
                    if !profile.compromises(spec.seed, device) {
                        continue;
                    }
                    let app = &apps[device_apps[device as usize] as usize];
                    let template = app
                        .adversarial
                        .get(&profile.model)
                        .expect("template built for every deployed model");
                    let socket = if profile.model == AdversaryModel::ContextReplay {
                        0
                    } else {
                        sockets + ordinal as u16
                    };
                    for _ in 0..profile.packets_per_tick {
                        packets.push(template.instantiate_from(device, socket));
                        origins.push(Some(profile.model));
                    }
                }
            }

            // Record before inspecting: the capture sees the exact frames,
            // in the exact batch order, the enforcer does.
            if let Some(recorder) = recorder.as_deref_mut() {
                for (packet, origin) in packets.iter().zip(&origins) {
                    let tag = origin.map_or(0, |model| {
                        spec.adversaries
                            .iter()
                            .position(|p| p.model == model)
                            .map_or(0, |ordinal| ordinal as u8 + 1)
                    });
                    recorder(tick, tag, packet)?;
                }
            }

            // Reuse the verdict buffer: the all-accept path of a tick is then
            // allocation-free on the enforcement side.
            enforcer.inspect_batch_into(&packets, &mut verdicts);
            tally.account(&origins, &verdicts);
            if let Some(observer) = observer.as_deref_mut() {
                observer(TickTelemetry {
                    tick,
                    ticks: spec.ticks,
                    tick_millis: spec.tick_millis,
                    enforcer: &enforcer,
                    adversaries: tally.adversary_counters(spec),
                    hot_swaps: tally.hot_swaps,
                });
            }
        }

        Ok(self.assemble_report(tally, enforcer.stats()))
    }

    /// Turn one run's tallies and final enforcer statistics into a report.
    fn assemble_report(&self, tally: Tally, stats: EnforcerStats) -> ScenarioReport {
        let spec = &self.spec;
        let adversaries = spec
            .adversaries
            .iter()
            .map(|profile| {
                let emitted = tally.emitted.get(&profile.model).copied().unwrap_or(0);
                let dropped = tally.dropped.get(&profile.model).copied().unwrap_or(0);
                AdversaryOutcome {
                    model: profile.model,
                    emitted,
                    dropped,
                    accepted: emitted - dropped,
                    expected_counter: profile.model.expected_counter().to_string(),
                    counter_value: profile.model.counter_value(&stats),
                }
            })
            .collect();

        ScenarioReport {
            name: spec.name.clone(),
            seed: spec.seed,
            devices: spec.fleet.devices,
            shards: spec.shards.max(1),
            ticks: spec.ticks,
            flows: self.total_flows,
            packets: stats.packets_inspected,
            legit_packets: tally.legit_packets,
            legit_accepted: tally.legit_accepted,
            legit_dropped: tally.legit_dropped,
            adversaries,
            hot_swaps: tally.hot_swaps,
            stats,
        }
    }
}

/// Per-run verdict accounting shared by the live and replay tick loops.
#[derive(Default)]
struct Tally {
    legit_packets: u64,
    legit_accepted: u64,
    legit_dropped: u64,
    emitted: BTreeMap<AdversaryModel, u64>,
    dropped: BTreeMap<AdversaryModel, u64>,
    hot_swaps: u32,
}

impl Tally {
    /// Snapshot the running per-adversary counters in spec profile order.
    fn adversary_counters(&self, spec: &ScenarioSpec) -> Vec<AdversaryCounters> {
        spec.adversaries
            .iter()
            .map(|profile| AdversaryCounters {
                model: profile.model,
                emitted: self.emitted.get(&profile.model).copied().unwrap_or(0),
                dropped: self.dropped.get(&profile.model).copied().unwrap_or(0),
            })
            .collect()
    }

    /// Attribute one batch's verdicts (input order) to their traffic
    /// sources.
    fn account(
        &mut self,
        origins: &[Option<AdversaryModel>],
        verdicts: &[bp_netsim::netfilter::Verdict],
    ) {
        for (origin, verdict) in origins.iter().zip(verdicts) {
            match origin {
                None => {
                    self.legit_packets += 1;
                    if verdict.is_accept() {
                        self.legit_accepted += 1;
                    } else {
                        self.legit_dropped += 1;
                    }
                }
                Some(model) => {
                    *self.emitted.entry(*model).or_default() += 1;
                    if !verdict.is_accept() {
                        *self.dropped.entry(*model).or_default() += 1;
                    }
                }
            }
        }
    }
}

/// Map a capture sink I/O failure into the workspace error type.
fn capture_io(e: std::io::Error) -> Error {
    Error::invalid_state("capture recording", e.to_string())
}

/// Run a scenario: compile the mix, assemble the fleet, drive every tick's
/// batch through [`ShardedEnforcer::inspect_batch`] and account the
/// verdicts.  One-shot form of [`PreparedScenario::prepare`] +
/// [`PreparedScenario::run`]; repeated runs should prepare once.
///
/// # Errors
///
/// Returns an error for invalid specs (empty mix, app without
/// functionalities, replay with nothing to replay) and propagates apk
/// analysis or encoding failures.  Enforcement drops are *results*, never
/// errors.
pub fn run(spec: &ScenarioSpec) -> Result<ScenarioReport, Error> {
    PreparedScenario::prepare(spec)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(shards: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec::adversarial_fleet("unit", 64, 11, shards);
        // Compromise aggressively so every model fires even on a tiny fleet.
        spec.adversaries = AdversaryProfile::all_models(0.5);
        spec
    }

    #[test]
    fn reports_are_byte_identical_per_seed() {
        let spec = small_spec(2);
        let a = run(&spec).unwrap();
        let b = run(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());

        let mut reseeded = spec;
        reseeded.seed = 12;
        assert_ne!(run(&reseeded).unwrap(), a);
    }

    #[test]
    fn every_adversary_model_fires_and_is_fully_dropped() {
        let report = run(&small_spec(2)).unwrap();
        assert_eq!(report.adversaries.len(), AdversaryModel::ALL.len());
        for outcome in &report.adversaries {
            assert!(outcome.emitted > 0, "{} never fired", outcome.model);
            assert_eq!(
                outcome.dropped, outcome.emitted,
                "{} packets leaked past the enforcer",
                outcome.model
            );
            assert!(outcome.counter_value >= outcome.emitted);
        }
        assert!(report.all_adversarial_traffic_dropped());
        // Legitimate traffic flows (minus the fleet's own policy denials).
        assert!(report.legit_accepted > 0);
    }

    #[test]
    fn counters_reconcile_exactly_with_injected_packets() {
        let report = run(&small_spec(1)).unwrap();
        let by_model = |m: AdversaryModel| report.adversary(m).unwrap().emitted;
        let s = &report.stats;
        assert_eq!(
            s.dropped_malformed,
            by_model(AdversaryModel::ContextSpoofing) + by_model(AdversaryModel::TrailingData)
        );
        assert_eq!(
            s.dropped_unknown_app,
            by_model(AdversaryModel::RepackagedApp)
        );
        assert_eq!(
            s.dropped_context_switch,
            by_model(AdversaryModel::ContextReplay)
        );
        assert_eq!(
            s.dropped_duplicate_context,
            by_model(AdversaryModel::DuplicateOption)
        );
        assert_eq!(s.dropped_untagged, by_model(AdversaryModel::UntaggedEgress));
        // Full conservation: every packet is accounted exactly once.
        assert_eq!(s.packets_inspected, s.packets_accepted + s.total_dropped());
        assert_eq!(
            s.packets_inspected,
            report.legit_packets + report.adversaries.iter().map(|o| o.emitted).sum::<u64>()
        );
    }

    #[test]
    fn outcome_counters_are_shard_invariant() {
        let one = run(&small_spec(1)).unwrap();
        let four = run(&small_spec(4)).unwrap();
        assert_eq!(one.stats, four.stats);
        assert_eq!(one.adversaries, four.adversaries);
        assert_eq!(one.legit_accepted, four.legit_accepted);
    }

    #[test]
    fn hot_swap_invalidates_every_cached_flow_without_stale_verdicts() {
        let deny_everything =
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Library, "com")]);
        let spec = small_spec(2).with_hot_swap(2, deny_everything);
        let baseline = run(&small_spec(2)).unwrap();
        let swapped = run(&spec).unwrap();
        assert_eq!(swapped.hot_swaps, 1);
        // The swap denies all fleet traffic from tick 2 on: strictly more
        // policy drops than the baseline, and a flow-miss wave as every
        // cached verdict re-evaluates under the new epoch.
        assert!(swapped.stats.dropped_by_policy > baseline.stats.dropped_by_policy);
        assert!(swapped.stats.flow_misses > baseline.stats.flow_misses);
        assert_eq!(
            swapped.stats.packets_inspected,
            swapped.stats.packets_accepted + swapped.stats.total_dropped()
        );
    }

    #[test]
    fn clean_fleet_baseline_has_no_adversarial_counters() {
        let mut spec = ScenarioSpec::adversarial_fleet("clean", 32, 3, 2);
        spec.adversaries.clear();
        let report = run(&spec).unwrap();
        assert!(report.adversaries.is_empty());
        let s = &report.stats;
        assert_eq!(s.dropped_untagged, 0);
        assert_eq!(s.dropped_unknown_app, 0);
        assert_eq!(s.dropped_malformed, 0);
        assert_eq!(s.dropped_duplicate_context, 0);
        assert_eq!(s.dropped_context_switch, 0);
        assert_eq!(s.flow_context_switches, 0);
        // Long-lived flows hit the cache from tick 1 on.
        assert!(s.flow_hits > 0);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut no_devices = small_spec(1);
        no_devices.fleet.devices = 0;
        assert!(run(&no_devices).is_err());

        let mut no_sockets = small_spec(1);
        no_sockets.fleet.sockets_per_device = 0;
        assert!(run(&no_sockets).is_err());

        let mut no_apps = small_spec(1);
        no_apps.fleet.app_mix.clear();
        assert!(run(&no_apps).is_err());

        // A model is an adversary's identity: two profiles of one model
        // would double-count every tally, so the spec is rejected.
        let mut duplicated = small_spec(1);
        duplicated.adversaries = vec![
            AdversaryProfile::new(AdversaryModel::ContextReplay, 0.1),
            AdversaryProfile::new(AdversaryModel::ContextReplay, 0.5),
        ];
        assert!(run(&duplicated).is_err());
    }

    #[test]
    fn undeployed_models_impose_no_constraints_on_the_mix() {
        // A single app with a single functionality: nothing to replay and
        // no guarantee of options-budget headroom — but a clean baseline
        // (no adversaries) must still run.
        let mut spec = ScenarioSpec::adversarial_fleet("minimal", 16, 9, 1);
        spec.fleet.app_mix = vec![bp_appsim::generator::CorpusGenerator::stress_test_app()];
        spec.adversaries.clear();
        let report = run(&spec).unwrap();
        assert!(report.adversaries.is_empty());
        assert!(report.legit_accepted > 0);

        // Deploying replay against that mix is what errors — and only that.
        let mut with_replay = ScenarioSpec::adversarial_fleet("minimal-replay", 16, 9, 1);
        with_replay.fleet.app_mix = vec![bp_appsim::generator::CorpusGenerator::stress_test_app()];
        with_replay.adversaries = vec![AdversaryProfile::new(AdversaryModel::ContextReplay, 1.0)];
        assert!(run(&with_replay).is_err());
    }
}
