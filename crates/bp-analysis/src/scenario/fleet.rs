//! Fleet composition: how many devices, which apps, how often they connect.
//!
//! A [`FleetSpec`] describes the *shape* of a device fleet without storing
//! any per-device state: devices are named by index (addressed through
//! `bp-netsim`'s [`bp_netsim::fleet::FleetAddressing`]), the app mix is a
//! weighted list each device draws from deterministically, and per-tick
//! connect counts come from a [`ConnectRate`] distribution sampled on the
//! scenario's seeded RNG.

use rand::rngs::StdRng;
use rand::Rng;

use bp_appsim::app::AppSpec;
use bp_appsim::generator::CorpusGenerator;
use bp_appsim::monkey::weighted_index;

/// How many packets one flow emits per scenario tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConnectRate {
    /// Exactly `n` packets per flow per tick.
    Constant(u32),
    /// Uniformly distributed in `[min, max]` packets per flow per tick.
    Uniform {
        /// Minimum packets per tick.
        min: u32,
        /// Maximum packets per tick (inclusive).
        max: u32,
    },
    /// Mostly idle with occasional bursts: with probability
    /// `burst_probability` the flow emits `burst` packets, otherwise none —
    /// the heavy-tailed pattern background-sync traffic produces.
    Bursty {
        /// Probability of a burst in any given tick.
        burst_probability: f64,
        /// Packets emitted when a burst fires.
        burst: u32,
    },
}

impl ConnectRate {
    /// Sample one tick's packet count for one flow.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            ConnectRate::Constant(n) => n,
            ConnectRate::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
            ConnectRate::Bursty {
                burst_probability,
                burst,
            } => {
                if rng.gen_bool(burst_probability.clamp(0.0, 1.0)) {
                    burst
                } else {
                    0
                }
            }
        }
    }
}

/// The shape of a simulated device fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Number of devices in the fleet.
    pub devices: u32,
    /// Long-lived sockets (flows) each device keeps open; each is bound to
    /// one of its app's functionalities for the scenario's duration, so
    /// repeated ticks exercise the enforcer's flow cache the way real
    /// keep-alive connections do.
    pub sockets_per_device: u16,
    /// The apps devices run.  Each device is deterministically assigned one
    /// app from this mix, weighted by the app's download count (the
    /// popularity proxy the corpus generator already models).
    pub app_mix: Vec<AppSpec>,
    /// Packets each flow emits per tick.  Tick 0 is the connect wave: every
    /// flow emits at least one packet regardless of the distribution, so
    /// every flow's context is established before adversaries inject.
    pub connect_rate: ConnectRate,
}

impl FleetSpec {
    /// A mixed fleet of `devices` devices over the standard scenario app mix
    /// (the three case-study apps plus a small seeded corpus), two sockets
    /// per device, uniform 1–2 packets per flow per tick.
    pub fn mixed(devices: u32, seed: u64) -> Self {
        FleetSpec {
            devices,
            sockets_per_device: 2,
            app_mix: CorpusGenerator::fleet_mix(seed, 2),
            connect_rate: ConnectRate::Uniform { min: 1, max: 2 },
        }
    }

    /// Total number of long-lived flows the fleet keeps open.
    pub fn total_flows(&self) -> u64 {
        u64::from(self.devices) * u64::from(self.sockets_per_device)
    }

    /// Assign every device an app index from the mix, weighted by download
    /// count, drawing from `rng` in device order (deterministic per seed).
    pub(crate) fn assign_apps(&self, rng: &mut StdRng) -> Vec<u16> {
        let weights: Vec<u64> = self.app_mix.iter().map(|a| a.downloads.max(1)).collect();
        (0..self.devices)
            .map(|_| weighted_index(rng, &weights).unwrap_or(0) as u16)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn connect_rates_sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert_eq!(ConnectRate::Constant(3).sample(&mut rng), 3);
            let u = ConnectRate::Uniform { min: 1, max: 4 }.sample(&mut rng);
            assert!((1..=4).contains(&u));
            let b = ConnectRate::Bursty {
                burst_probability: 0.3,
                burst: 7,
            }
            .sample(&mut rng);
            assert!(b == 0 || b == 7);
        }
        // Degenerate uniform collapses to the minimum.
        assert_eq!(ConnectRate::Uniform { min: 2, max: 2 }.sample(&mut rng), 2);
    }

    #[test]
    fn app_assignment_is_deterministic_and_popularity_weighted() {
        let fleet = FleetSpec::mixed(2_000, 7);
        let a = fleet.assign_apps(&mut StdRng::seed_from_u64(7));
        let b = fleet.assign_apps(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 2_000);
        assert!(a.iter().all(|&i| (i as usize) < fleet.app_mix.len()));

        // Dropbox (500M downloads, index 0) dominates the mix.
        let dropbox = a.iter().filter(|&&i| i == 0).count();
        assert!(dropbox > 1_000, "only {dropbox} of 2000 devices on dropbox");
    }

    #[test]
    fn mixed_fleet_counts_flows() {
        let fleet = FleetSpec::mixed(100, 3);
        assert_eq!(fleet.total_flows(), 200);
        assert_eq!(fleet.app_mix.len(), 7);
    }
}
