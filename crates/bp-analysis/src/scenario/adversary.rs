//! Adversary models: hostile context a compromised BYOD device can emit.
//!
//! Each model forges one class of non-conforming or deceptive traffic drawn
//! from the paper's security discussion (§VI validation, §VII limitations)
//! and must land in a **named** [`EnforcerStats`] counter — adversarial
//! packets that the enforcer silently accepts are enforcement gaps, and the
//! scenario tests treat them as such.
//!
//! | Model | Forgery | Paper | Expected counter |
//! |---|---|---|---|
//! | [`AdversaryModel::ContextSpoofing`] | known tag, fabricated stack indexes | §VI-B / §V-C | `dropped_malformed` |
//! | [`AdversaryModel::RepackagedApp`] | tag of a repackaged (re-signed) apk | §VII | `dropped_unknown_app` |
//! | [`AdversaryModel::ContextReplay`] | verbatim allowed context replayed onto a live flow | §VII (set-once kernel) | `dropped_context_switch` |
//! | [`AdversaryModel::DuplicateOption`] | second BorderPatrol option ahead of the kernel's | §IV-A4 | `dropped_duplicate_context` |
//! | [`AdversaryModel::TrailingData`] | covert bytes after End-of-List | §IV-A4 | `dropped_malformed` |
//! | [`AdversaryModel::UntaggedEgress`] | traffic with no context at all | §VII (strict deployments) | `dropped_untagged` |

use serde::Serialize;

use bp_core::enforcer::EnforcerStats;

/// One class of adversarial traffic a compromised device emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum AdversaryModel {
    /// Forged context under a *known* app tag: fabricated stack indexes that
    /// do not resolve in the app's method table (an app lying about its call
    /// stack without knowing the table layout).
    ContextSpoofing,
    /// Traffic tagged with the MD5 of a **repackaged** build of an installed
    /// app: identical code, different package hash, so the tag is absent
    /// from the signature database (paper §VII, "Repackaged applications").
    RepackagedApp,
    /// Verbatim replay of another app's *allowed* context option onto one of
    /// the attacker's live flows — the classic evasion the set-once kernel
    /// exists to stop (§VII): without mid-flow switch detection these
    /// packets would all be accepted.
    ContextReplay,
    /// A second BorderPatrol context option riding ahead of the legitimate
    /// kernel-injected one (§IV-A4 conformance).
    DuplicateOption,
    /// Non-zero covert bytes after the End-of-List marker — data smuggled
    /// through the options area past the sanitizer (§IV-A4).
    TrailingData,
    /// Work-profile traffic carrying no context at all, as emitted by
    /// tooling outside BorderPatrol's control; strict deployments (§VII
    /// "Compatibility") drop it.
    UntaggedEgress,
}

impl AdversaryModel {
    /// Every model, in report order.
    pub const ALL: [AdversaryModel; 6] = [
        AdversaryModel::ContextSpoofing,
        AdversaryModel::RepackagedApp,
        AdversaryModel::ContextReplay,
        AdversaryModel::DuplicateOption,
        AdversaryModel::TrailingData,
        AdversaryModel::UntaggedEgress,
    ];

    /// Stable kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryModel::ContextSpoofing => "context-spoofing",
            AdversaryModel::RepackagedApp => "repackaged-app",
            AdversaryModel::ContextReplay => "context-replay",
            AdversaryModel::DuplicateOption => "duplicate-option",
            AdversaryModel::TrailingData => "trailing-data",
            AdversaryModel::UntaggedEgress => "untagged-egress",
        }
    }

    /// The paper section the model is drawn from.
    pub fn paper_section(self) -> &'static str {
        match self {
            AdversaryModel::ContextSpoofing => "§VI-B/§V-C",
            AdversaryModel::RepackagedApp => "§VII",
            AdversaryModel::ContextReplay => "§VII",
            AdversaryModel::DuplicateOption => "§IV-A4",
            AdversaryModel::TrailingData => "§IV-A4",
            AdversaryModel::UntaggedEgress => "§VII",
        }
    }

    /// Name of the [`EnforcerStats`] counter every packet of this model must
    /// be charged to (under the scenario's strict enforcement config).
    pub fn expected_counter(self) -> &'static str {
        match self {
            AdversaryModel::ContextSpoofing => "dropped_malformed",
            AdversaryModel::RepackagedApp => "dropped_unknown_app",
            AdversaryModel::ContextReplay => "dropped_context_switch",
            AdversaryModel::DuplicateOption => "dropped_duplicate_context",
            AdversaryModel::TrailingData => "dropped_malformed",
            AdversaryModel::UntaggedEgress => "dropped_untagged",
        }
    }

    /// The value of this model's expected counter in a statistics snapshot.
    pub fn counter_value(self, stats: &EnforcerStats) -> u64 {
        match self {
            AdversaryModel::ContextSpoofing | AdversaryModel::TrailingData => {
                stats.dropped_malformed
            }
            AdversaryModel::RepackagedApp => stats.dropped_unknown_app,
            AdversaryModel::ContextReplay => stats.dropped_context_switch,
            AdversaryModel::DuplicateOption => stats.dropped_duplicate_context,
            AdversaryModel::UntaggedEgress => stats.dropped_untagged,
        }
    }
}

impl std::fmt::Display for AdversaryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One adversary deployed against the fleet: a model plus how widely and how
/// aggressively it is exercised.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdversaryProfile {
    /// The traffic class this adversary emits.
    pub model: AdversaryModel,
    /// Fraction of the fleet's devices compromised by this adversary
    /// (membership is a pure seeded hash of the device index, so it is
    /// deterministic and independent of every other random draw).
    pub device_ratio: f64,
    /// Adversarial packets each compromised device injects per tick.
    pub packets_per_tick: u32,
}

impl AdversaryProfile {
    /// A profile compromising `device_ratio` of the fleet with one injected
    /// packet per compromised device per tick.
    pub fn new(model: AdversaryModel, device_ratio: f64) -> Self {
        AdversaryProfile {
            model,
            device_ratio,
            packets_per_tick: 1,
        }
    }

    /// Every model at the same ratio — the standard scenario's adversary set.
    pub fn all_models(device_ratio: f64) -> Vec<AdversaryProfile> {
        AdversaryModel::ALL
            .iter()
            .map(|&model| AdversaryProfile::new(model, device_ratio))
            .collect()
    }

    /// Whether this adversary compromises `device` (of `devices` total):
    /// a pure SplitMix64-style hash of `(seed, model, device)` compared
    /// against [`AdversaryProfile::device_ratio`] — no RNG stream is
    /// consumed, so adding or removing adversaries never perturbs the
    /// fleet's traffic draws.
    pub fn compromises(&self, seed: u64, device: u32) -> bool {
        if self.device_ratio <= 0.0 {
            return false;
        }
        if self.device_ratio >= 1.0 {
            return true;
        }
        let mut x = seed
            ^ (self.model as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(device).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.device_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_counters_and_sections_are_total() {
        for model in AdversaryModel::ALL {
            assert!(!model.name().is_empty());
            assert!(!model.expected_counter().is_empty());
            assert!(model.paper_section().starts_with('§'));
            assert_eq!(model.to_string(), model.name());
        }
    }

    #[test]
    fn counter_values_read_the_matching_field() {
        let stats = EnforcerStats {
            dropped_unknown_app: 2,
            dropped_malformed: 3,
            dropped_duplicate_context: 4,
            dropped_untagged: 5,
            dropped_context_switch: 6,
            ..EnforcerStats::default()
        };
        assert_eq!(AdversaryModel::RepackagedApp.counter_value(&stats), 2);
        assert_eq!(AdversaryModel::ContextSpoofing.counter_value(&stats), 3);
        assert_eq!(AdversaryModel::TrailingData.counter_value(&stats), 3);
        assert_eq!(AdversaryModel::DuplicateOption.counter_value(&stats), 4);
        assert_eq!(AdversaryModel::UntaggedEgress.counter_value(&stats), 5);
        assert_eq!(AdversaryModel::ContextReplay.counter_value(&stats), 6);
    }

    #[test]
    fn compromise_membership_is_deterministic_and_ratio_shaped() {
        let profile = AdversaryProfile::new(AdversaryModel::ContextReplay, 0.1);
        let members: Vec<u32> = (0..10_000)
            .filter(|&d| profile.compromises(42, d))
            .collect();
        let again: Vec<u32> = (0..10_000)
            .filter(|&d| profile.compromises(42, d))
            .collect();
        assert_eq!(members, again);
        // Roughly 10% of 10k devices, with generous slack.
        assert!((500..2_000).contains(&members.len()), "{}", members.len());

        // Edge ratios.
        let none = AdversaryProfile::new(AdversaryModel::ContextReplay, 0.0);
        assert!((0..100).all(|d| !none.compromises(42, d)));
        let all = AdversaryProfile::new(AdversaryModel::ContextReplay, 1.0);
        assert!((0..100).all(|d| all.compromises(42, d)));

        // Different models compromise different subsets under the same seed.
        let other = AdversaryProfile::new(AdversaryModel::TrailingData, 0.1);
        let other_members: Vec<u32> = (0..10_000).filter(|&d| other.compromises(42, d)).collect();
        assert_ne!(members, other_members);
    }

    #[test]
    fn all_models_builds_one_profile_per_model() {
        let profiles = AdversaryProfile::all_models(0.05);
        assert_eq!(profiles.len(), AdversaryModel::ALL.len());
        for (profile, model) in profiles.iter().zip(AdversaryModel::ALL) {
            assert_eq!(profile.model, model);
            assert_eq!(profile.packets_per_tick, 1);
        }
    }
}
