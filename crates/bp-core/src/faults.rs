//! Deterministic fault injection for chaos-testing the data plane.
//!
//! A [`FaultPlan`] describes *exactly* which faults fire and when: a worker
//! panic at batch `N` on shard `S`, a slow-worker stall, wire corruption of
//! every `K`-th ingress frame, a control-plane commit failure at rollout
//! ordinal `M`.  The plan is plain data — `Clone + PartialEq` — and
//! [`FaultPlan::seeded`] derives one deterministically from a 64-bit seed, so
//! a chaos run is exactly as replayable as every other scenario in this
//! repository: same seed, same shard count, same faults, same report.
//!
//! A [`FaultInjector`] is the armed form of a plan: it owns the per-shard
//! batch ordinals, the ingress frame ordinal and the commit ordinal, and the
//! data plane consults it at well-defined hook points:
//!
//! * [`FaultInjector::on_partition_start`] — called once per shard per batch
//!   before any packet of that shard's partition is inspected.  Panics (the
//!   runtime converts this into fail-closed verdicts, see
//!   `crates/bp-core/src/runtime.rs`) or stalls per the plan.
//! * [`FaultInjector::corrupt_next_frame`] — called once per decoded ingress
//!   frame; when `true` the decoder flips a byte first so the frame fails
//!   closed through the ordinary typed wire-error path.
//! * [`FaultInjector::commit_should_fail`] — called once per control-plane
//!   commit attempt; `Some(ordinal)` makes the transaction fail without
//!   touching any state.
//!
//! When no injector is installed the hooks cost one `OnceLock` load on the
//! hot path (benchmarked by `fault_overhead`); the counters below are plain
//! relaxed ordinals — they order nothing, they only count.
//!
//! The module also hosts the per-shard **health state machine** the runtime
//! feeds: [`HealthState::Healthy`] → [`HealthState::Degraded`] on a fault or
//! stall, back to `Healthy` after a clean streak, and
//! [`HealthState::Quarantined`] (terminal) once the respawn budget is spent —
//! a quarantined shard is rerouted to the submitter's inline path forever
//! after and injection hooks no longer apply to it.

use std::num::NonZeroU64;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// A worker panic scheduled at a (shard, batch) coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Shard whose partition panics.
    pub shard: usize,
    /// Zero-based batch ordinal (per shard) at which the panic fires.
    pub batch: u64,
}

/// A slow-worker stall scheduled at a (shard, batch) coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStall {
    /// Shard whose partition stalls.
    pub shard: usize,
    /// Zero-based batch ordinal (per shard) at which the stall fires.
    pub batch: u64,
    /// How long the worker sleeps before inspecting the partition.
    pub millis: u64,
}

/// A deterministic schedule of data-plane faults.
///
/// The default plan is empty (injects nothing); [`FaultPlan::seeded`] derives
/// a reproducible chaos mix from a seed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Worker panics, identified by (shard, per-shard batch ordinal).
    pub worker_panics: Vec<WorkerPanic>,
    /// Slow-worker stalls, identified by (shard, per-shard batch ordinal).
    pub stalls: Vec<WorkerStall>,
    /// Corrupt every `n`-th decoded ingress frame (1-based: `n = 4` corrupts
    /// frames 3, 7, 11, … counting from zero).
    pub corrupt_every: Option<NonZeroU64>,
    /// Control-plane commit ordinals (zero-based attempts) that fail.
    pub fail_commits: Vec<u64>,
}

/// SplitMix64 step — the repository's stock seed expander (no external RNG
/// crates in bp-core).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Derive a deterministic chaos plan from `seed` for an enforcer with
    /// `shards` shards: one worker panic on **every** shard within the first
    /// few batches, wire corruption of every 8–23rd frame, and one commit
    /// failure among the first four rollout attempts.  Stalls are left empty
    /// (they cost wall-clock time; schedule them explicitly when wanted).
    pub fn seeded(seed: u64, shards: usize) -> FaultPlan {
        let mut state = seed;
        let worker_panics = (0..shards.max(1))
            .map(|shard| WorkerPanic {
                shard,
                batch: 1 + splitmix64(&mut state) % 6,
            })
            .collect();
        let corrupt_every = NonZeroU64::new(8 + splitmix64(&mut state) % 16);
        let fail_commits = vec![splitmix64(&mut state) % 4];
        FaultPlan {
            worker_panics,
            stalls: Vec::new(),
            corrupt_every,
            fail_commits,
        }
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.worker_panics.is_empty()
            && self.stalls.is_empty()
            && self.corrupt_every.is_none()
            && self.fail_commits.is_empty()
    }
}

/// An armed [`FaultPlan`]: the plan plus the ordinal counters that decide
/// *which* partition/frame/commit each scheduled fault lands on.
///
/// The counters are relaxed atomics — they are pure ordinals and order
/// nothing; determinism comes from the serialized call sites (batch
/// submission holds the submit lock, frame decode and commit run on the
/// caller's thread).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-shard batch ordinal, bumped once per `on_partition_start`.
    batches: Vec<AtomicU64>,
    /// Ingress frame ordinal, bumped once per `corrupt_next_frame`.
    frames: AtomicU64,
    /// Control-plane commit ordinal, bumped once per `commit_should_fail`.
    commits: AtomicU64,
}

impl FaultInjector {
    /// Arm `plan` for an enforcer with `shards` shards.
    pub fn new(plan: FaultPlan, shards: usize) -> FaultInjector {
        FaultInjector {
            plan,
            batches: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            frames: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        }
    }

    /// The plan this injector was armed with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Hook: a partition for `shard` is about to be inspected.  Bumps the
    /// shard's batch ordinal, then stalls and/or panics if the plan schedules
    /// a fault at this coordinate.  The panic is the injected fault — callers
    /// run partitions under `catch_unwind` and fail the partition closed.
    pub fn on_partition_start(&self, shard: usize) {
        let Some(counter) = self.batches.get(shard) else {
            return;
        };
        let batch = counter.fetch_add(1, Ordering::Relaxed);
        for stall in &self.plan.stalls {
            if stall.shard == shard && stall.batch == batch {
                std::thread::sleep(Duration::from_millis(stall.millis));
            }
        }
        if self
            .plan
            .worker_panics
            .iter()
            .any(|p| p.shard == shard && p.batch == batch)
        {
            panic!("injected worker fault: shard {shard} batch {batch}");
        }
    }

    /// Hook: an ingress frame is about to be decoded.  Returns true when the
    /// plan schedules corruption for this frame ordinal.
    pub fn corrupt_next_frame(&self) -> bool {
        let Some(every) = self.plan.corrupt_every else {
            return false;
        };
        let frame = self.frames.fetch_add(1, Ordering::Relaxed);
        (frame + 1) % every.get() == 0
    }

    /// Hook: a control-plane commit is being attempted.  Returns
    /// `Some(ordinal)` when the plan schedules this attempt to fail.
    pub fn commit_should_fail(&self) -> Option<u64> {
        let ordinal = self.commits.fetch_add(1, Ordering::Relaxed);
        self.plan.fail_commits.contains(&ordinal).then_some(ordinal)
    }
}

/// The per-shard health state the runtime maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum HealthState {
    /// Serving normally.
    #[default]
    Healthy = 0,
    /// At least one fault or stall observed; recovers to [`HealthState::Healthy`]
    /// after [`CLEAN_BATCHES_TO_RECOVER`] consecutive clean batches.
    Degraded = 1,
    /// Respawn budget exhausted — the shard's partitions run inline on the
    /// submitter forever after.  Terminal.
    Quarantined = 2,
}

impl HealthState {
    /// Decode from a telemetry word; unknown values read as `Healthy` (the
    /// seqlock checksum catches genuinely torn snapshots).
    pub fn from_word(word: u64) -> HealthState {
        match word {
            1 => HealthState::Degraded,
            2 => HealthState::Quarantined,
            _ => HealthState::Healthy,
        }
    }

    /// Short label for dashboards and reports.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
        }
    }
}

/// Consecutive clean batches a [`HealthState::Degraded`] shard must serve
/// before it is promoted back to [`HealthState::Healthy`].
pub const CLEAN_BATCHES_TO_RECOVER: u64 = 16;

/// A point-in-time copy of one shard's health, as published through the
/// telemetry seqlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardHealthSnapshot {
    /// Current state.
    pub state: HealthState,
    /// Worker panics absorbed (fail-closed partitions).
    pub faults: u64,
    /// Workers respawned after a panic.
    pub respawns: u64,
    /// Partitions flagged by the stall watchdog.
    pub stalls: u64,
}

/// The live per-shard health state machine.
///
/// All fields are relaxed atomics: transitions are advisory (they steer
/// routing and reporting, never data correctness) and the writers are either
/// the shard's single worker or the serialized submitter.
#[derive(Debug)]
pub struct ShardHealth {
    state: AtomicU8,
    faults: AtomicU64,
    respawns: AtomicU64,
    stalls: AtomicU64,
    clean_streak: AtomicU64,
    /// Batch-scoped completion flag for the stall watchdog: the submitter
    /// clears it before dispatching a partition, the worker sets it when the
    /// partition finishes (cleanly or fail-closed).
    batch_done: AtomicBool,
}

impl Default for ShardHealth {
    fn default() -> Self {
        ShardHealth {
            state: AtomicU8::new(HealthState::Healthy as u8),
            faults: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            clean_streak: AtomicU64::new(0),
            // Starts `true`: the watchdog must only flag shards with a
            // partition actually in flight, and no dispatch has happened
            // yet — the submitter clears this right before each dispatch.
            batch_done: AtomicBool::new(true),
        }
    }
}

impl ShardHealth {
    /// Current state.
    pub fn state(&self) -> HealthState {
        HealthState::from_word(self.state.load(Ordering::Relaxed) as u64)
    }

    /// Snapshot every published counter.
    pub fn snapshot(&self) -> ShardHealthSnapshot {
        ShardHealthSnapshot {
            state: self.state(),
            faults: self.faults.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }

    /// A partition of this shard panicked and was failed closed.
    pub(crate) fn record_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
        self.clean_streak.store(0, Ordering::Relaxed);
        let _ = self.state.compare_exchange(
            HealthState::Healthy as u8,
            HealthState::Degraded as u8,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The submitter respawned this shard's worker.
    pub(crate) fn record_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// The stall watchdog flagged a partition stuck past the deadline.
    pub(crate) fn record_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
        self.clean_streak.store(0, Ordering::Relaxed);
        let _ = self.state.compare_exchange(
            HealthState::Healthy as u8,
            HealthState::Degraded as u8,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The respawn budget is spent: quarantine the shard (terminal).
    pub(crate) fn quarantine(&self) {
        self.state
            .store(HealthState::Quarantined as u8, Ordering::Relaxed);
    }

    /// A partition completed cleanly; a degraded shard recovers after
    /// [`CLEAN_BATCHES_TO_RECOVER`] in a row.
    pub(crate) fn note_clean_batch(&self) {
        if self.state.load(Ordering::Relaxed) != HealthState::Degraded as u8 {
            return;
        }
        let streak = self.clean_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= CLEAN_BATCHES_TO_RECOVER {
            self.clean_streak.store(0, Ordering::Relaxed);
            let _ = self.state.compare_exchange(
                HealthState::Degraded as u8,
                HealthState::Healthy as u8,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Watchdog plumbing: mark this shard's partition as not-yet-finished
    /// (`done = false` before dispatch) or finished.
    pub(crate) fn set_batch_done(&self, done: bool) {
        self.batch_done.store(done, Ordering::Relaxed);
    }

    /// Watchdog plumbing: has the dispatched partition finished?
    pub(crate) fn batch_done(&self) -> bool {
        self.batch_done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_cover_every_shard() {
        let a = FaultPlan::seeded(0xC0FFEE, 4);
        let b = FaultPlan::seeded(0xC0FFEE, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let shards: Vec<usize> = a.worker_panics.iter().map(|p| p.shard).collect();
        assert_eq!(shards, vec![0, 1, 2, 3]);
        assert!(a.worker_panics.iter().all(|p| (1..=6).contains(&p.batch)));
        assert_ne!(a, FaultPlan::seeded(0xC0FFEF, 4));
    }

    #[test]
    fn injector_fires_at_the_scheduled_batch_only() {
        let plan = FaultPlan {
            worker_panics: vec![WorkerPanic { shard: 1, batch: 2 }],
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan, 2);
        injector.on_partition_start(0); // shard 0 never panics
        injector.on_partition_start(1); // batch 0
        injector.on_partition_start(1); // batch 1
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.on_partition_start(1)
        }));
        assert!(result.is_err(), "batch 2 on shard 1 must panic");
        injector.on_partition_start(1); // batch 3: recovered
        injector.on_partition_start(7); // out-of-range shard is a no-op
    }

    #[test]
    fn frame_corruption_hits_every_nth_frame() {
        let plan = FaultPlan {
            corrupt_every: NonZeroU64::new(4),
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan, 1);
        let hits: Vec<bool> = (0..8).map(|_| injector.corrupt_next_frame()).collect();
        assert_eq!(
            hits,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn commit_failures_hit_the_scheduled_ordinals() {
        let plan = FaultPlan {
            fail_commits: vec![1],
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan, 1);
        assert_eq!(injector.commit_should_fail(), None);
        assert_eq!(injector.commit_should_fail(), Some(1));
        assert_eq!(injector.commit_should_fail(), None);
    }

    #[test]
    fn health_state_machine_degrades_recovers_and_quarantines() {
        let health = ShardHealth::default();
        assert_eq!(health.state(), HealthState::Healthy);
        health.record_fault();
        assert_eq!(health.state(), HealthState::Degraded);
        assert_eq!(health.snapshot().faults, 1);
        for _ in 0..CLEAN_BATCHES_TO_RECOVER {
            health.note_clean_batch();
        }
        assert_eq!(health.state(), HealthState::Healthy);
        health.record_stall();
        assert_eq!(health.state(), HealthState::Degraded);
        health.quarantine();
        assert_eq!(health.state(), HealthState::Quarantined);
        // Quarantine is terminal: clean batches do not resurrect the shard.
        for _ in 0..2 * CLEAN_BATCHES_TO_RECOVER {
            health.note_clean_batch();
        }
        assert_eq!(health.state(), HealthState::Quarantined);
    }
}
