//! The wire encoding of contextual information inside `IP_OPTIONS`.
//!
//! The options area offers at most 40 bytes including the 2-byte option
//! header, so the Context Manager transmits the context as:
//!
//! ```text
//! +--------+----------------+------------------------------+
//! | flags  | app tag (8 B)  | frame indexes (2 or 3 B each)|
//! +--------+----------------+------------------------------+
//! ```
//!
//! * `flags` bit 0 — wide (3-byte) frame indexes, required for multi-dex apps
//!   whose method count exceeds what 2 bytes can address (paper §VII,
//!   "Multi-dex file applications");
//! * `flags` bit 1 — the stack was truncated to fit the budget.
//!
//! With narrow (2-byte) indexes the payload holds up to 14 frames, with wide
//! (3-byte) indexes up to 9 — enough for the innermost frames that carry the
//! discriminating context.

use serde::{Deserialize, Serialize};

use bp_types::{AppTag, Error};

/// Maximum payload size of the BorderPatrol option: 40 bytes total minus the
/// 2-byte option type/length header.
pub const MAX_CONTEXT_PAYLOAD: usize = 38;

/// Size of the header inside the payload: flags byte + 8-byte app tag.
const PAYLOAD_HEADER: usize = 1 + 8;

/// Flag bit: indexes are 3 bytes wide.
const FLAG_WIDE: u8 = 0b0000_0001;
/// Flag bit: the frame list was truncated to fit the budget.
const FLAG_TRUNCATED: u8 = 0b0000_0010;

/// A decoded context: the application tag plus the stack of method indexes,
/// innermost frame first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncodedContext {
    /// Truncated apk hash identifying the application.
    pub app_tag: AppTag,
    /// Method-table indexes of the stack frames, innermost first.
    pub frame_indexes: Vec<u32>,
    /// Whether the encoder had to drop outer frames to fit the budget.
    pub truncated: bool,
    /// Whether 3-byte indexes were used.
    pub wide: bool,
}

/// Encoder/decoder for the BorderPatrol context option payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextEncoding;

impl ContextEncoding {
    /// Number of index bytes per frame for the given width.
    pub fn bytes_per_frame(wide: bool) -> usize {
        if wide {
            3
        } else {
            2
        }
    }

    /// Maximum number of frames that fit the payload for the given width.
    pub fn max_frames(wide: bool) -> usize {
        (MAX_CONTEXT_PAYLOAD - PAYLOAD_HEADER) / Self::bytes_per_frame(wide)
    }

    /// Largest index representable at the given width.
    pub fn max_index(wide: bool) -> u32 {
        if wide {
            0x00ff_ffff
        } else {
            0xffff
        }
    }

    /// Encode `app_tag` and `frame_indexes` (innermost first) into an option
    /// payload.  Frames beyond the capacity are dropped from the *outer* end
    /// and the truncated flag is set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CapacityExceeded`] if any index exceeds what the
    /// chosen width can represent.
    pub fn encode(app_tag: AppTag, frame_indexes: &[u32], wide: bool) -> Result<Vec<u8>, Error> {
        let max_index = Self::max_index(wide);
        if let Some(&too_big) = frame_indexes.iter().find(|&&i| i > max_index) {
            return Err(Error::capacity(
                "frame index",
                too_big as usize,
                max_index as usize,
            ));
        }
        let capacity = Self::max_frames(wide);
        let truncated = frame_indexes.len() > capacity;
        let kept = &frame_indexes[..frame_indexes.len().min(capacity)];

        let mut flags = 0u8;
        if wide {
            flags |= FLAG_WIDE;
        }
        if truncated {
            flags |= FLAG_TRUNCATED;
        }

        let mut payload =
            Vec::with_capacity(PAYLOAD_HEADER + kept.len() * Self::bytes_per_frame(wide));
        payload.push(flags);
        payload.extend_from_slice(app_tag.as_bytes());
        for &index in kept {
            if wide {
                payload.extend_from_slice(&index.to_be_bytes()[1..4]);
            } else {
                payload.extend_from_slice(&(index as u16).to_be_bytes());
            }
        }
        debug_assert!(payload.len() <= MAX_CONTEXT_PAYLOAD);
        Ok(payload)
    }

    /// Decode an option payload back into an [`EncodedContext`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] if the payload is shorter than the header
    /// or its frame area is not a multiple of the frame width.
    pub fn decode(payload: &[u8]) -> Result<EncodedContext, Error> {
        let mut frame_indexes = Vec::new();
        let header = Self::decode_into(payload, &mut frame_indexes)?;
        Ok(EncodedContext {
            app_tag: header.app_tag,
            frame_indexes,
            truncated: header.truncated,
            wide: header.wide,
        })
    }

    /// Decode an option payload into a caller-provided index buffer.
    ///
    /// This is the allocation-free path the compiled Policy Enforcer uses:
    /// `frame_indexes` is cleared and refilled, so a per-shard scratch buffer
    /// can be reused across packets without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] under the same conditions as
    /// [`ContextEncoding::decode`].
    pub fn decode_into(
        payload: &[u8],
        frame_indexes: &mut Vec<u32>,
    ) -> Result<DecodedHeader, Error> {
        frame_indexes.clear();
        if payload.len() < PAYLOAD_HEADER {
            return Err(Error::malformed(
                "context option",
                "payload shorter than header",
            ));
        }
        if payload.len() > MAX_CONTEXT_PAYLOAD {
            return Err(Error::malformed(
                "context option",
                "payload exceeds 38 bytes",
            ));
        }
        let flags = payload[0];
        let wide = flags & FLAG_WIDE != 0;
        let truncated = flags & FLAG_TRUNCATED != 0;
        let mut tag_bytes = [0u8; 8];
        tag_bytes.copy_from_slice(&payload[1..9]);
        let app_tag = AppTag::from_bytes(tag_bytes);

        let frame_area = &payload[PAYLOAD_HEADER..];
        let width = Self::bytes_per_frame(wide);
        if frame_area.len() % width != 0 {
            return Err(Error::malformed(
                "context option",
                format!(
                    "frame area of {} bytes is not a multiple of {width}",
                    frame_area.len()
                ),
            ));
        }
        frame_indexes.extend(frame_area.chunks_exact(width).map(|chunk| {
            if wide {
                u32::from_be_bytes([0, chunk[0], chunk[1], chunk[2]])
            } else {
                u32::from(u16::from_be_bytes([chunk[0], chunk[1]]))
            }
        }));
        Ok(DecodedHeader {
            app_tag,
            truncated,
            wide,
        })
    }
}

/// The fixed-size part of a decoded context option (everything except the
/// frame indexes, which [`ContextEncoding::decode_into`] writes to a reusable
/// buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedHeader {
    /// Truncated apk hash identifying the application.
    pub app_tag: AppTag,
    /// Whether the encoder had to drop outer frames to fit the budget.
    pub truncated: bool,
    /// Whether 3-byte indexes were used.
    pub wide: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::ApkHash;

    fn tag() -> AppTag {
        ApkHash::digest(b"com.example.app").tag()
    }

    #[test]
    fn narrow_roundtrip() {
        let indexes = vec![0, 1, 65_535, 42, 7];
        let payload = ContextEncoding::encode(tag(), &indexes, false).unwrap();
        assert!(payload.len() <= MAX_CONTEXT_PAYLOAD);
        let decoded = ContextEncoding::decode(&payload).unwrap();
        assert_eq!(decoded.app_tag, tag());
        assert_eq!(decoded.frame_indexes, indexes);
        assert!(!decoded.truncated);
        assert!(!decoded.wide);
    }

    #[test]
    fn wide_roundtrip() {
        let indexes = vec![70_000, 0xff_ffff, 3];
        let payload = ContextEncoding::encode(tag(), &indexes, true).unwrap();
        let decoded = ContextEncoding::decode(&payload).unwrap();
        assert_eq!(decoded.frame_indexes, indexes);
        assert!(decoded.wide);
    }

    #[test]
    fn capacity_limits() {
        assert_eq!(ContextEncoding::max_frames(false), 14);
        assert_eq!(ContextEncoding::max_frames(true), 9);
        assert_eq!(ContextEncoding::max_index(false), 65_535);
        assert_eq!(ContextEncoding::max_index(true), 16_777_215);
    }

    #[test]
    fn truncation_keeps_innermost_frames() {
        let indexes: Vec<u32> = (0..30).collect();
        let payload = ContextEncoding::encode(tag(), &indexes, false).unwrap();
        assert!(payload.len() <= MAX_CONTEXT_PAYLOAD);
        let decoded = ContextEncoding::decode(&payload).unwrap();
        assert!(decoded.truncated);
        assert_eq!(
            decoded.frame_indexes.len(),
            ContextEncoding::max_frames(false)
        );
        assert_eq!(decoded.frame_indexes, (0..14).collect::<Vec<u32>>());
    }

    #[test]
    fn narrow_rejects_indexes_beyond_u16() {
        let err = ContextEncoding::encode(tag(), &[70_000], false).unwrap_err();
        assert!(matches!(err, Error::CapacityExceeded { .. }));
        // The same index encodes fine in wide mode.
        assert!(ContextEncoding::encode(tag(), &[70_000], true).is_ok());
    }

    #[test]
    fn wide_rejects_indexes_beyond_24_bits() {
        assert!(ContextEncoding::encode(tag(), &[0x0100_0000], true).is_err());
    }

    #[test]
    fn empty_stack_encodes_header_only() {
        let payload = ContextEncoding::encode(tag(), &[], false).unwrap();
        assert_eq!(payload.len(), 9);
        let decoded = ContextEncoding::decode(&payload).unwrap();
        assert!(decoded.frame_indexes.is_empty());
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(ContextEncoding::decode(&[]).is_err());
        assert!(ContextEncoding::decode(&[0; 5]).is_err());
        // Narrow flag but odd frame area.
        let mut payload = ContextEncoding::encode(tag(), &[1, 2], false).unwrap();
        payload.push(0xFF);
        assert!(ContextEncoding::decode(&payload).is_err());
        // Oversized payload.
        assert!(ContextEncoding::decode(&[0u8; 39]).is_err());
    }

    #[test]
    fn distinct_apps_produce_distinct_payloads() {
        let a = ContextEncoding::encode(ApkHash::digest(b"a").tag(), &[1, 2], false).unwrap();
        let b = ContextEncoding::encode(ApkHash::digest(b"b").tag(), &[1, 2], false).unwrap();
        assert_ne!(a, b);
    }
}
