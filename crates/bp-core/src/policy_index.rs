//! Indexed match-action tables for compiled policy evaluation.
//!
//! [`crate::policy::CompiledPolicySet`] historically evaluated packets by
//! scanning four rule buckets linearly, so per-packet cost grew with the rule
//! count.  This module lowers a compiled rule list into flat tables — the
//! software analogue of a switch's match-action pipeline — so per-packet cost
//! depends on the *stack depth* of the packet, not on how many rules the
//! fleet has accumulated:
//!
//! * **Tag table** — open-addressed hash table from the app tag's `u64` form
//!   to the minimum-index deny rule and an allow flag.  Hash-level rules
//!   resolve in one probe, allocation-free.
//! * **Prefix table** — one sorted array of interned target keys (normalized
//!   package prefixes, class paths, and `class/method` descriptor heads),
//!   probed through an open-addressed exact-key accelerator: a probe hashes
//!   its bytes once and lands on the row in O(1), independent of the key
//!   count (the sorted order remains load-bearing — it drives the
//!   incremental merge and the debug-assertion binary-search oracle).  A
//!   stack frame generates one probe per package segment boundary plus one
//!   for its qualified class and one for its method head, and a **root
//!   filter** (the set of every key's first path segment) rejects whole
//!   frames in one tiny-table probe when their namespace heads no rule at
//!   all — the common case in large fleets, where most frames belong to app
//!   code no policy names.
//! * **Method arena** — descriptor-level rules chained per key (several
//!   overloads may share a `class/method` head), with parameter/return
//!   constraints checked only after an exact key hit.
//! * **Verbatim residue** — the rare method targets that do not decompose
//!   into descriptor components (unbalanced parentheses) stay on a linear
//!   path; real policy corpora have none.
//!
//! The tables preserve the linear scan's semantics *exactly*, including
//! attribution: deny verdicts report the minimum matching rule index per
//! bucket (equal to first-match in insertion order), and whitelist
//! quantification ("some allow rule matches every frame") is answered via
//! the longest common segment-boundary prefix of the stack.
//! `CompiledPolicySet` keeps the linear evaluator as an equivalence oracle;
//! the proptest suite drives both and demands identical verdicts and
//! attribution.
//!
//! All row types are plain-old-data over an interned key store (`Arc`-shared
//! string blob plus a spill list for incrementally added keys), so cloning an
//! index for an incremental extension is a handful of `memcpy`s and `Arc`
//! bumps — the property [`PolicyIndex::extend`] exploits to make a one-rule
//! delta commit near-constant-time on a 100k-rule set.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

use bp_types::{EnforcementLevel, MethodSignature};

use crate::policy::{CompiledMatcher, PolicyAction};

/// Sentinel for "no rule"; real rule indexes are bounded far under
/// `u32::MAX`, which `CompiledPolicySet::compile` enforces.
pub(crate) const NO_RULE: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Interned keys
// ---------------------------------------------------------------------------

/// A reference into a [`KeyStore`]: either an `(offset, len)` slice of the
/// shared blob, or a spill-list index for keys added by an incremental
/// extension.  `KeyRef::NONE` encodes an absent optional string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KeyRef {
    a: u32,
    b: u32,
}

impl KeyRef {
    const NONE: KeyRef = KeyRef {
        a: u32::MAX,
        b: u32::MAX,
    };

    fn is_none(self) -> bool {
        self == KeyRef::NONE
    }
}

/// Interned string storage: a single `Arc` blob built at full compilation
/// (so a clone shares it) plus per-string spill entries for keys appended by
/// incremental extensions.
#[derive(Debug, Clone)]
struct KeyStore {
    blob: Arc<str>,
    spill: Vec<Arc<str>>,
}

impl Default for KeyStore {
    fn default() -> Self {
        KeyStore {
            blob: Arc::from(""),
            spill: Vec::new(),
        }
    }
}

impl KeyStore {
    fn resolve(&self, r: KeyRef) -> &str {
        if r.a == u32::MAX {
            &self.spill[r.b as usize]
        } else {
            &self.blob[r.a as usize..(r.a + r.b) as usize]
        }
    }

    fn resolve_opt(&self, r: KeyRef) -> Option<&str> {
        if r.is_none() {
            None
        } else {
            Some(self.resolve(r))
        }
    }

    /// Append `s` to the spill list (incremental-extension path).
    fn spill(&mut self, s: &str) -> KeyRef {
        let index = self.spill.len() as u32;
        debug_assert!(index != u32::MAX, "spill list full");
        self.spill.push(Arc::from(s));
        KeyRef {
            a: u32::MAX,
            b: index,
        }
    }

    fn spill_opt(&mut self, s: Option<&str>) -> KeyRef {
        s.map_or(KeyRef::NONE, |s| self.spill(s))
    }
}

/// Builder-side interner for the blob constructed by a full compilation.
#[derive(Default)]
struct BlobBuilder {
    blob: String,
}

impl BlobBuilder {
    fn intern(&mut self, s: &str) -> KeyRef {
        let a = self.blob.len() as u32;
        self.blob.push_str(s);
        debug_assert!(self.blob.len() < u32::MAX as usize, "key blob overflow");
        KeyRef {
            a,
            b: s.len() as u32,
        }
    }

    fn intern_opt(&mut self, s: Option<&str>) -> KeyRef {
        s.map_or(KeyRef::NONE, |s| self.intern(s))
    }

    fn finish(self) -> KeyStore {
        KeyStore {
            blob: Arc::from(self.blob.as_str()),
            spill: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tag table
// ---------------------------------------------------------------------------

/// One open-addressed slot of the tag table.
#[derive(Debug, Clone, Copy)]
struct TagSlot {
    tag: u64,
    deny: u32,
    allow: bool,
    used: bool,
}

const EMPTY_SLOT: TagSlot = TagSlot {
    tag: 0,
    deny: NO_RULE,
    allow: false,
    used: false,
};

/// Open-addressed hash table keyed by the app tag's `u64` form.  Kept at
/// load factor ≤ 1/2; lookups are allocation-free and probe linearly.
#[derive(Debug, Clone, Default)]
struct TagTable {
    slots: Vec<TagSlot>,
    used: usize,
}

/// SplitMix64-style finalizer: tags are cryptographic-hash prefixes already,
/// but the mixer keeps the table robust against adversarially aligned tags.
fn mix(tag: u64) -> u64 {
    let mut x = tag;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice; [`VBytes::hash_prefix`] computes the identical
/// hash over a virtual string, so the two sides of a probe agree.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// One slot of [`KeyLookup`]: a key's byte hash plus its position in the
/// sorted prefix array (`NO_RULE` = empty slot).
#[derive(Debug, Clone, Copy)]
struct LookupSlot {
    hash: u64,
    index: u32,
}

/// Open-addressed exact-match accelerator over the sorted prefix table:
/// maps the FNV-1a hash of a key's bytes to its array position, so a probe
/// costs one hash plus O(1) slot loads instead of a binary search — the
/// table stays flat from 3 to 100k keys.  Keys are unique (the classifier
/// aggregates per key), so no duplicate handling is needed.
#[derive(Debug, Clone, Default)]
struct KeyLookup {
    slots: Vec<LookupSlot>,
}

impl KeyLookup {
    /// An empty table sized for `len` keys at load factor ≤ 1/2.
    fn with_capacity(len: usize) -> Self {
        let capacity = (len * 2).next_power_of_two().max(8);
        KeyLookup {
            slots: vec![
                LookupSlot {
                    hash: 0,
                    index: NO_RULE,
                };
                capacity
            ],
        }
    }

    fn insert(&mut self, hash: u64, index: u32) {
        debug_assert!(index != NO_RULE);
        let mask = self.slots.len() - 1;
        let mut i = mix(hash) as usize & mask;
        while self.slots[i].index != NO_RULE {
            i = (i + 1) & mask;
        }
        self.slots[i] = LookupSlot { hash, index };
    }

    /// First stored position whose hash equals `hash` and whose key the
    /// caller confirms byte-exactly via `matches`.
    fn find(&self, hash: u64, mut matches: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = mix(hash) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot.index == NO_RULE {
                return None;
            }
            if slot.hash == hash && matches(slot.index) {
                return Some(slot.index);
            }
            i = (i + 1) & mask;
        }
    }
}

/// Open-addressed set of the FNV-1a hash of every table key's first path
/// segment (its bytes before the first `/`).  Every probe string a frame
/// generates is a `/`-boundary prefix of its `pkg/Class/method` string, so
/// they all share that string's first segment: one miss here proves no
/// table key can match the frame and the whole probe cascade is skipped.
/// The set holds one entry per distinct rule *namespace* (a handful, even
/// at 100k rules), so the probe is effectively an L1 load.
#[derive(Debug, Clone, Default)]
struct RootFilter {
    /// `0` = empty slot; stored hashes are remapped away from 0.
    slots: Vec<u64>,
    used: usize,
}

impl RootFilter {
    fn nonzero(hash: u64) -> u64 {
        if hash == 0 {
            1
        } else {
            hash
        }
    }

    fn insert(&mut self, hash: u64) {
        let hash = Self::nonzero(hash);
        if (self.used + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = mix(hash) as usize & mask;
        loop {
            if self.slots[i] == 0 {
                self.slots[i] = hash;
                self.used += 1;
                return;
            }
            if self.slots[i] == hash {
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let capacity = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![0; capacity]);
        self.used = 0;
        for hash in old {
            if hash != 0 {
                self.insert(hash);
            }
        }
    }

    fn contains(&self, hash: u64) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let hash = Self::nonzero(hash);
        let mask = self.slots.len() - 1;
        let mut i = mix(hash) as usize & mask;
        loop {
            if self.slots[i] == 0 {
                return false;
            }
            if self.slots[i] == hash {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Fold `key`'s first path segment into the set.
    fn insert_root_of(&mut self, key: &str) {
        let bytes = key.as_bytes();
        let end = bytes.iter().position(|&b| b == b'/').unwrap_or(bytes.len());
        self.insert(hash_bytes(&bytes[..end]));
    }
}

impl TagTable {
    /// `(minimum-index deny rule or NO_RULE, any allow rule)` for `tag`.
    fn lookup(&self, tag: u64) -> (u32, bool) {
        if self.slots.is_empty() {
            return (NO_RULE, false);
        }
        let mask = self.slots.len() - 1;
        let mut i = mix(tag) as usize & mask;
        loop {
            let slot = self.slots[i];
            if !slot.used {
                return (NO_RULE, false);
            }
            if slot.tag == tag {
                return (slot.deny, slot.allow);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, tag: u64, deny: u32, allow: bool) {
        if (self.used + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = mix(tag) as usize & mask;
        loop {
            let slot = &mut self.slots[i];
            if !slot.used {
                *slot = TagSlot {
                    tag,
                    deny,
                    allow,
                    used: true,
                };
                self.used += 1;
                return;
            }
            if slot.tag == tag {
                // Minimum index = first match in insertion order.
                slot.deny = slot.deny.min(deny);
                slot.allow |= allow;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let capacity = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; capacity]);
        self.used = 0;
        for slot in old {
            if slot.used {
                self.insert(slot.tag, slot.deny, slot.allow);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Prefix table + method arena + verbatim residue
// ---------------------------------------------------------------------------

/// One sorted-table row: an interned key plus every match role the key plays.
/// A single key can simultaneously be a library prefix, a class path and a
/// `class/method` descriptor head (the roles are disjoint flag/field sets).
#[derive(Debug, Clone, Copy)]
struct PrefixEntry {
    key: KeyRef,
    /// FNV-1a hash of the key bytes — the [`KeyLookup`] stored hash, kept
    /// on the row so incremental merges rebuild the accelerator without
    /// re-hashing every key.
    hash: u64,
    /// Minimum-index deny rule using the key as a library prefix.
    deny_lib: u32,
    /// Minimum-index deny rule using the key as a class path.
    deny_class: u32,
    /// Head of the [`MethodRule`] chain for this `class/method` key.
    method_head: u32,
    allow_lib: bool,
    allow_class: bool,
}

/// One descriptor-level rule, chained per `class/method` key (overloads and
/// repeated rules share a key).  `class_len` disambiguates keys whose method
/// name itself contains `/`: an exact key hit plus an equal split point
/// implies component-wise equality.
#[derive(Debug, Clone, Copy)]
struct MethodRule {
    policy: u32,
    class_len: u32,
    /// Parameter constraint; `NONE` = target omitted the parameter list.
    params: KeyRef,
    /// Return constraint; `NONE` = target omitted the return type.
    ret: KeyRef,
    next: u32,
    allow: bool,
}

/// A method rule whose target does not decompose into descriptor components;
/// matched by the verbatim string comparisons of the interpretive path.
#[derive(Debug, Clone, Copy)]
struct VerbatimRule {
    policy: u32,
    target: KeyRef,
    allow: bool,
}

// ---------------------------------------------------------------------------
// Virtual byte strings (qualified class paths without materializing them)
// ---------------------------------------------------------------------------

/// A probe key assembled from up to five borrowed parts, compared against
/// table keys byte-wise without concatenating.  Models the virtual strings
/// `pkg`, `pkg/Class` and `pkg/Class/method`.
#[derive(Clone, Copy)]
struct VBytes<'a> {
    parts: [&'a [u8]; 5],
    n: usize,
}

impl<'a> VBytes<'a> {
    fn single(s: &'a [u8]) -> Self {
        VBytes {
            parts: [s, b"", b"", b"", b""],
            n: 1,
        }
    }

    /// The virtual qualified class `pkg/Class` (just `Class` when the
    /// package is empty — mirroring `MethodSignature::qualified_class`).
    fn qualified(pkg: &'a str, class: &'a str) -> Self {
        if pkg.is_empty() {
            VBytes::single(class.as_bytes())
        } else {
            VBytes {
                parts: [pkg.as_bytes(), b"/", class.as_bytes(), b"", b""],
                n: 3,
            }
        }
    }

    /// The virtual descriptor head `pkg/Class/method` (mirroring the
    /// `{class_path}/{method}` table keys of descriptor-level rules).
    fn method_key(pkg: &'a str, class: &'a str, method: &'a str) -> Self {
        if pkg.is_empty() {
            VBytes {
                parts: [class.as_bytes(), b"/", method.as_bytes(), b"", b""],
                n: 3,
            }
        } else {
            VBytes {
                parts: [
                    pkg.as_bytes(),
                    b"/",
                    class.as_bytes(),
                    b"/",
                    method.as_bytes(),
                ],
                n: 5,
            }
        }
    }

    fn len(&self) -> usize {
        self.parts[..self.n].iter().map(|p| p.len()).sum()
    }

    fn byte(&self, mut i: usize) -> u8 {
        for part in &self.parts[..self.n] {
            if i < part.len() {
                return part[i];
            }
            i -= part.len();
        }
        unreachable!("VBytes index out of range")
    }

    /// Lexicographic comparison of the first `upto` bytes of `self` against
    /// `key` (a full table key).
    fn cmp_prefix(&self, upto: usize, key: &[u8]) -> Ordering {
        let mut i = 0usize;
        let mut remaining = upto;
        for part in &self.parts[..self.n] {
            for &b in part.iter().take(remaining) {
                if i == key.len() {
                    return Ordering::Greater;
                }
                match b.cmp(&key[i]) {
                    Ordering::Equal => i += 1,
                    other => return other,
                }
            }
            remaining = remaining.saturating_sub(part.len());
            if remaining == 0 {
                break;
            }
        }
        if i == key.len() {
            Ordering::Equal
        } else {
            Ordering::Less
        }
    }

    /// FNV-1a over the first `upto` bytes — identical to [`hash_bytes`] of
    /// the materialized prefix, so probe and table agree.
    fn hash_prefix(&self, upto: usize) -> u64 {
        let mut h = FNV_OFFSET;
        let mut remaining = upto;
        for part in &self.parts[..self.n] {
            for &b in part.iter().take(remaining) {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            remaining = remaining.saturating_sub(part.len());
            if remaining == 0 {
                break;
            }
        }
        h
    }

    /// Bytes before the first `/` (the whole string when it has none) — the
    /// first path segment, which every `/`-boundary prefix shares.
    fn first_segment_len(&self) -> usize {
        let n = self.len();
        (0..n).find(|&i| self.byte(i) == b'/').unwrap_or(n)
    }
}

/// Byte equality of two full virtual strings.
fn vbytes_eq(a: &VBytes<'_>, b: &VBytes<'_>) -> bool {
    let n = a.len();
    n == b.len() && (0..n).all(|i| a.byte(i) == b.byte(i))
}

// ---------------------------------------------------------------------------
// Rule classification (shared by build and extend)
// ---------------------------------------------------------------------------

/// Per-key aggregation used by build and extend.
struct KeyAgg<'m> {
    deny_lib: u32,
    deny_class: u32,
    allow_lib: bool,
    allow_class: bool,
    methods: Vec<MethodAgg<'m>>,
}

struct MethodAgg<'m> {
    policy: u32,
    allow: bool,
    class_len: u32,
    params: Option<&'m str>,
    ret: Option<&'m str>,
}

impl KeyAgg<'_> {
    fn empty() -> Self {
        KeyAgg {
            deny_lib: NO_RULE,
            deny_class: NO_RULE,
            allow_lib: false,
            allow_class: false,
            methods: Vec::new(),
        }
    }
}

/// The classified rule stream both [`PolicyIndex::build`] and
/// [`PolicyIndex::extend`] aggregate from.  Keys borrow from the matchers
/// where possible; descriptor heads are built (`class/method`) and owned.
struct Classified<'m> {
    map: BTreeMap<Cow<'m, str>, KeyAgg<'m>>,
    tags: Vec<(u64, u32, bool)>,
    verbatim: Vec<(u32, bool, &'m str)>,
    class_empty_deny: u32,
    class_empty_allow: bool,
    allow_rules: u32,
}

impl<'m> Classified<'m> {
    fn from_rules(
        rules: impl IntoIterator<Item = (u32, PolicyAction, &'m CompiledMatcher)>,
    ) -> Self {
        let mut c = Classified {
            map: BTreeMap::new(),
            tags: Vec::new(),
            verbatim: Vec::new(),
            class_empty_deny: NO_RULE,
            class_empty_allow: false,
            allow_rules: 0,
        };
        for (policy, action, matcher) in rules {
            let allow = action == PolicyAction::Allow;
            if allow {
                // Every allow rule — even an unmatchable one — switches the
                // set into whitelist mode, exactly like the linear buckets.
                c.allow_rules += 1;
            }
            match matcher {
                CompiledMatcher::Hash(Some(tag)) => {
                    c.tags.push((tag.as_u64(), policy, allow));
                }
                CompiledMatcher::Hash(None) | CompiledMatcher::Never => {}
                CompiledMatcher::Library(prefix) => {
                    if prefix.is_empty() {
                        // `segment_prefix` rejects empty prefixes: unmatchable.
                        continue;
                    }
                    let agg = c
                        .map
                        .entry(Cow::Borrowed(prefix.as_str()))
                        .or_insert_with(KeyAgg::empty);
                    if allow {
                        agg.allow_lib = true;
                    } else {
                        agg.deny_lib = agg.deny_lib.min(policy);
                    }
                }
                CompiledMatcher::Class(path) => {
                    if path.is_empty() {
                        // Matches only frames whose package and class are
                        // both empty — kept as a scalar, not a table key.
                        if allow {
                            c.class_empty_allow = true;
                        } else {
                            c.class_empty_deny = c.class_empty_deny.min(policy);
                        }
                        continue;
                    }
                    let agg = c
                        .map
                        .entry(Cow::Borrowed(path.as_str()))
                        .or_insert_with(KeyAgg::empty);
                    if allow {
                        agg.allow_class = true;
                    } else {
                        agg.deny_class = agg.deny_class.min(policy);
                    }
                }
                CompiledMatcher::Method {
                    class_path,
                    method,
                    params,
                    ret,
                } => {
                    let agg = c
                        .map
                        .entry(Cow::Owned(format!("{class_path}/{method}")))
                        .or_insert_with(KeyAgg::empty);
                    agg.methods.push(MethodAgg {
                        policy,
                        allow,
                        class_len: class_path.len() as u32,
                        params: params.as_deref(),
                        ret: ret.as_deref(),
                    });
                }
                CompiledMatcher::MethodVerbatim(target) => {
                    c.verbatim.push((policy, allow, target));
                }
            }
        }
        c
    }
}

/// Append `aggs` onto a method-rule chain headed at `head`; returns the new
/// head.  Chain order is irrelevant: deny attribution takes the chain
/// minimum and allow checks accept any match.
fn push_chain(
    methods: &mut Vec<MethodRule>,
    mut head: u32,
    aggs: &[MethodAgg<'_>],
    mut intern_opt: impl FnMut(Option<&str>) -> KeyRef,
) -> u32 {
    for agg in aggs {
        let params = intern_opt(agg.params);
        let ret = intern_opt(agg.ret);
        let index = methods.len() as u32;
        debug_assert!(index != u32::MAX, "method arena full");
        methods.push(MethodRule {
            policy: agg.policy,
            class_len: agg.class_len,
            params,
            ret,
            next: head,
            allow: agg.allow,
        });
        head = index;
    }
    head
}

// ---------------------------------------------------------------------------
// The index
// ---------------------------------------------------------------------------

/// The flat match-action tables one [`crate::policy::CompiledPolicySet`]
/// evaluates against.  Built by [`PolicyIndex::build`] from the compiled rule
/// list, extended with structure sharing by [`PolicyIndex::extend`].
#[derive(Debug, Clone)]
pub(crate) struct PolicyIndex {
    keys: KeyStore,
    tags: TagTable,
    /// Sorted by key bytes.  Probes go through `lookup`; the sort order
    /// drives the incremental merge in [`PolicyIndex::extend`] and the
    /// debug-assertion binary-search oracle in [`PolicyIndex::probe`].
    prefixes: Vec<PrefixEntry>,
    /// O(1) exact-key accelerator over `prefixes`.
    lookup: KeyLookup,
    /// First-segment filter over `prefixes` keys (whole-frame probe skip).
    roots: RootFilter,
    methods: Vec<MethodRule>,
    verbatim: Vec<VerbatimRule>,
    /// Minimum-index deny `class` rule whose normalized target is empty
    /// (matches only frames with an empty package *and* class).
    class_empty_deny: u32,
    class_empty_allow: bool,
    /// Count of allow rules of *any* matchability: presence alone switches
    /// the set into whitelist mode, exactly like the linear buckets.
    allow_rules: u32,
}

impl Default for PolicyIndex {
    fn default() -> Self {
        PolicyIndex {
            keys: KeyStore::default(),
            tags: TagTable::default(),
            prefixes: Vec::new(),
            lookup: KeyLookup::default(),
            roots: RootFilter::default(),
            methods: Vec::new(),
            verbatim: Vec::new(),
            class_empty_deny: NO_RULE,
            class_empty_allow: false,
            allow_rules: 0,
        }
    }
}

impl PolicyIndex {
    /// Build the tables from scratch.  `rules` yields `(rule index, action,
    /// matcher)` in policy order; indexes must fit `u32`.
    pub(crate) fn build<'m>(
        rules: impl IntoIterator<Item = (u32, PolicyAction, &'m CompiledMatcher)>,
    ) -> Self {
        let c = Classified::from_rules(rules);

        let mut blob = BlobBuilder::default();
        let mut methods: Vec<MethodRule> = Vec::new();
        let mut prefixes: Vec<PrefixEntry> = Vec::with_capacity(c.map.len());
        // BTreeMap iteration order is byte-lexicographic — exactly the sort
        // order the merge and the debug binary-search oracle expect.
        let mut lookup = KeyLookup::with_capacity(c.map.len());
        let mut roots = RootFilter::default();
        for (key, agg) in &c.map {
            let key_ref = blob.intern(key);
            let hash = hash_bytes(key.as_bytes());
            let head = push_chain(&mut methods, NO_RULE, &agg.methods, |s| blob.intern_opt(s));
            lookup.insert(hash, prefixes.len() as u32);
            roots.insert_root_of(key);
            prefixes.push(PrefixEntry {
                key: key_ref,
                hash,
                deny_lib: agg.deny_lib,
                deny_class: agg.deny_class,
                method_head: head,
                allow_lib: agg.allow_lib,
                allow_class: agg.allow_class,
            });
        }
        let verbatim = c
            .verbatim
            .iter()
            .map(|&(policy, allow, target)| VerbatimRule {
                policy,
                target: blob.intern(target),
                allow,
            })
            .collect();
        let mut tags = TagTable::default();
        for &(tag, policy, allow) in &c.tags {
            tags.insert(tag, if allow { NO_RULE } else { policy }, allow);
        }
        PolicyIndex {
            keys: blob.finish(),
            tags,
            prefixes,
            lookup,
            roots,
            methods,
            verbatim,
            class_empty_deny: c.class_empty_deny,
            class_empty_allow: c.class_empty_allow,
            allow_rules: c.allow_rules,
        }
    }

    /// Clone the tables and fold in `rules` (appended policies, so every
    /// rule index exceeds all existing ones).  Cost is proportional to the
    /// table *sizes* (POD row copies + `Arc` bumps), not to recompiling the
    /// rules they encode; new keys land in the spill list and are merged
    /// into the sorted array in one pass.
    pub(crate) fn extend<'m>(
        &self,
        rules: impl IntoIterator<Item = (u32, PolicyAction, &'m CompiledMatcher)>,
    ) -> Self {
        let c = Classified::from_rules(rules);

        let mut keys = self.keys.clone();
        let mut methods = self.methods.clone();
        let mut tags = self.tags.clone();
        let mut verbatim = self.verbatim.clone();

        for &(tag, policy, allow) in &c.tags {
            tags.insert(tag, if allow { NO_RULE } else { policy }, allow);
        }
        for &(policy, allow, target) in &c.verbatim {
            let target = keys.spill(target);
            verbatim.push(VerbatimRule {
                policy,
                target,
                allow,
            });
        }

        // Single merge pass over (sorted base array, sorted delta map).
        let mut merged: Vec<PrefixEntry> = Vec::with_capacity(self.prefixes.len() + c.map.len());
        let mut base = self.prefixes.iter().peekable();
        let mut delta = c.map.iter().peekable();
        loop {
            let order = match (base.peek(), delta.peek()) {
                (None, None) => break,
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (Some(b), Some((k, _))) => self.keys.resolve(b.key).as_bytes().cmp(k.as_bytes()),
            };
            match order {
                Ordering::Less => merged.push(*base.next().expect("peeked")),
                Ordering::Greater => {
                    let (key, agg) = delta.next().expect("peeked");
                    let key_ref = keys.spill(key);
                    let head =
                        push_chain(&mut methods, NO_RULE, &agg.methods, |s| keys.spill_opt(s));
                    merged.push(PrefixEntry {
                        key: key_ref,
                        hash: hash_bytes(key.as_bytes()),
                        deny_lib: agg.deny_lib,
                        deny_class: agg.deny_class,
                        method_head: head,
                        allow_lib: agg.allow_lib,
                        allow_class: agg.allow_class,
                    });
                }
                Ordering::Equal => {
                    let mut row = *base.next().expect("peeked");
                    let (_, agg) = delta.next().expect("peeked");
                    // Appended rule indexes all exceed existing ones, so the
                    // existing minima win ties by construction; `min` keeps
                    // that explicit.
                    row.deny_lib = row.deny_lib.min(agg.deny_lib);
                    row.deny_class = row.deny_class.min(agg.deny_class);
                    row.allow_lib |= agg.allow_lib;
                    row.allow_class |= agg.allow_class;
                    row.method_head =
                        push_chain(&mut methods, row.method_head, &agg.methods, |s| {
                            keys.spill_opt(s)
                        });
                    merged.push(row);
                }
            }
        }

        // The accelerator addresses rows by array position, which the merge
        // shifted; rebuilding it is hash-free row inserts (the rows carry
        // their key hashes), same O(keys) order as the merge itself.  The
        // root filter only grows: clone and fold in the delta's roots.
        let mut lookup = KeyLookup::with_capacity(merged.len());
        for (i, row) in merged.iter().enumerate() {
            lookup.insert(row.hash, i as u32);
        }
        let mut roots = self.roots.clone();
        for key in c.map.keys() {
            roots.insert_root_of(key);
        }

        PolicyIndex {
            keys,
            tags,
            prefixes: merged,
            lookup,
            roots,
            methods,
            verbatim,
            class_empty_deny: self.class_empty_deny.min(c.class_empty_deny),
            class_empty_allow: self.class_empty_allow || c.class_empty_allow,
            allow_rules: self.allow_rules + c.allow_rules,
        }
    }

    /// Hash-level lookup: `(minimum deny rule or NO_RULE, any allow rule)`.
    pub(crate) fn tag_lookup(&self, tag: u64) -> (u32, bool) {
        self.tags.lookup(tag)
    }

    /// Count of allow rules (any matchability): non-zero switches the set
    /// into whitelist mode.
    pub(crate) fn allow_rule_count(&self) -> u32 {
        self.allow_rules
    }

    /// Exact-key probe: hash the first `upto` bytes of `v` once, land on
    /// the row through the open-addressed accelerator, confirm byte-exactly.
    /// O(1) in the key count; debug builds cross-check against a binary
    /// search of the sorted table.
    fn probe(&self, v: &VBytes<'_>, upto: usize) -> Option<&PrefixEntry> {
        let found = self.lookup.find(v.hash_prefix(upto), |index| {
            let key = self.keys.resolve(self.prefixes[index as usize].key);
            v.cmp_prefix(upto, key.as_bytes()) == Ordering::Equal
        });
        debug_assert_eq!(
            found.map(|i| i as usize),
            self.prefixes
                .binary_search_by(|row| {
                    v.cmp_prefix(upto, self.keys.resolve(row.key).as_bytes())
                        .reverse()
                })
                .ok(),
            "hashed probe disagrees with the sorted-table oracle"
        );
        found.map(|i| &self.prefixes[i as usize])
    }

    /// Minimum-index deny rule matching `sig`, or `NO_RULE`.
    ///
    /// Probes exactly the candidate targets that can match the frame: every
    /// package segment boundary (library and class roles), the full package,
    /// the qualified class, the `class/method` descriptor head, the
    /// empty-class scalar and the verbatim residue.
    pub(crate) fn frame_deny_min(&self, sig: &MethodSignature) -> u32 {
        let mut best = NO_RULE;
        let pkg = sig.package();
        let pb = pkg.as_bytes();
        let class = sig.class_name();

        // Every probe below targets a `/`-boundary prefix of the frame's
        // virtual `pkg/Class/method` string, so every key that could match
        // shares that string's first segment: one root-filter miss (the
        // common case — frames in namespaces no rule names) skips the whole
        // cascade without touching the big tables.
        let mk = VBytes::method_key(pkg, class, sig.method_name());
        if !self.prefixes.is_empty() && self.roots.contains(mk.hash_prefix(mk.first_segment_len()))
        {
            // Package boundary prefixes: candidates for both library rules
            // (`segment_prefix`) and class rules (package-region prefixes).
            for p in 1..pb.len() {
                if pb[p] == b'/' {
                    if let Some(row) = self.probe(&VBytes::single(&pb[..p]), p) {
                        best = best.min(row.deny_lib).min(row.deny_class);
                    }
                }
            }
            if !pb.is_empty() {
                if let Some(row) = self.probe(&VBytes::single(pb), pb.len()) {
                    best = best.min(row.deny_lib).min(row.deny_class);
                }
            }
            // Qualified-class probe (class rules only: a library prefix equal
            // to the full qualified class cannot satisfy `segment_prefix`
            // against the package).
            let qc = VBytes::qualified(pkg, class);
            let qc_len = qc.len();
            if qc_len > 0 {
                if let Some(row) = self.probe(&qc, qc_len) {
                    best = best.min(row.deny_class);
                }
            }
            // Descriptor-head probe.
            if let Some(row) = self.probe(&mk, mk.len()) {
                let mut cursor = row.method_head;
                while cursor != NO_RULE {
                    let rule = self.methods[cursor as usize];
                    cursor = rule.next;
                    if rule.allow || rule.class_len as usize != qc_len {
                        continue;
                    }
                    if self.method_constraints_match(&rule, sig) {
                        best = best.min(rule.policy);
                    }
                }
            }
        }
        if pb.is_empty() && class.is_empty() {
            best = best.min(self.class_empty_deny);
        }
        for rule in &self.verbatim {
            if !rule.allow
                && rule.policy < best
                && sig.matches_target(EnforcementLevel::Method, self.keys.resolve(rule.target))
            {
                best = rule.policy;
            }
        }
        best
    }

    fn method_constraints_match(&self, rule: &MethodRule, sig: &MethodSignature) -> bool {
        match (
            self.keys.resolve_opt(rule.params),
            self.keys.resolve_opt(rule.ret),
        ) {
            (None, _) => true,
            (Some(p), None) => sig.params() == p,
            (Some(p), Some(r)) => sig.params() == p && sig.return_type() == r,
        }
    }

    /// Whether the whitelist stack pass must run on the linear oracle: the
    /// boundary-prefix folds below assume class names contain no `/` (true
    /// for every parsed signature; only hand-built ones can violate it).
    pub(crate) fn frames_need_linear_allow<'s, F>(frame_count: usize, frame: &F) -> bool
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        (0..frame_count).any(|i| frame(i).class_name().contains('/'))
    }

    /// Whitelist quantification over the stack: true iff some non-hash allow
    /// rule is matched by **every** frame.  Callers guarantee
    /// `frame_count > 0` and no frame has a `/` in its class name.
    pub(crate) fn stack_allowed<'s, F>(&self, frame_count: usize, frame: &F) -> bool
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        debug_assert!(frame_count > 0);
        if !self.prefixes.is_empty()
            && (self.lib_allow_satisfied(frame_count, frame)
                || self.class_allow_satisfied(frame_count, frame)
                || self.method_allow_satisfied(frame_count, frame))
        {
            return true;
        }
        if self.class_empty_allow
            && (0..frame_count).all(|i| {
                let s = frame(i);
                s.package().is_empty() && s.class_name().is_empty()
            })
        {
            return true;
        }
        self.verbatim.iter().any(|rule| {
            rule.allow && {
                let target = self.keys.resolve(rule.target);
                (0..frame_count).all(|i| frame(i).matches_target(EnforcementLevel::Method, target))
            }
        })
    }

    /// A library allow rule is matched by every frame iff its target is a
    /// segment prefix of **every** package — equivalently, of the longest
    /// common boundary prefix of all packages (the segment prefixes of one
    /// string form a chain, so the intersection across frames is the chain
    /// of the longest common one).
    fn lib_allow_satisfied<'s, F>(&self, frame_count: usize, frame: &F) -> bool
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        let first = frame(0).package().as_bytes();
        // Every probed key is a `/`-boundary prefix of frame 0's package
        // and so shares its first segment; a root-filter miss ends the pass.
        let root = first.iter().position(|&b| b == b'/').unwrap_or(first.len());
        if !self.roots.contains(hash_bytes(&first[..root])) {
            return false;
        }
        let mut m = first.len();
        for i in 1..frame_count {
            m = common_boundary(first, m, frame(i).package().as_bytes());
            if m == 0 {
                return false;
            }
        }
        if m == 0 {
            return false;
        }
        for p in 1..m {
            if first[p] == b'/' {
                if let Some(row) = self.probe(&VBytes::single(&first[..p]), p) {
                    if row.allow_lib {
                        return true;
                    }
                }
            }
        }
        self.probe(&VBytes::single(&first[..m]), m)
            .is_some_and(|row| row.allow_lib)
    }

    /// Same chain argument over virtual qualified-class strings (valid
    /// because class names contain no `/`, checked by the caller).
    fn class_allow_satisfied<'s, F>(&self, frame_count: usize, frame: &F) -> bool
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        let f0 = frame(0);
        let first = VBytes::qualified(f0.package(), f0.class_name());
        // Same first-segment gate as the library pass, over the virtual
        // qualified class: any boundary prefix of `first` shares its root.
        if !self
            .roots
            .contains(first.hash_prefix(first.first_segment_len()))
        {
            return false;
        }
        let mut m = first.len();
        for i in 1..frame_count {
            let fi = frame(i);
            let other = VBytes::qualified(fi.package(), fi.class_name());
            m = common_boundary_v(&first, m, &other);
            if m == 0 {
                return false;
            }
        }
        if m == 0 {
            return false;
        }
        for p in 1..m {
            if first.byte(p) == b'/' {
                if let Some(row) = self.probe(&first, p) {
                    if row.allow_class {
                        return true;
                    }
                }
            }
        }
        self.probe(&first, m).is_some_and(|row| row.allow_class)
    }

    /// A descriptor-level allow rule pins the qualified class and method
    /// name, so it can only be matched by every frame when all frames share
    /// them; parameter/return constraints are then checked per frame.
    fn method_allow_satisfied<'s, F>(&self, frame_count: usize, frame: &F) -> bool
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        let f0 = frame(0);
        let first = VBytes::qualified(f0.package(), f0.class_name());
        let qc_len = first.len();
        for i in 1..frame_count {
            let fi = frame(i);
            if fi.method_name() != f0.method_name() {
                return false;
            }
            let other = VBytes::qualified(fi.package(), fi.class_name());
            if !vbytes_eq(&first, &other) {
                return false;
            }
        }
        let mk = VBytes::method_key(f0.package(), f0.class_name(), f0.method_name());
        if !self.roots.contains(mk.hash_prefix(mk.first_segment_len())) {
            return false;
        }
        let Some(row) = self.probe(&mk, mk.len()) else {
            return false;
        };
        let mut cursor = row.method_head;
        while cursor != NO_RULE {
            let rule = self.methods[cursor as usize];
            cursor = rule.next;
            if !rule.allow || rule.class_len as usize != qc_len {
                continue;
            }
            if (0..frame_count).all(|i| self.method_constraints_match(&rule, frame(i))) {
                return true;
            }
        }
        false
    }
}

/// Largest `p ≤ lcp(a[..upto], b)` such that `a[..p]` ends on a segment
/// boundary of both sides; position validity is `p == end || byte(p) == '/'`.
/// By the fold invariant `a[..upto]` is a valid boundary prefix of every
/// string folded so far, so the result stays one for `b` as well.
fn common_boundary(a: &[u8], upto: usize, b: &[u8]) -> usize {
    let max = upto.min(b.len());
    let mut l = 0;
    while l < max && a[l] == b[l] {
        l += 1;
    }
    let mut p = l;
    loop {
        let va = p == upto || a[p] == b'/';
        let vb = p == b.len() || b[p] == b'/';
        if va && vb {
            return p;
        }
        if p == 0 {
            return 0;
        }
        p -= 1;
    }
}

/// [`common_boundary`] over virtual strings.
fn common_boundary_v(a: &VBytes<'_>, upto: usize, b: &VBytes<'_>) -> usize {
    let b_len = b.len();
    let max = upto.min(b_len);
    let mut l = 0;
    while l < max && a.byte(l) == b.byte(l) {
        l += 1;
    }
    let mut p = l;
    loop {
        let va = p == upto || a.byte(p) == b'/';
        let vb = p == b_len || b.byte(p) == b'/';
        if va && vb {
            return p;
        }
        if p == 0 {
            return 0;
        }
        p -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_table_takes_minimum_on_duplicate_insert() {
        let mut table = TagTable::default();
        table.insert(42, 7, false);
        table.insert(42, 3, false);
        table.insert(42, NO_RULE, true);
        assert_eq!(table.lookup(42), (3, true));
        assert_eq!(table.lookup(43), (NO_RULE, false));
    }

    #[test]
    fn tag_table_survives_growth() {
        let mut table = TagTable::default();
        for tag in 0..1000u64 {
            table.insert(tag, tag as u32, tag % 3 == 0);
        }
        for tag in 0..1000u64 {
            assert_eq!(table.lookup(tag), (tag as u32, tag % 3 == 0));
        }
        assert_eq!(table.lookup(1000), (NO_RULE, false));
    }

    #[test]
    fn common_boundary_respects_segment_edges() {
        // Shared bytes "com/fl…" but the segment boundary is "com".
        assert_eq!(common_boundary(b"com/flurry", 10, b"com/flower"), 3);
        assert_eq!(common_boundary(b"com/flurry", 10, b"com/flurry"), 10);
        assert_eq!(common_boundary(b"com/flurry", 10, b"com/flurry/sdk"), 10);
        assert_eq!(common_boundary(b"com/flurry", 3, b"com/flurry"), 3);
        assert_eq!(common_boundary(b"com", 3, b"org"), 0);
        assert_eq!(common_boundary(b"", 0, b"com"), 0);
    }

    #[test]
    fn vbytes_compare_and_index_span_parts() {
        let v = VBytes::method_key("com/example", "Main", "run");
        assert_eq!(v.len(), "com/example/Main/run".len());
        let rendered: Vec<u8> = (0..v.len()).map(|i| v.byte(i)).collect();
        assert_eq!(rendered, b"com/example/Main/run");
        assert_eq!(
            v.cmp_prefix(v.len(), b"com/example/Main/run"),
            Ordering::Equal
        );
        assert_eq!(v.cmp_prefix(11, b"com/example"), Ordering::Equal);
        assert_eq!(v.cmp_prefix(11, b"com/examplf"), Ordering::Less);
        assert_eq!(v.cmp_prefix(11, b"com/exampl"), Ordering::Greater);
    }

    #[test]
    fn vbytes_hash_matches_materialized_bytes() {
        let v = VBytes::method_key("com/example", "Main", "run");
        for upto in 0..=v.len() {
            let rendered: Vec<u8> = (0..upto).map(|i| v.byte(i)).collect();
            assert_eq!(v.hash_prefix(upto), hash_bytes(&rendered));
        }
        assert_eq!(v.first_segment_len(), 3);
        assert_eq!(VBytes::single(b"plain").first_segment_len(), 5);
        assert_eq!(VBytes::qualified("", "Main").first_segment_len(), 4);
    }

    #[test]
    fn key_lookup_resolves_every_inserted_key() {
        let keys = ["a", "com", "com/flurry", "com/flurry/sdk", "org/x"];
        let mut lookup = KeyLookup::with_capacity(keys.len());
        for (i, key) in keys.iter().enumerate() {
            lookup.insert(hash_bytes(key.as_bytes()), i as u32);
        }
        for (i, key) in keys.iter().enumerate() {
            let found = lookup.find(hash_bytes(key.as_bytes()), |index| {
                keys[index as usize] == *key
            });
            assert_eq!(found, Some(i as u32));
        }
        assert_eq!(lookup.find(hash_bytes(b"com/flower"), |_| true), None);
    }

    #[test]
    fn root_filter_deduplicates_and_survives_growth() {
        let mut roots = RootFilter::default();
        for i in 0..100u64 {
            roots.insert(i);
            roots.insert(i);
        }
        for i in 0..100u64 {
            assert!(roots.contains(i));
        }
        assert!(!roots.contains(1000));
        // 0 remaps onto 1's slot value, so 0..100 stores 99 distinct hashes.
        assert_eq!(roots.used, 99);

        let mut by_key = RootFilter::default();
        by_key.insert_root_of("com/flurry/sdk");
        by_key.insert_root_of("org");
        assert!(by_key.contains(hash_bytes(b"com")));
        assert!(by_key.contains(hash_bytes(b"org")));
        assert!(!by_key.contains(hash_bytes(b"net")));
    }
}
