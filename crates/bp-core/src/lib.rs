//! BorderPatrol core: the paper's primary contribution.
//!
//! BorderPatrol augments the network traffic of BYOD-provisioned devices with
//! fine-grained execution context (the Java call stack at socket-connect time)
//! and enforces company policies against that context at the network
//! perimeter.  This crate implements the four system components of §IV plus
//! the policy extractor extension of §V-E:
//!
//! * [`offline`] — the **Offline Analyzer**: extracts every method signature
//!   from an apk, assigns deterministic indexes and stores the per-app tables
//!   in a JSON [`offline::SignatureDatabase`] keyed by the apk's MD5 hash.
//! * [`encoding`] — the compact wire format that fits an app tag plus a stack
//!   of method indexes into the 40-byte `IP_OPTIONS` budget, with the 2-byte /
//!   3-byte variable-length frame encoding for multi-dex apps (§VII).
//! * [`context`] — the **Context Manager**: an on-device hook that captures the
//!   call stack after connect, maps frames to indexes through the same
//!   deterministic table and injects the encoded context into `IP_OPTIONS`.
//! * [`policy`] — the policy grammar `{[action][level][target]}` and the
//!   evaluation semantics over decoded stack traces.
//! * [`enforcer`] — the **Policy Enforcer**: an NFQUEUE consumer that extracts,
//!   decodes and evaluates the context of every packet and drops violations.
//! * [`control`] — the transactional control plane: staged policy/database
//!   rollout with dry-run validation, atomic hot-swap of every registered
//!   enforcement endpoint, and generation-based rollback.
//! * [`flow`] — connection tracking for the enforcer: a bounded per-shard
//!   flow table caching verdicts per (flow, context payload, tables epoch),
//!   so the packets of a long-lived flow skip decode/resolve/evaluate.
//! * [`runtime`] — the data-plane worker runtime: a persistent per-shard
//!   worker pool fed through bounded SPSC rings, replacing the
//!   spawn-per-batch model so small batches cost a wake/park handshake
//!   instead of OS thread creation.  A panicked partition fails closed and
//!   the worker is respawned under a bounded backoff budget; shards that
//!   exhaust the budget are quarantined to the inline path.
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`],
//!   [`faults::FaultInjector`]) and the per-shard health state machine
//!   (Healthy → Degraded → Quarantined) chaos runs exercise.
//! * [`sanitizer`] — the **Packet Sanitizer**: strips the context option from
//!   conforming packets before they leave the enterprise perimeter.
//! * [`telemetry`] — the seqlock-published per-shard telemetry snapshot the
//!   observability plane (`bp-obs`) polls: the hot path stamps a sequence
//!   word around plain relaxed stores, readers retry on torn reads, and the
//!   writer never takes a lock or blocks.
//! * [`policy_extractor`] — the differential profiling tool that helps
//!   administrators derive policies from a baseline run and an
//!   undesired-functionality run.
//!
//! # Examples
//!
//! ```
//! use bp_core::policy::{Policy, PolicyAction, PolicySet};
//! use bp_types::EnforcementLevel;
//!
//! // Paper Snippet 1, Example 1: prevent ad library connections.
//! let policy: Policy = r#"{[deny][library]["com/flurry"]}"#.parse()?;
//! assert_eq!(policy.action(), PolicyAction::Deny);
//! assert_eq!(policy.level(), EnforcementLevel::Library);
//! let set = PolicySet::from_policies(vec![policy]);
//! assert_eq!(set.len(), 1);
//! # Ok::<(), bp_types::Error>(())
//! ```

// `unsafe` is denied crate-wide rather than forbidden: the data-plane worker
// runtime ([`runtime`]) opts back in for one audited borrowed-batch handoff
// protocol (see its module docs); every other module remains unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod control;
pub mod encoding;
pub mod enforcer;
pub mod faults;
pub mod flow;
pub mod offline;
pub mod policy;
pub mod policy_extractor;
mod policy_index;
pub mod runtime;
pub mod sanitizer;
pub mod telemetry;
pub mod wire;

pub use context::{ContextManager, ContextManagerConfig, ContextManagerStats};
pub use control::{
    ControlPlane, EnforcementEndpoint, GenerationId, GenerationRecord, RolloutError, RolloutPlan,
    RolloutValidation, RolloutWarning, Transaction,
};
pub use encoding::{ContextEncoding, DecodedHeader, EncodedContext, MAX_CONTEXT_PAYLOAD};
pub use enforcer::{
    AtomicEnforcerStats, DropLog, DropReason, EnforcementTables, EnforcerConfig, EnforcerStats,
    PolicyDelta, PolicyEnforcer, PolicyReuse, ShardedEnforcer, TableReuse, WireDropStats,
    OVERLOAD_DROP_REASON, RUNTIME_FAULT_DROP_REASON,
};
pub use faults::{
    FaultInjector, FaultPlan, HealthState, ShardHealthSnapshot, WorkerPanic, WorkerStall,
};
pub use flow::{CachedOutcome, FlowProbe, FlowTable, FlowTableConfig};
pub use offline::{
    CompiledAppEntry, CompiledSignatureDb, OfflineAnalyzer, SignatureDatabase, TagCollision,
};
pub use policy::{CompiledPolicySet, CompiledVerdict, Decision, Policy, PolicyAction, PolicySet};
pub use policy_extractor::{PolicyExtractor, ProfileRun};
pub use runtime::BatchRuntime;
pub use sanitizer::PacketSanitizer;
pub use telemetry::{GenerationCounters, TelemetryCell, TelemetrySnapshot, GENERATION_SLOTS};
pub use wire::{CaptureHeader, CaptureReader, CaptureWriter, WireDecoder, WireError};
