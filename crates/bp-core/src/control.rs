//! The transactional control plane (§IV "Reconfigurability", Poise-style
//! centralized policy installation).
//!
//! The paper's deployment story assumes an operator continuously pushing
//! updated policies and signature databases to in-network enforcers.  This
//! module is that operator-facing surface: a [`ControlPlane`] owns the
//! **authoritative** interchange state — the [`PolicySet`], the
//! [`SignatureDatabase`] and the [`EnforcerConfig`] — and every mutation is
//! staged through a [`Transaction`]:
//!
//! ```text
//! control.begin()                      // stage
//!     .add_policy(..)                  //   add / remove / replace policies
//!     .swap_database(..)               //   swap the signature database
//!     .configure(..)                   //   tweak the enforcer config
//!     .validate()  → RolloutValidation // dry-run: errors + warnings
//!     .diff()      → RolloutPlan       // typed description of the change
//!     .commit()    → GenerationId      // build tables ONCE, install everywhere
//! control.rollback(generation)         // restore a retained previous build
//! ```
//!
//! [`Transaction::commit`] compiles one fresh [`EnforcementTables`] build —
//! bumping the flow-cache epoch **exactly once** no matter how many pieces of
//! state the transaction touches — and atomically hot-swaps every registered
//! [`EnforcementEndpoint`] ([`ShardedEnforcer`] and
//! `Mutex<`[`PolicyEnforcer`]`>` both implement it).  Each commit is retained
//! as a [`GenerationRecord`]; [`ControlPlane::rollback`] re-installs a
//! retained build **without recompiling**, so flow-table entries cached under
//! that generation's epoch become servable again — rolling back is
//! behaviourally equivalent to never having committed.
//!
//! Transactions are the **only** mutation surface.  The legacy one-shot
//! mutators (`set_policies` / `set_database` / `set_tables`) are gone: each
//! was equivalent to a transaction touching a single piece of state, and
//! paired calls rebuilt the tables twice — exactly the waste a single
//! commit avoids.  Tests and embedders that want a direct swap go through a
//! one-transaction control plane, same as production.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use bp_types::{AppTag, MethodSignature};

use crate::enforcer::{
    EnforcementTables, EnforcerConfig, PolicyDelta, PolicyEnforcer, PolicyReuse, ShardedEnforcer,
};
use crate::faults::FaultInjector;
use crate::offline::{SignatureDatabase, TagCollision};
use crate::policy::{Policy, PolicySet};

/// Number of previous generations a [`ControlPlane`] retains for rollback by
/// default.
pub const DEFAULT_RETAIN: usize = 8;

/// Identifier of one committed control-plane generation.
///
/// Strictly increasing per [`ControlPlane`]: every successful
/// [`Transaction::commit`] that rebuilds the tables mints a fresh id.  A
/// rollback makes a *previous* id current again without minting a new one —
/// the generation is the identity of the build, not of the installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenerationId(u64);

impl GenerationId {
    /// The numeric form of the generation.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstruct an id from its numeric form (e.g. one persisted by an
    /// operator console); whether it names a retained generation is checked
    /// by [`ControlPlane::rollback`].
    pub fn from_u64(id: u64) -> Self {
        GenerationId(id)
    }
}

impl fmt::Display for GenerationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One retained control-plane build: the compiled tables plus the interchange
/// state they were compiled from.
///
/// Records are handed to [`EnforcementEndpoint::install`] on commit and
/// rollback, and kept (bounded by the retention depth) so
/// [`ControlPlane::rollback`] can restore them without recompiling.
#[derive(Debug, Clone)]
pub struct GenerationRecord {
    id: GenerationId,
    tables: Arc<EnforcementTables>,
    database: SignatureDatabase,
    policies: PolicySet,
}

impl GenerationRecord {
    /// The generation this build was committed as.
    pub fn id(&self) -> GenerationId {
        self.id
    }

    /// The compiled tables of this generation (shared, epoch-stamped).
    pub fn tables(&self) -> Arc<EnforcementTables> {
        Arc::clone(&self.tables)
    }

    /// The signature database this generation was compiled from.
    pub fn database(&self) -> &SignatureDatabase {
        &self.database
    }

    /// The policy set this generation was compiled from.
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    /// The enforcer configuration of this generation (carried by the
    /// compiled tables, so record and tables can never disagree).
    pub fn config(&self) -> EnforcerConfig {
        self.tables.config()
    }
}

/// A data-plane attachment point the control plane hot-swaps on commit and
/// rollback.
///
/// Implementations must adopt the new build **atomically with respect to
/// their own inspection path**: once [`EnforcementEndpoint::install`]
/// returns, every subsequently inspected packet must be evaluated under the
/// installed generation (the sharded enforcer's generation counter and the
/// single-shard facade's table swap both guarantee this).
pub trait EnforcementEndpoint: Send + Sync {
    /// A short name for diagnostics.
    fn endpoint_name(&self) -> &str;

    /// Atomically adopt `rollout`'s build.
    fn install(&self, rollout: &GenerationRecord);
}

impl EnforcementEndpoint for ShardedEnforcer {
    fn endpoint_name(&self) -> &str {
        "sharded-policy-enforcer"
    }

    fn install(&self, rollout: &GenerationRecord) {
        self.install_tables(rollout.tables());
    }
}

impl EnforcementEndpoint for Mutex<PolicyEnforcer> {
    fn endpoint_name(&self) -> &str {
        "policy-enforcer"
    }

    fn install(&self, rollout: &GenerationRecord) {
        self.lock().adopt(
            rollout.database.clone(),
            rollout.policies.clone(),
            rollout.tables(),
        );
    }
}

/// A finding that aborts a commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutError {
    /// A policy staged as raw text failed to parse.
    UnparseablePolicy {
        /// The raw policy text.
        text: String,
        /// The parse failure.
        reason: String,
    },
    /// A rollback named a generation that is not retained (never committed,
    /// or already evicted by the retention bound).
    UnknownGeneration {
        /// The requested generation.
        requested: GenerationId,
    },
    /// A commit was rejected by validation; every blocking finding is
    /// enclosed.
    Rejected {
        /// The findings that blocked the commit.
        errors: Vec<RolloutError>,
    },
    /// A deterministic chaos plan failed this commit attempt
    /// ([`FaultPlan::fail_commits`](crate::faults::FaultPlan)): the control
    /// plane and every endpoint are left untouched, exactly as on a real
    /// rejected rollout.
    FaultInjected {
        /// Which commit attempt (0-based, counted across the control
        /// plane's lifetime) the plan failed.
        ordinal: u64,
    },
}

impl fmt::Display for RolloutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutError::UnparseablePolicy { text, reason } => {
                write!(f, "unparseable policy {text:?}: {reason}")
            }
            RolloutError::UnknownGeneration { requested } => {
                write!(f, "generation {requested} is not retained for rollback")
            }
            RolloutError::Rejected { errors } => {
                write!(f, "rollout rejected by {} finding(s): ", errors.len())?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            RolloutError::FaultInjected { ordinal } => {
                write!(f, "fault plan failed commit attempt {ordinal}")
            }
        }
    }
}

impl std::error::Error for RolloutError {}

impl From<RolloutError> for bp_types::Error {
    fn from(e: RolloutError) -> Self {
        bp_types::Error::malformed("policy rollout", e.to_string())
    }
}

/// A non-blocking validation finding: the commit proceeds, but the operator
/// should know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutWarning {
    /// The staged signature database carries a truncated-tag collision
    /// (paper §VII): the rejected app's packets will resolve against the
    /// kept app's tables.
    TagCollision(TagCollision),
    /// A staged policy's target matches nothing in the staged database — the
    /// rule is dead weight (likely a typo, or the matching app was removed).
    DeadTarget {
        /// Display form of the dead policy.
        policy: String,
    },
}

impl fmt::Display for RolloutWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutWarning::TagCollision(c) => write!(
                f,
                "tag collision on {}: {} rejected in favour of apk {}",
                c.tag, c.rejected_package, c.existing_apk_hash
            ),
            RolloutWarning::DeadTarget { policy } => {
                write!(f, "policy {policy} matches nothing in the database")
            }
        }
    }
}

/// The outcome of a dry-run [`Transaction::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RolloutValidation {
    /// Blocking findings; a non-empty list makes [`Transaction::commit`]
    /// fail with [`RolloutError::Rejected`].
    pub errors: Vec<RolloutError>,
    /// Non-blocking findings.
    pub warnings: Vec<RolloutWarning>,
}

impl RolloutValidation {
    /// True if the staged transaction would commit (warnings permitted).
    pub fn is_deployable(&self) -> bool {
        self.errors.is_empty()
    }
}

/// The typed dry-run description of what a [`Transaction`] would change —
/// the artifact an operator reviews before committing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutPlan {
    /// The generation the plan diffs against.
    pub from_generation: GenerationId,
    /// Display forms of the policies the commit would add.
    pub policies_added: Vec<String>,
    /// Display forms of the policies the commit would remove.
    pub policies_removed: Vec<String>,
    /// Total parseable policies after the commit.
    pub policy_count: usize,
    /// Package names of applications the staged database adds.
    pub apps_added: Vec<String>,
    /// Package names of applications the staged database removes.
    pub apps_removed: Vec<String>,
    /// Total applications in the staged database.
    pub app_count: usize,
    /// The configuration change, as `(current, staged)`, if any.
    pub config_change: Option<(EnforcerConfig, EnforcerConfig)>,
    /// Whether committing would compile fresh tables (and therefore bump the
    /// flow-cache epoch, exactly once).  `false` means the commit is a no-op
    /// that returns the current generation without invalidating anything.
    pub rebuilds_tables: bool,
    /// The validation findings (same as [`Transaction::validate`]).
    pub validation: RolloutValidation,
}

impl fmt::Display for RolloutPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rollout plan (from {}):", self.from_generation)?;
        for p in &self.policies_added {
            writeln!(f, "  + policy {p}")?;
        }
        for p in &self.policies_removed {
            writeln!(f, "  - policy {p}")?;
        }
        for a in &self.apps_added {
            writeln!(f, "  + app {a}")?;
        }
        for a in &self.apps_removed {
            writeln!(f, "  - app {a}")?;
        }
        if let Some((from, to)) = &self.config_change {
            writeln!(f, "  ~ config {from:?} -> {to:?}")?;
        }
        for e in &self.validation.errors {
            writeln!(f, "  ! error: {e}")?;
        }
        for w in &self.validation.warnings {
            writeln!(f, "  ? warning: {w}")?;
        }
        writeln!(
            f,
            "  = {} policies, {} apps, {}",
            self.policy_count,
            self.app_count,
            if self.rebuilds_tables {
                "one table rebuild (one epoch bump)"
            } else {
                "no change (no rebuild)"
            }
        )
    }
}

/// The control plane: authoritative enforcement state, registered data-plane
/// endpoints, and the retained generation history.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bp_core::control::{ControlPlane, EnforcementEndpoint};
/// use bp_core::enforcer::{EnforcerConfig, ShardedEnforcer};
/// use bp_core::offline::SignatureDatabase;
/// use bp_core::policy::{Policy, PolicySet};
/// use bp_types::EnforcementLevel;
///
/// let mut control = ControlPlane::new(
///     SignatureDatabase::new(),
///     PolicySet::new(),
///     EnforcerConfig::default(),
/// );
/// let enforcer = Arc::new(ShardedEnforcer::new(control.tables(), 4));
/// control.register(Arc::clone(&enforcer) as Arc<dyn EnforcementEndpoint>);
///
/// let first = control.generation();
/// let next = control
///     .begin()
///     .add_policy(Policy::deny(EnforcementLevel::Library, "com/flurry"))
///     .commit()?;
/// assert!(next > first);
/// assert_eq!(enforcer.tables().epoch(), control.tables().epoch());
///
/// control.rollback(first)?;
/// assert_eq!(control.generation(), first);
/// # Ok::<(), bp_core::control::RolloutError>(())
/// ```
#[derive(Debug)]
pub struct ControlPlane {
    endpoints: Vec<Arc<dyn EnforcementEndpoint>>,
    /// The authoritative state: the installed generation's record (the
    /// interchange forms live only here and in the retained history).
    current: Arc<GenerationRecord>,
    /// Previous generations retained for rollback, oldest first.
    history: VecDeque<Arc<GenerationRecord>>,
    retain: usize,
    next_generation: u64,
    builds: u64,
    /// Commits whose compiled policy tables were shared or incrementally
    /// extended from the previous generation instead of rebuilt from scratch.
    policy_reuses: u64,
    /// Commits that shared the previous generation's compiled signature
    /// database instead of recompiling it.
    database_reuses: u64,
    /// Deterministic fault injector; when installed, scheduled commit
    /// attempts fail with [`RolloutError::FaultInjected`] before any state
    /// is touched.
    faults: Option<Arc<FaultInjector>>,
}

impl fmt::Debug for dyn EnforcementEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EnforcementEndpoint({})", self.endpoint_name())
    }
}

impl ControlPlane {
    /// A control plane owning `database` + `policies` + `config`, compiling
    /// the initial generation immediately (the default retention depth is
    /// [`DEFAULT_RETAIN`]).
    pub fn new(database: SignatureDatabase, policies: PolicySet, config: EnforcerConfig) -> Self {
        Self::with_retain(database, policies, config, DEFAULT_RETAIN)
    }

    /// Like [`ControlPlane::new`] with an explicit rollback retention depth
    /// (at least one previous generation is always retained).
    pub fn with_retain(
        database: SignatureDatabase,
        policies: PolicySet,
        config: EnforcerConfig,
        retain: usize,
    ) -> Self {
        let tables = EnforcementTables::shared(&database, &policies, config);
        let current = Arc::new(GenerationRecord {
            id: GenerationId(1),
            tables,
            database,
            policies,
        });
        ControlPlane {
            endpoints: Vec::new(),
            current,
            history: VecDeque::new(),
            retain: retain.max(1),
            next_generation: 1,
            builds: 1,
            policy_reuses: 0,
            database_reuses: 0,
            faults: None,
        }
    }

    /// Install a deterministic fault injector: commit attempts the plan
    /// schedules ([`FaultPlan::fail_commits`](crate::faults::FaultPlan))
    /// fail with [`RolloutError::FaultInjected`], leaving the control plane
    /// and every endpoint untouched.  Pass the same injector to the data
    /// plane so one plan drives the whole chaos run.
    pub fn install_faults(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    /// Register a data-plane endpoint and install the current generation on
    /// it immediately, so registration order cannot leave an endpoint on a
    /// build the control plane never issued.
    pub fn register(&mut self, endpoint: Arc<dyn EnforcementEndpoint>) {
        endpoint.install(&self.current);
        self.endpoints.push(endpoint);
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Begin staging a transaction against the current state.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction {
            plane: self,
            policy_ops: Vec::new(),
            database: None,
            config: None,
        }
    }

    /// Restore a retained previous generation: its compiled tables are
    /// re-installed at every endpoint **without recompiling** (the epoch is
    /// the one stamped when the generation was first built, so flow-table
    /// entries cached under it become servable again), and the authoritative
    /// interchange state reverts to that generation's.
    ///
    /// Returns the restored generation's id (now current again).
    ///
    /// # Errors
    ///
    /// [`RolloutError::UnknownGeneration`] if `generation` is neither current
    /// nor retained.
    pub fn rollback(&mut self, generation: GenerationId) -> Result<GenerationId, RolloutError> {
        if generation == self.current.id {
            return Ok(generation);
        }
        let Some(position) = self.history.iter().position(|r| r.id == generation) else {
            return Err(RolloutError::UnknownGeneration {
                requested: generation,
            });
        };
        let record = self.history.remove(position).expect("position just found");
        let previous = Arc::clone(&self.current);
        self.install(record);
        self.history.push_back(previous);
        self.trim_history();
        Ok(generation)
    }

    /// The current generation.
    pub fn generation(&self) -> GenerationId {
        self.current.id
    }

    /// The current generation's record.
    pub fn current(&self) -> &GenerationRecord {
        &self.current
    }

    /// The retained previous generations available to
    /// [`ControlPlane::rollback`], oldest first (the current generation is
    /// not listed).
    pub fn retained_generations(&self) -> Vec<GenerationId> {
        self.history.iter().map(|r| r.id).collect()
    }

    /// The currently installed compiled tables.
    pub fn tables(&self) -> Arc<EnforcementTables> {
        self.current.tables()
    }

    /// The authoritative signature database (the current generation's).
    pub fn database(&self) -> &SignatureDatabase {
        &self.current.database
    }

    /// The authoritative policy set (the current generation's).
    pub fn policies(&self) -> &PolicySet {
        &self.current.policies
    }

    /// The authoritative enforcer configuration (the current generation's).
    pub fn config(&self) -> EnforcerConfig {
        self.current.config()
    }

    /// Total [`EnforcementTables`] compilations this control plane has
    /// performed (each compilation bumps the flow-cache epoch exactly once).
    /// A committed transaction adds exactly one, no matter how many pieces of
    /// state it staged; a rollback adds zero.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Commits that reused the previous generation's compiled policy index —
    /// either shared outright (policies unchanged) or incrementally extended
    /// (an append-only delta compiled on top of the retained structure)
    /// instead of recompiling every rule from scratch.
    pub fn policy_index_reuses(&self) -> u64 {
        self.policy_reuses
    }

    /// Commits that shared the previous generation's compiled signature
    /// database instead of recompiling it.
    pub fn database_reuses(&self) -> u64 {
        self.database_reuses
    }

    /// Compile and install a fresh generation from the given state, reusing
    /// the previous generation's compiled artifacts where the staged delta
    /// permits (see [`EnforcementTables::next_generation`]).
    fn commit_state(
        &mut self,
        database: SignatureDatabase,
        database_changed: bool,
        policies: PolicySet,
        delta: PolicyDelta,
        config: EnforcerConfig,
    ) -> GenerationId {
        let (tables, reuse) = EnforcementTables::next_generation(
            &self.current.tables,
            &database,
            database_changed,
            &policies,
            delta,
            config,
        );
        match reuse.policy {
            PolicyReuse::Shared | PolicyReuse::Incremental { .. } => self.policy_reuses += 1,
            PolicyReuse::Full => {}
        }
        if reuse.database_reused {
            self.database_reuses += 1;
        }
        self.builds += 1;
        self.next_generation += 1;
        let record = Arc::new(GenerationRecord {
            id: GenerationId(self.next_generation),
            tables,
            database,
            policies,
        });
        let previous = Arc::clone(&self.current);
        self.install(record);
        self.history.push_back(previous);
        self.trim_history();
        self.current.id
    }

    /// Make `record` current: hot-swap every endpoint, then adopt it as the
    /// authoritative state.
    fn install(&mut self, record: Arc<GenerationRecord>) {
        for endpoint in &self.endpoints {
            endpoint.install(&record);
        }
        self.current = record;
    }

    fn trim_history(&mut self) {
        while self.history.len() > self.retain {
            self.history.pop_front();
        }
    }
}

/// One staged policy operation; operations apply strictly in the order they
/// were staged.
#[derive(Debug, Clone)]
enum PolicyOp {
    /// Append a typed policy.
    Add(Policy),
    /// Append a policy parsed from text at validation time.
    AddText(String),
    /// Remove every policy equal to the given one staged so far.
    Remove(Policy),
    /// Reset the staged set wholesale.
    Replace(PolicySet),
}

/// A staged, not-yet-committed change to the control plane's state.
///
/// Builder-style: staging methods consume and return the transaction, so
/// changes chain; [`Transaction::validate`] and [`Transaction::diff`] are
/// dry-runs, [`Transaction::commit`] applies.  Policy operations apply **in
/// call order**: `add_policy(p)` followed by `remove_policy(&p)` nets to no
/// `p`, and vice versa.  Dropping a transaction without committing discards
/// it.
#[derive(Debug)]
pub struct Transaction<'a> {
    plane: &'a mut ControlPlane,
    policy_ops: Vec<PolicyOp>,
    database: Option<SignatureDatabase>,
    config: Option<EnforcerConfig>,
}

impl Transaction<'_> {
    /// Stage an additional policy.
    pub fn add_policy(mut self, policy: Policy) -> Self {
        self.policy_ops.push(PolicyOp::Add(policy));
        self
    }

    /// Stage an additional policy from its textual form
    /// (`{[action][level][target]}`); parse failures surface as
    /// [`RolloutError::UnparseablePolicy`] findings at validation time and
    /// block the commit.
    pub fn add_policy_text(mut self, text: impl Into<String>) -> Self {
        self.policy_ops.push(PolicyOp::AddText(text.into()));
        self
    }

    /// Stage the removal of every policy equal to `policy` staged so far
    /// (installed rules plus earlier `add_*` calls; a matching policy added
    /// *after* this call survives — operations apply in call order).
    pub fn remove_policy(mut self, policy: &Policy) -> Self {
        self.policy_ops.push(PolicyOp::Remove(policy.clone()));
        self
    }

    /// Stage a wholesale policy-set replacement, discarding the installed
    /// rules and any policy operation staged before this call (later
    /// operations apply on top of the replacement).
    pub fn replace_policies(mut self, policies: PolicySet) -> Self {
        self.policy_ops.push(PolicyOp::Replace(policies));
        self
    }

    /// Stage a signature-database swap.
    pub fn swap_database(mut self, database: SignatureDatabase) -> Self {
        self.database = Some(database);
        self
    }

    /// Stage an enforcer-configuration change.
    pub fn configure(mut self, config: EnforcerConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Resolve the staged policy set by applying the staged operations in
    /// call order, collecting parse failures instead of aborting on the
    /// first.
    fn staged_policies(&self) -> (PolicySet, Vec<RolloutError>) {
        let mut errors = Vec::new();
        // Start from a cheap clone of the installed set: `PolicySet` shares
        // its compiled-against base chunk on clone, so an append-only
        // transaction against a 100k-rule set copies pointers — and commit
        // can detect the append and extend the previous index in place.
        let mut policies = self.plane.policies().clone();
        for op in &self.policy_ops {
            match op {
                PolicyOp::Add(policy) => policies.push(policy.clone()),
                PolicyOp::AddText(text) => match text.parse::<Policy>() {
                    Ok(policy) => policies.push(policy),
                    Err(e) => errors.push(RolloutError::UnparseablePolicy {
                        text: text.clone(),
                        reason: e.to_string(),
                    }),
                },
                PolicyOp::Remove(removed) => {
                    // Rebuild (losing base sharing) only when something is
                    // actually removed; a no-op removal keeps the append-only
                    // fast path available.
                    if policies.iter().any(|p| p == removed) {
                        policies = PolicySet::from_policies(
                            policies.iter().filter(|p| *p != removed).cloned().collect(),
                        );
                    }
                }
                PolicyOp::Replace(set) => policies = set.clone(),
            }
        }
        (policies, errors)
    }

    fn staged_database(&self) -> &SignatureDatabase {
        self.database.as_ref().unwrap_or(self.plane.database())
    }

    fn staged_config(&self) -> EnforcerConfig {
        self.config.unwrap_or(self.plane.config())
    }

    /// Validation findings for an already-resolved staged policy set (shared
    /// by [`Transaction::validate`] and [`Transaction::diff`] so the staging
    /// pass runs once per call).
    fn findings(&self, policies: &PolicySet, errors: Vec<RolloutError>) -> RolloutValidation {
        let database = self.staged_database();
        let mut warnings: Vec<RolloutWarning> = database
            .collisions()
            .iter()
            .cloned()
            .map(RolloutWarning::TagCollision)
            .collect();
        // Parse the stored descriptors once, not once per policy: the
        // dead-target scan is O(policies × signatures) cheap slice matching
        // over this pre-parsed view.
        let parsed: Vec<(Option<AppTag>, Vec<MethodSignature>)> = database
            .iter()
            .map(|(tag_hex, entry)| {
                (
                    AppTag::from_hex(tag_hex),
                    entry
                        .signatures
                        .iter()
                        .filter_map(|descriptor| descriptor.parse::<MethodSignature>().ok())
                        .collect(),
                )
            })
            .collect();
        for policy in policies.iter() {
            let alive = parsed.iter().any(|(tag, signatures)| {
                tag.is_some_and(|tag| policy.matches_tag(tag))
                    || signatures.iter().any(|sig| policy.matches_signature(sig))
            });
            if !alive {
                warnings.push(RolloutWarning::DeadTarget {
                    policy: policy.to_string(),
                });
            }
        }
        RolloutValidation { errors, warnings }
    }

    /// Dry-run the staged change: parse failures are blocking errors; tag
    /// collisions recorded in the staged database and policies whose target
    /// matches nothing in it are warnings.
    pub fn validate(&self) -> RolloutValidation {
        let (policies, errors) = self.staged_policies();
        self.findings(&policies, errors)
    }

    /// Whether the staged state differs from the current state — the single
    /// rebuild predicate shared by [`Transaction::diff`] and
    /// [`Transaction::commit`], so the plan's `rebuilds_tables` always
    /// agrees with what commit does.  Policy comparison is order-sensitive:
    /// reordering rules can change which policy a drop is *attributed* to,
    /// so a reorder is a real (rebuilding) change.
    fn stages_a_change(&self, policies: &PolicySet) -> bool {
        *policies != *self.plane.policies()
            || *self.staged_database() != *self.plane.database()
            || self.staged_config() != self.plane.config()
    }

    /// The typed dry-run plan: what the commit would add, remove and change,
    /// plus the validation findings.
    pub fn diff(&self) -> RolloutPlan {
        let (policies, errors) = self.staged_policies();
        let database = self.staged_database();
        let config = self.staged_config();
        let rebuilds_tables = self.stages_a_change(&policies);
        let validation = self.findings(&policies, errors);

        let (policies_added, policies_removed) = diff_policies(self.plane.policies(), &policies);
        let (apps_added, apps_removed) = diff_apps(self.plane.database(), database);
        let config_change =
            (config != self.plane.config()).then_some((self.plane.config(), config));

        RolloutPlan {
            from_generation: self.plane.current.id,
            policies_added,
            policies_removed,
            policy_count: policies.len(),
            apps_added,
            apps_removed,
            app_count: database.len(),
            config_change,
            rebuilds_tables,
            validation,
        }
    }

    /// Validate and apply the staged change: compile [`EnforcementTables`]
    /// **exactly once** (one flow-cache epoch bump), atomically hot-swap
    /// every registered endpoint, retain the previous generation for
    /// rollback and return the new generation's id.
    ///
    /// A transaction that stages no effective change (the staged state equals
    /// the current state) commits as a no-op: the current generation is
    /// returned and nothing is rebuilt or invalidated.
    ///
    /// # Errors
    ///
    /// [`RolloutError::Rejected`] carrying every blocking validation finding;
    /// the control plane and all endpoints are left untouched.
    pub fn commit(mut self) -> Result<GenerationId, RolloutError> {
        // Chaos hook first: every commit *attempt* ticks the plan's ordinal
        // (so replays stay aligned), and a scheduled failure aborts before
        // validation or compilation touches anything.
        if let Some(ordinal) = self
            .plane
            .faults
            .as_ref()
            .and_then(|faults| faults.commit_should_fail())
        {
            return Err(RolloutError::FaultInjected { ordinal });
        }
        let (policies, errors) = self.staged_policies();
        if !errors.is_empty() {
            return Err(RolloutError::Rejected { errors });
        }
        if !self.stages_a_change(&policies) {
            return Ok(self.plane.current.id);
        }
        // Classify the staged policy change for the incremental compiler:
        // an append-only delta lets commit extend the previous generation's
        // index instead of recompiling every rule.
        let delta = match policies.append_split(self.plane.policies()) {
            Some(split) if split == policies.len() => PolicyDelta::Unchanged,
            Some(split) => PolicyDelta::Appended { split },
            None => PolicyDelta::Changed,
        };
        let database_changed = self
            .database
            .as_ref()
            .is_some_and(|db| *db != *self.plane.database());
        let config = self.staged_config();
        // The transaction owns a staged database: move it instead of
        // deep-cloning the whole thing (fall back to cloning the current one
        // only when the transaction never swapped it).
        let database = self
            .database
            .take()
            .unwrap_or_else(|| self.plane.database().clone());
        Ok(self
            .plane
            .commit_state(database, database_changed, policies, delta, config))
    }
}

/// Multiset difference of two policy sets, rendered for display: policies in
/// `staged` but not `current` (added) and vice versa (removed).
fn diff_policies(current: &PolicySet, staged: &PolicySet) -> (Vec<String>, Vec<String>) {
    let mut remaining: HashMap<&Policy, usize> = HashMap::new();
    for policy in current.iter() {
        *remaining.entry(policy).or_insert(0) += 1;
    }
    let mut added = Vec::new();
    for policy in staged.iter() {
        match remaining.get_mut(policy) {
            Some(count) if *count > 0 => *count -= 1,
            _ => added.push(policy.to_string()),
        }
    }
    let mut removed = Vec::new();
    for policy in current.iter() {
        if let Some(count) = remaining.get_mut(policy) {
            if *count > 0 {
                *count -= 1;
                removed.push(policy.to_string());
            }
        }
    }
    (added, removed)
}

/// Applications present in only one of the two databases, by package name.
fn diff_apps(
    current: &SignatureDatabase,
    staged: &SignatureDatabase,
) -> (Vec<String>, Vec<String>) {
    let current_tags: BTreeSet<&str> = current.iter().map(|(tag, _)| tag).collect();
    let staged_tags: BTreeSet<&str> = staged.iter().map(|(tag, _)| tag).collect();
    let added = staged
        .iter()
        .filter(|(tag, _)| !current_tags.contains(tag))
        .map(|(_, entry)| entry.package_name.clone())
        .collect();
    let removed = current
        .iter()
        .filter(|(tag, _)| !staged_tags.contains(tag))
        .map(|(_, entry)| entry.package_name.clone())
        .collect();
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineAnalyzer;
    use bp_appsim::generator::CorpusGenerator;
    use bp_types::{ApkHash, EnforcementLevel};

    fn analyzed_db() -> SignatureDatabase {
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new()
            .analyze_into(&CorpusGenerator::solcalendar().build_apk(), &mut db)
            .unwrap();
        db
    }

    #[test]
    fn commit_mints_generations_and_retains_history() {
        let mut control =
            ControlPlane::new(analyzed_db(), PolicySet::new(), EnforcerConfig::default());
        assert_eq!(control.generation().as_u64(), 1);
        assert_eq!(control.builds(), 1);

        let g2 = control
            .begin()
            .add_policy(Policy::deny(EnforcementLevel::Library, "com/facebook"))
            .commit()
            .unwrap();
        assert_eq!(g2.as_u64(), 2);
        assert_eq!(control.builds(), 2);
        assert_eq!(control.policies().len(), 1);
        assert_eq!(
            control.retained_generations(),
            vec![GenerationId(1)],
            "the previous generation is retained for rollback"
        );
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let mut control =
            ControlPlane::new(analyzed_db(), PolicySet::new(), EnforcerConfig::default());
        let epoch = control.tables().epoch();
        let generation = control.begin().commit().unwrap();
        assert_eq!(generation, control.generation());
        assert_eq!(control.builds(), 1, "no rebuild for a no-op commit");
        assert_eq!(control.tables().epoch(), epoch, "no epoch bump either");

        // Staging the identical state is also a no-op.
        let identical = control.database().clone();
        let same = control
            .begin()
            .replace_policies(PolicySet::new())
            .swap_database(identical)
            .commit()
            .unwrap();
        assert_eq!(same, generation);
        assert_eq!(control.builds(), 1);
    }

    #[test]
    fn unparseable_policy_text_blocks_the_commit() {
        let mut control =
            ControlPlane::new(analyzed_db(), PolicySet::new(), EnforcerConfig::default());
        let tx = control
            .begin()
            .add_policy_text("{[deny][library]}")
            .add_policy_text("not a policy at all");
        let validation = tx.validate();
        assert_eq!(validation.errors.len(), 2);
        assert!(!validation.is_deployable());
        let err = tx.commit().unwrap_err();
        let RolloutError::Rejected { errors } = &err else {
            panic!("expected rejection, got {err:?}");
        };
        assert_eq!(errors.len(), 2);
        assert!(matches!(errors[0], RolloutError::UnparseablePolicy { .. }));
        // The failed commit changed nothing.
        assert_eq!(control.generation().as_u64(), 1);
        assert!(control.policies().is_empty());
    }

    #[test]
    fn dead_targets_and_tag_collisions_surface_as_warnings() {
        let mut db = analyzed_db();
        // Forge a truncated-tag collision: two full hashes sharing the first
        // eight bytes.
        let a = ApkHash::from_hex("00112233445566770000000000000001").unwrap();
        let b = ApkHash::from_hex("001122334455667700000000000000ff").unwrap();
        assert!(db
            .insert(a, "com.collide.first", false, Vec::new())
            .is_none());
        assert!(db
            .insert(b, "com.collide.second", false, Vec::new())
            .is_some());

        let mut control = ControlPlane::new(
            SignatureDatabase::new(),
            PolicySet::new(),
            EnforcerConfig::default(),
        );
        let tx = control
            .begin()
            .swap_database(db)
            .add_policy(Policy::deny(
                EnforcementLevel::Class,
                "com/facebook/appevents",
            ))
            .add_policy(Policy::deny(
                EnforcementLevel::Library,
                "com/definitely/absent",
            ));
        let validation = tx.validate();
        assert!(validation.is_deployable());
        assert!(validation.warnings.iter().any(|w| matches!(
            w,
            RolloutWarning::TagCollision(c) if c.rejected_package == "com.collide.second"
        )));
        // The live target is not flagged; the absent one is.
        let dead: Vec<_> = validation
            .warnings
            .iter()
            .filter_map(|w| match w {
                RolloutWarning::DeadTarget { policy } => Some(policy.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].contains("com/definitely/absent"));
        // Warnings never block.
        tx.commit().unwrap();
    }

    #[test]
    fn policy_operations_apply_in_call_order() {
        let p = Policy::deny(EnforcementLevel::Library, "com/flurry");
        let mut control = ControlPlane::new(
            SignatureDatabase::new(),
            PolicySet::new(),
            EnforcerConfig::default(),
        );

        // add then remove nets to nothing: a no-op commit.
        let g = control
            .begin()
            .add_policy(p.clone())
            .remove_policy(&p)
            .commit()
            .unwrap();
        assert_eq!(g, control.generation());
        assert!(control.policies().is_empty());

        // remove then add keeps the later add.
        control
            .begin()
            .remove_policy(&p)
            .add_policy(p.clone())
            .commit()
            .unwrap();
        assert_eq!(control.policies().len(), 1);

        // replace discards operations staged before it, keeps later ones.
        let other = Policy::deny(EnforcementLevel::Class, "com/facebook/appevents");
        control
            .begin()
            .add_policy(other.clone())
            .replace_policies(PolicySet::new())
            .add_policy(p.clone())
            .commit()
            .unwrap();
        let staged: Vec<_> = control.policies().iter().cloned().collect();
        assert_eq!(staged, vec![p]);
    }

    #[test]
    fn diff_reports_typed_changes() {
        let keep = Policy::deny(EnforcementLevel::Library, "com/flurry");
        let drop = Policy::deny(EnforcementLevel::Library, "com/facebook");
        let mut control = ControlPlane::new(
            SignatureDatabase::new(),
            PolicySet::from_policies(vec![keep.clone(), drop.clone()]),
            EnforcerConfig::default(),
        );
        let add = Policy::deny(EnforcementLevel::Class, "com/facebook/appevents");
        let tx = control
            .begin()
            .remove_policy(&drop)
            .add_policy(add.clone())
            .swap_database(analyzed_db())
            .configure(EnforcerConfig::strict());
        let plan = tx.diff();
        assert_eq!(plan.policies_added, vec![add.to_string()]);
        assert_eq!(plan.policies_removed, vec![drop.to_string()]);
        assert_eq!(plan.policy_count, 2);
        assert_eq!(
            plan.apps_added,
            vec!["net.daum.android.solcalendar".to_string()]
        );
        assert!(plan.apps_removed.is_empty());
        assert!(plan.config_change.is_some());
        assert!(plan.rebuilds_tables);
        // The rendered plan mentions every change.
        let rendered = plan.to_string();
        assert!(rendered.contains("+ policy"));
        assert!(rendered.contains("- policy"));
        assert!(rendered.contains("+ app net.daum.android.solcalendar"));
        assert!(rendered.contains("one table rebuild"));

        // A no-op transaction's plan says so.
        let idle = control.begin().diff();
        assert!(!idle.rebuilds_tables);
        assert!(idle.policies_added.is_empty());
    }

    #[test]
    fn rollback_restores_retained_builds_without_recompiling() {
        let mut control =
            ControlPlane::new(analyzed_db(), PolicySet::new(), EnforcerConfig::default());
        let g1 = control.generation();
        let g1_epoch = control.tables().epoch();

        let g2 = control
            .begin()
            .add_policy(Policy::deny(EnforcementLevel::Library, "com"))
            .commit()
            .unwrap();
        let g2_epoch = control.tables().epoch();
        assert!(g2_epoch > g1_epoch);

        // Rolling back reinstalls the retained g1 build: same epoch, no new
        // compilation, interchange state reverted.
        let builds = control.builds();
        assert_eq!(control.rollback(g1).unwrap(), g1);
        assert_eq!(control.generation(), g1);
        assert_eq!(control.tables().epoch(), g1_epoch);
        assert_eq!(control.builds(), builds);
        assert!(control.policies().is_empty());

        // And forward again: g2 is now the retained one.
        assert_eq!(control.retained_generations(), vec![g2]);
        assert_eq!(control.rollback(g2).unwrap(), g2);
        assert_eq!(control.tables().epoch(), g2_epoch);
        assert_eq!(control.policies().len(), 1);

        // Rolling back to the current generation is a no-op.
        assert_eq!(control.rollback(g2).unwrap(), g2);

        let missing = GenerationId(99);
        assert_eq!(
            control.rollback(missing).unwrap_err(),
            RolloutError::UnknownGeneration { requested: missing }
        );
    }

    #[test]
    fn retention_bound_evicts_oldest_generations() {
        let mut control = ControlPlane::with_retain(
            SignatureDatabase::new(),
            PolicySet::new(),
            EnforcerConfig::default(),
            2,
        );
        let g1 = control.generation();
        for i in 0..3 {
            control
                .begin()
                .add_policy(Policy::deny(
                    EnforcementLevel::Library,
                    format!("com/gen{i}"),
                ))
                .commit()
                .unwrap();
        }
        // g1 and g2 were evicted; only the two most recent predecessors stay.
        assert_eq!(control.retained_generations().len(), 2);
        assert!(matches!(
            control.rollback(g1),
            Err(RolloutError::UnknownGeneration { .. })
        ));
    }

    #[test]
    fn registered_endpoints_follow_commits_and_rollbacks() {
        let mut control =
            ControlPlane::new(analyzed_db(), PolicySet::new(), EnforcerConfig::default());
        let sharded = Arc::new(ShardedEnforcer::new(control.tables(), 2));
        let single = Arc::new(Mutex::new(PolicyEnforcer::new(
            SignatureDatabase::new(),
            PolicySet::new(),
            EnforcerConfig::default(),
        )));
        control.register(Arc::clone(&sharded) as Arc<dyn EnforcementEndpoint>);
        control.register(Arc::clone(&single) as Arc<dyn EnforcementEndpoint>);
        assert_eq!(control.endpoint_count(), 2);
        // Registration installed the current build on the facade (its ctor
        // build is replaced by the control plane's).
        assert_eq!(single.lock().tables().epoch(), control.tables().epoch());
        assert_eq!(single.lock().database().len(), 1);

        let g1 = control.generation();
        control
            .begin()
            .add_policy(Policy::deny(EnforcementLevel::Library, "com"))
            .commit()
            .unwrap();
        assert_eq!(sharded.tables().epoch(), control.tables().epoch());
        assert_eq!(single.lock().tables().epoch(), control.tables().epoch());
        assert_eq!(single.lock().policies().len(), 1);

        control.rollback(g1).unwrap();
        assert_eq!(sharded.tables().epoch(), control.tables().epoch());
        assert!(single.lock().policies().is_empty());
    }
}
