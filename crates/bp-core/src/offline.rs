//! The Offline Analyzer and its signature database.
//!
//! The Offline Analyzer (paper §IV-A1, §V-A) processes every app that should
//! be managed by BorderPatrol: it extracts the method signatures from the
//! app's dex file(s), orders them deterministically, assigns sequential
//! indexes, and stores the mapping in a JSON database keyed by the MD5 hash of
//! the apk.  The Policy Enforcer later selects the right table via the
//! truncated hash it finds in each packet and maps indexes back to
//! signatures.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use bp_dex::{extract_apk_signatures, ApkFile};
use bp_types::{ApkHash, AppTag, Error, MethodSignature};

/// One application's entry in the signature database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppEntry {
    /// Full MD5 hash of the apk (hex).
    pub apk_hash: String,
    /// The app's package name (informational).
    pub package_name: String,
    /// Whether the apk packs more than one dex file.
    pub multidex: bool,
    /// Sorted method signatures; the position in this list is the index.
    pub signatures: Vec<String>,
}

/// The JSON signature database produced by the Offline Analyzer.
///
/// # Examples
///
/// ```
/// use bp_core::offline::{OfflineAnalyzer, SignatureDatabase};
/// use bp_appsim::generator::CorpusGenerator;
///
/// let apk = CorpusGenerator::dropbox().build_apk();
/// let mut db = SignatureDatabase::new();
/// OfflineAnalyzer::new().analyze_into(&apk, &mut db)?;
/// assert_eq!(db.len(), 1);
/// let json = db.to_json()?;
/// let restored = SignatureDatabase::from_json(&json)?;
/// assert_eq!(restored.len(), 1);
/// # Ok::<(), bp_types::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureDatabase {
    /// Entries keyed by the hex form of the truncated 8-byte app tag.
    entries: BTreeMap<String, AppEntry>,
}

impl SignatureDatabase {
    /// An empty database.
    pub fn new() -> Self {
        SignatureDatabase::default()
    }

    /// Number of applications in the database.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (or replace) an entry.
    pub fn insert(&mut self, hash: ApkHash, package_name: &str, multidex: bool, signatures: Vec<MethodSignature>) {
        let entry = AppEntry {
            apk_hash: hash.to_hex(),
            package_name: package_name.to_string(),
            multidex,
            signatures: signatures.iter().map(MethodSignature::to_descriptor).collect(),
        };
        self.entries.insert(hash.tag().to_hex(), entry);
    }

    /// Look up an app entry by its truncated tag.
    pub fn entry(&self, tag: AppTag) -> Option<&AppEntry> {
        self.entries.get(&tag.to_hex())
    }

    /// Whether the database knows the app identified by `tag`.
    pub fn contains(&self, tag: AppTag) -> bool {
        self.entries.contains_key(&tag.to_hex())
    }

    /// Iterate over `(tag hex, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AppEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Resolve a stack of indexes for the app identified by `tag` back to
    /// method signatures, preserving order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for an unknown app tag or a dangling index,
    /// and [`Error::Malformed`] if a stored signature fails to parse.
    pub fn resolve_stack(&self, tag: AppTag, indexes: &[u32]) -> Result<Vec<MethodSignature>, Error> {
        let entry = self
            .entry(tag)
            .ok_or_else(|| Error::not_found("app tag", tag.to_hex()))?;
        indexes
            .iter()
            .map(|&index| {
                let descriptor = entry
                    .signatures
                    .get(index as usize)
                    .ok_or_else(|| Error::not_found("method index", index.to_string()))?;
                descriptor
                    .parse::<MethodSignature>()
                    .map_err(|e| Error::malformed("signature database", e.to_string()))
            })
            .collect()
    }

    /// Whether the database has two distinct applications whose truncated tags
    /// collide (the paper's §VII hash-collision concern).
    pub fn has_tag_collision(&self) -> bool {
        // Tags are the map keys, so a collision manifests as two different
        // full hashes mapping to one key; detect by comparing counts is not
        // possible after the fact, so collisions are detected at insert time
        // by callers comparing `entry(tag)` before inserting.  Here we check
        // for entries whose stored full hash does not start with the key.
        self.entries.iter().any(|(tag_hex, entry)| !entry.apk_hash.starts_with(tag_hex))
    }

    /// Serialize the database to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if serialization fails.
    pub fn to_json(&self) -> Result<String, Error> {
        serde_json::to_string_pretty(self).map_err(|e| Error::Io(e.to_string()))
    }

    /// Parse a database from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] if the JSON does not describe a database.
    pub fn from_json(json: &str) -> Result<Self, Error> {
        serde_json::from_str(json).map_err(|e| Error::malformed("signature database", e.to_string()))
    }

    /// Write the database to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        std::fs::write(path, self.to_json()?).map_err(Error::from)
    }

    /// Load a database from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem errors and [`Error::Malformed`] on
    /// invalid content.
    pub fn load(path: &Path) -> Result<Self, Error> {
        let text = std::fs::read_to_string(path).map_err(Error::from)?;
        Self::from_json(&text)
    }
}

/// The Offline Analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineAnalyzer;

impl OfflineAnalyzer {
    /// Create an analyzer.
    pub fn new() -> Self {
        OfflineAnalyzer
    }

    /// Analyze one apk and return its sorted signatures and hash.
    ///
    /// # Errors
    ///
    /// Propagates dex parsing errors.
    pub fn analyze(&self, apk: &ApkFile) -> Result<(ApkHash, Vec<MethodSignature>), Error> {
        let signatures = extract_apk_signatures(apk)?;
        Ok((apk.hash(), signatures))
    }

    /// Analyze one apk and insert its entry into `database`.
    ///
    /// # Errors
    ///
    /// Propagates dex parsing errors.
    pub fn analyze_into(&self, apk: &ApkFile, database: &mut SignatureDatabase) -> Result<ApkHash, Error> {
        let (hash, signatures) = self.analyze(apk)?;
        database.insert(hash, apk.package_name(), apk.is_multidex(), signatures);
        Ok(hash)
    }

    /// Analyze a batch of apks into a fresh database.
    ///
    /// # Errors
    ///
    /// Propagates dex parsing errors from any apk.
    pub fn analyze_batch<'a, I>(&self, apks: I) -> Result<SignatureDatabase, Error>
    where
        I: IntoIterator<Item = &'a ApkFile>,
    {
        let mut db = SignatureDatabase::new();
        for apk in apks {
            self.analyze_into(apk, &mut db)?;
        }
        Ok(db)
    }
}

/// Analysis of the truncated-hash collision risk (paper §VII "Hash collision").
pub mod collision {
    /// Probability that at least two of `apps` distinct applications share the
    /// same truncated tag of `bits` bits, by the birthday approximation
    /// `1 - exp(-n(n-1) / 2^(bits+1))`.
    pub fn collision_probability(apps: u64, bits: u32) -> f64 {
        let n = apps as f64;
        let space = 2f64.powi(bits as i32);
        1.0 - (-(n * (n - 1.0)) / (2.0 * space)).exp()
    }

    /// The paper's headline number: with 3.3 million Play Store apps and an
    /// 8-byte (64-bit) tag the collision probability is below 10⁻⁶.
    pub fn paper_claim_holds() -> bool {
        collision_probability(3_300_000, 64) < 1e-6
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn paper_collision_bound() {
            assert!(paper_claim_holds());
            let p = collision_probability(3_300_000, 64);
            assert!(p > 0.0 && p < 1e-6, "p = {p}");
        }

        #[test]
        fn probability_grows_with_apps_and_shrinks_with_bits() {
            assert!(collision_probability(1_000_000, 64) < collision_probability(10_000_000, 64));
            assert!(collision_probability(3_300_000, 32) > collision_probability(3_300_000, 64));
            // With only 16 bits, 3.3M apps collide almost surely.
            assert!(collision_probability(3_300_000, 16) > 0.999);
        }

        #[test]
        fn degenerate_cases() {
            assert_eq!(collision_probability(0, 64), 0.0);
            assert_eq!(collision_probability(1, 64), 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_appsim::generator::CorpusGenerator;

    #[test]
    fn analyze_produces_sorted_deterministic_indexes() {
        let apk = CorpusGenerator::dropbox().build_apk();
        let analyzer = OfflineAnalyzer::new();
        let (hash1, sigs1) = analyzer.analyze(&apk).unwrap();
        let (hash2, sigs2) = analyzer.analyze(&apk).unwrap();
        assert_eq!(hash1, hash2);
        assert_eq!(sigs1, sigs2);
        let mut sorted = sigs1.clone();
        sorted.sort();
        assert_eq!(sigs1, sorted);
    }

    #[test]
    fn database_roundtrips_through_json() {
        let analyzer = OfflineAnalyzer::new();
        let apks: Vec<_> = CorpusGenerator::case_study_apps().iter().map(|a| a.build_apk()).collect();
        let db = analyzer.analyze_batch(&apks).unwrap();
        assert_eq!(db.len(), 3);
        let json = db.to_json().unwrap();
        assert!(json.contains("com.dropbox.android"));
        let restored = SignatureDatabase::from_json(&json).unwrap();
        assert_eq!(restored, db);
        assert!(SignatureDatabase::from_json("{not json").is_err());
    }

    #[test]
    fn resolve_stack_maps_indexes_back_to_signatures() {
        let apk = CorpusGenerator::solcalendar().build_apk();
        let analyzer = OfflineAnalyzer::new();
        let mut db = SignatureDatabase::new();
        let hash = analyzer.analyze_into(&apk, &mut db).unwrap();
        let (_, signatures) = analyzer.analyze(&apk).unwrap();

        let indexes: Vec<u32> = vec![0, 2, 1];
        let resolved = db.resolve_stack(hash.tag(), &indexes).unwrap();
        assert_eq!(resolved[0], signatures[0]);
        assert_eq!(resolved[1], signatures[2]);
        assert_eq!(resolved[2], signatures[1]);
    }

    #[test]
    fn resolve_stack_rejects_unknown_tag_and_index() {
        let db = SignatureDatabase::new();
        let tag = ApkHash::digest(b"unknown").tag();
        assert!(db.resolve_stack(tag, &[0]).is_err());

        let apk = CorpusGenerator::box_app().build_apk();
        let mut db = SignatureDatabase::new();
        let hash = OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let huge_index = 1_000_000;
        assert!(db.resolve_stack(hash.tag(), &[huge_index]).is_err());
    }

    #[test]
    fn entries_record_multidex_and_package_name() {
        let apk = CorpusGenerator::dropbox().as_multidex().build_apk();
        let mut db = SignatureDatabase::new();
        let hash = OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let entry = db.entry(hash.tag()).unwrap();
        assert!(entry.multidex);
        assert_eq!(entry.package_name, "com.dropbox.android");
        assert!(db.contains(hash.tag()));
        assert!(!db.has_tag_collision());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("bp-core-offline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("signatures.json");
        let apk = CorpusGenerator::dropbox().build_apk();
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        db.save(&path).unwrap();
        let loaded = SignatureDatabase::load(&path).unwrap();
        assert_eq!(loaded, db);
        std::fs::remove_file(&path).ok();
    }
}
