//! The Offline Analyzer and its signature database.
//!
//! The Offline Analyzer (paper §IV-A1, §V-A) processes every app that should
//! be managed by BorderPatrol: it extracts the method signatures from the
//! app's dex file(s), orders them deterministically, assigns sequential
//! indexes, and stores the mapping in a JSON database keyed by the MD5 hash of
//! the apk.  The Policy Enforcer later selects the right table via the
//! truncated hash it finds in each packet and maps indexes back to
//! signatures.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use bp_dex::{extract_apk_signatures, ApkFile};
use bp_types::{ApkHash, AppTag, Error, MethodSignature};

/// One application's entry in the signature database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppEntry {
    /// Full MD5 hash of the apk (hex).
    pub apk_hash: String,
    /// The app's package name (informational).
    pub package_name: String,
    /// Whether the apk packs more than one dex file.
    pub multidex: bool,
    /// Sorted method signatures; the position in this list is the index.
    pub signatures: Vec<String>,
}

/// The JSON signature database produced by the Offline Analyzer.
///
/// # Examples
///
/// ```
/// use bp_core::offline::{OfflineAnalyzer, SignatureDatabase};
/// use bp_appsim::generator::CorpusGenerator;
///
/// let apk = CorpusGenerator::dropbox().build_apk();
/// let mut db = SignatureDatabase::new();
/// OfflineAnalyzer::new().analyze_into(&apk, &mut db)?;
/// assert_eq!(db.len(), 1);
/// let json = db.to_json()?;
/// let restored = SignatureDatabase::from_json(&json)?;
/// assert_eq!(restored.len(), 1);
/// # Ok::<(), bp_types::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureDatabase {
    /// Entries keyed by the hex form of the truncated 8-byte app tag.
    entries: BTreeMap<String, AppEntry>,
    /// Truncated-tag collisions observed at insert time (paper §VII).
    #[serde(default)]
    collisions: Vec<TagCollision>,
}

/// A truncated-tag collision between two distinct applications: both apks
/// share the same leading 8 digest bytes, so the Policy Enforcer could not
/// tell them apart on the wire (paper §VII "Hash collision").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagCollision {
    /// The shared truncated tag (hex).
    pub tag: String,
    /// Full hash of the application already in the database (which is kept).
    pub existing_apk_hash: String,
    /// Full hash of the application whose insert collided (which is rejected).
    pub rejected_apk_hash: String,
    /// Package name of the rejected application.
    pub rejected_package: String,
}

impl SignatureDatabase {
    /// An empty database.
    pub fn new() -> Self {
        SignatureDatabase::default()
    }

    /// Number of applications in the database.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert an entry.
    ///
    /// Re-analyzing the same apk replaces its entry in place.  If a *different*
    /// apk (different full MD5) maps to the same truncated tag, the insert is
    /// rejected so the existing app keeps resolving correctly, and the
    /// collision is recorded and returned — the silent-replacement behaviour
    /// the paper's §VII analysis warns about is surfaced instead of hidden.
    pub fn insert(
        &mut self,
        hash: ApkHash,
        package_name: &str,
        multidex: bool,
        signatures: Vec<MethodSignature>,
    ) -> Option<TagCollision> {
        let tag_hex = hash.tag().to_hex();
        let hash_hex = hash.to_hex();
        if let Some(existing) = self.entries.get(&tag_hex) {
            if existing.apk_hash != hash_hex {
                let collision = TagCollision {
                    tag: tag_hex,
                    existing_apk_hash: existing.apk_hash.clone(),
                    rejected_apk_hash: hash_hex,
                    rejected_package: package_name.to_string(),
                };
                self.collisions.push(collision.clone());
                return Some(collision);
            }
        }
        let entry = AppEntry {
            apk_hash: hash_hex,
            package_name: package_name.to_string(),
            multidex,
            signatures: signatures
                .iter()
                .map(MethodSignature::to_descriptor)
                .collect(),
        };
        self.entries.insert(tag_hex, entry);
        None
    }

    /// Truncated-tag collisions observed so far, in insertion order.
    pub fn collisions(&self) -> &[TagCollision] {
        &self.collisions
    }

    /// Look up an app entry by its truncated tag.
    pub fn entry(&self, tag: AppTag) -> Option<&AppEntry> {
        self.entries.get(&tag.to_hex())
    }

    /// Whether the database knows the app identified by `tag`.
    pub fn contains(&self, tag: AppTag) -> bool {
        self.entries.contains_key(&tag.to_hex())
    }

    /// Iterate over `(tag hex, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AppEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Resolve a stack of indexes for the app identified by `tag` back to
    /// method signatures, preserving order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for an unknown app tag or a dangling index,
    /// and [`Error::Malformed`] if a stored signature fails to parse.
    pub fn resolve_stack(
        &self,
        tag: AppTag,
        indexes: &[u32],
    ) -> Result<Vec<MethodSignature>, Error> {
        let entry = self
            .entry(tag)
            .ok_or_else(|| Error::not_found("app tag", tag.to_hex()))?;
        indexes
            .iter()
            .map(|&index| {
                let descriptor = entry
                    .signatures
                    .get(index as usize)
                    .ok_or_else(|| Error::not_found("method index", index.to_string()))?;
                descriptor
                    .parse::<MethodSignature>()
                    .map_err(|e| Error::malformed("signature database", e.to_string()))
            })
            .collect()
    }

    /// Whether two distinct applications have collided on a truncated tag
    /// (the paper's §VII hash-collision concern).  Collisions are detected at
    /// insert time — see [`SignatureDatabase::insert`].
    pub fn has_tag_collision(&self) -> bool {
        !self.collisions.is_empty()
    }

    /// Serialize the database to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if serialization fails.
    pub fn to_json(&self) -> Result<String, Error> {
        serde_json::to_string_pretty(self).map_err(|e| Error::Io(e.to_string()))
    }

    /// Parse a database from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] if the JSON does not describe a database.
    pub fn from_json(json: &str) -> Result<Self, Error> {
        serde_json::from_str(json)
            .map_err(|e| Error::malformed("signature database", e.to_string()))
    }

    /// Write the database to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        std::fs::write(path, self.to_json()?).map_err(Error::from)
    }

    /// Load a database from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem errors and [`Error::Malformed`] on
    /// invalid content.
    pub fn load(path: &Path) -> Result<Self, Error> {
        let text = std::fs::read_to_string(path).map_err(Error::from)?;
        Self::from_json(&text)
    }
}

/// One application's compiled (pre-parsed) signature table.
///
/// Built once by [`CompiledSignatureDb::compile`]; the Policy Enforcer's hot
/// path resolves frame indexes against [`CompiledAppEntry::signature`] with a
/// plain slice lookup — no descriptor parsing and no string allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledAppEntry {
    tag: AppTag,
    apk_hash: Option<ApkHash>,
    package_name: String,
    multidex: bool,
    /// Pre-parsed signatures, indexed by wire index.  A slot is `None` when
    /// the stored descriptor failed to parse; resolving such an index reports
    /// the same malformed-database error the interpretive path produces.
    signatures: Vec<Option<MethodSignature>>,
}

impl CompiledAppEntry {
    /// The application's truncated tag.
    pub fn tag(&self) -> AppTag {
        self.tag
    }

    /// The application's full apk hash, when the stored hash field parsed
    /// (a corrupted database file yields `None` rather than a fabricated
    /// identity; frame resolution is unaffected either way).
    pub fn apk_hash(&self) -> Option<ApkHash> {
        self.apk_hash
    }

    /// The application's package name.
    pub fn package_name(&self) -> &str {
        &self.package_name
    }

    /// Whether the apk packs more than one dex file.
    pub fn multidex(&self) -> bool {
        self.multidex
    }

    /// Number of indexed signatures.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// The pre-parsed signature at `index`, if the index is in range and the
    /// stored descriptor parsed.
    pub fn signature(&self, index: u32) -> Option<&MethodSignature> {
        self.signatures.get(index as usize).and_then(Option::as_ref)
    }

    /// Validate a whole index stack: `Ok` iff every index resolves.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for a dangling index and
    /// [`Error::Malformed`] for an index whose stored descriptor did not
    /// parse (mirroring [`SignatureDatabase::resolve_stack`]).
    pub fn validate_indexes(&self, indexes: &[u32]) -> Result<(), Error> {
        for &index in indexes {
            match self.signatures.get(index as usize) {
                Some(Some(_)) => {}
                Some(None) => {
                    return Err(Error::malformed(
                        "signature database",
                        format!("stored signature at index {index} does not parse"),
                    ))
                }
                None => return Err(Error::not_found("method index", index.to_string())),
            }
        }
        Ok(())
    }
}

/// The compiled, share-everywhere form of a [`SignatureDatabase`].
///
/// The JSON database stays the interchange format the Offline Analyzer
/// produces; `CompiledSignatureDb` is built from it **once** (per policy or
/// database reload) and is what the enforcement data plane reads on every
/// packet: per-app tables keyed by the tag's `u64` form with every method
/// descriptor pre-parsed.
///
/// # Examples
///
/// ```
/// use bp_core::offline::{CompiledSignatureDb, OfflineAnalyzer, SignatureDatabase};
/// use bp_appsim::generator::CorpusGenerator;
///
/// let apk = CorpusGenerator::dropbox().build_apk();
/// let mut db = SignatureDatabase::new();
/// let hash = OfflineAnalyzer::new().analyze_into(&apk, &mut db)?;
/// let compiled = CompiledSignatureDb::compile(&db);
/// assert!(compiled.contains(hash.tag()));
/// assert!(compiled.entry(hash.tag()).unwrap().signature(0).is_some());
/// # Ok::<(), bp_types::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledSignatureDb {
    entries: HashMap<u64, CompiledAppEntry>,
}

impl CompiledSignatureDb {
    /// An empty compiled database.
    pub fn new() -> Self {
        CompiledSignatureDb::default()
    }

    /// Compile an interchange database: parse every stored descriptor once and
    /// key the per-app tables by the tag's `u64` form.
    ///
    /// Entries whose stored tag key is not valid hex are skipped (they could
    /// never be addressed by a packet); individual descriptors that fail to
    /// parse keep their index slot so resolution errors match the
    /// interpretive path.
    pub fn compile(database: &SignatureDatabase) -> Self {
        let mut entries = HashMap::with_capacity(database.len());
        for (tag_hex, entry) in database.iter() {
            let Some(tag) = AppTag::from_hex(tag_hex) else {
                continue;
            };
            let apk_hash = ApkHash::from_hex(&entry.apk_hash);
            let signatures = entry
                .signatures
                .iter()
                .map(|descriptor| descriptor.parse::<MethodSignature>().ok())
                .collect();
            entries.insert(
                tag.as_u64(),
                CompiledAppEntry {
                    tag,
                    apk_hash,
                    package_name: entry.package_name.clone(),
                    multidex: entry.multidex,
                    signatures,
                },
            );
        }
        CompiledSignatureDb { entries }
    }

    /// Number of applications in the compiled database.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the compiled database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up an application's compiled table (a single `u64` hash-map probe).
    pub fn entry(&self, tag: AppTag) -> Option<&CompiledAppEntry> {
        self.entries.get(&tag.as_u64())
    }

    /// Whether the compiled database knows the app identified by `tag`.
    pub fn contains(&self, tag: AppTag) -> bool {
        self.entries.contains_key(&tag.as_u64())
    }

    /// Resolve a stack of indexes to pre-parsed signature references,
    /// preserving order.  Unlike [`SignatureDatabase::resolve_stack`] this
    /// performs no parsing and allocates only the returned reference vector.
    ///
    /// # Errors
    ///
    /// Same contract as [`SignatureDatabase::resolve_stack`].
    pub fn resolve_stack<'a>(
        &'a self,
        tag: AppTag,
        indexes: &[u32],
    ) -> Result<Vec<&'a MethodSignature>, Error> {
        let entry = self
            .entry(tag)
            .ok_or_else(|| Error::not_found("app tag", tag.to_hex()))?;
        entry.validate_indexes(indexes)?;
        Ok(indexes
            .iter()
            .map(|&index| entry.signature(index).expect("validated above"))
            .collect())
    }
}

/// The Offline Analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineAnalyzer;

impl OfflineAnalyzer {
    /// Create an analyzer.
    pub fn new() -> Self {
        OfflineAnalyzer
    }

    /// Analyze one apk and return its sorted signatures and hash.
    ///
    /// # Errors
    ///
    /// Propagates dex parsing errors.
    pub fn analyze(&self, apk: &ApkFile) -> Result<(ApkHash, Vec<MethodSignature>), Error> {
        let signatures = extract_apk_signatures(apk)?;
        Ok((apk.hash(), signatures))
    }

    /// Analyze one apk and insert its entry into `database`.
    ///
    /// # Errors
    ///
    /// Propagates dex parsing errors.  Returns [`Error::InvalidState`] when
    /// the apk's truncated tag collides with a different application already
    /// in the database: the entry is *not* inserted (the existing app keeps
    /// resolving correctly) and the collision is recorded on the database
    /// ([`SignatureDatabase::collisions`]).
    pub fn analyze_into(
        &self,
        apk: &ApkFile,
        database: &mut SignatureDatabase,
    ) -> Result<ApkHash, Error> {
        let (hash, signatures) = self.analyze(apk)?;
        if let Some(collision) =
            database.insert(hash, apk.package_name(), apk.is_multidex(), signatures)
        {
            return Err(Error::invalid_state(
                "apk analysis",
                format!(
                    "truncated tag {} of {} collides with already-analyzed apk {}",
                    collision.tag, collision.rejected_apk_hash, collision.existing_apk_hash
                ),
            ));
        }
        Ok(hash)
    }

    /// Analyze a batch of apks into a fresh database.
    ///
    /// # Errors
    ///
    /// Propagates dex parsing errors from any apk.
    pub fn analyze_batch<'a, I>(&self, apks: I) -> Result<SignatureDatabase, Error>
    where
        I: IntoIterator<Item = &'a ApkFile>,
    {
        let mut db = SignatureDatabase::new();
        for apk in apks {
            self.analyze_into(apk, &mut db)?;
        }
        Ok(db)
    }
}

/// Analysis of the truncated-hash collision risk (paper §VII "Hash collision").
pub mod collision {
    /// Probability that at least two of `apps` distinct applications share the
    /// same truncated tag of `bits` bits, by the birthday approximation
    /// `1 - exp(-n(n-1) / 2^(bits+1))`.
    pub fn collision_probability(apps: u64, bits: u32) -> f64 {
        let n = apps as f64;
        let space = 2f64.powi(bits as i32);
        1.0 - (-(n * (n - 1.0)) / (2.0 * space)).exp()
    }

    /// The paper's headline number: with 3.3 million Play Store apps and an
    /// 8-byte (64-bit) tag the collision probability is below 10⁻⁶.
    pub fn paper_claim_holds() -> bool {
        collision_probability(3_300_000, 64) < 1e-6
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn paper_collision_bound() {
            assert!(paper_claim_holds());
            let p = collision_probability(3_300_000, 64);
            assert!(p > 0.0 && p < 1e-6, "p = {p}");
        }

        #[test]
        fn probability_grows_with_apps_and_shrinks_with_bits() {
            assert!(collision_probability(1_000_000, 64) < collision_probability(10_000_000, 64));
            assert!(collision_probability(3_300_000, 32) > collision_probability(3_300_000, 64));
            // With only 16 bits, 3.3M apps collide almost surely.
            assert!(collision_probability(3_300_000, 16) > 0.999);
        }

        #[test]
        fn degenerate_cases() {
            assert_eq!(collision_probability(0, 64), 0.0);
            assert_eq!(collision_probability(1, 64), 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_appsim::generator::CorpusGenerator;

    #[test]
    fn analyze_produces_sorted_deterministic_indexes() {
        let apk = CorpusGenerator::dropbox().build_apk();
        let analyzer = OfflineAnalyzer::new();
        let (hash1, sigs1) = analyzer.analyze(&apk).unwrap();
        let (hash2, sigs2) = analyzer.analyze(&apk).unwrap();
        assert_eq!(hash1, hash2);
        assert_eq!(sigs1, sigs2);
        let mut sorted = sigs1.clone();
        sorted.sort();
        assert_eq!(sigs1, sorted);
    }

    #[test]
    fn database_roundtrips_through_json() {
        let analyzer = OfflineAnalyzer::new();
        let apks: Vec<_> = CorpusGenerator::case_study_apps()
            .iter()
            .map(|a| a.build_apk())
            .collect();
        let db = analyzer.analyze_batch(&apks).unwrap();
        assert_eq!(db.len(), 3);
        let json = db.to_json().unwrap();
        assert!(json.contains("com.dropbox.android"));
        let restored = SignatureDatabase::from_json(&json).unwrap();
        assert_eq!(restored, db);
        assert!(SignatureDatabase::from_json("{not json").is_err());
    }

    #[test]
    fn resolve_stack_maps_indexes_back_to_signatures() {
        let apk = CorpusGenerator::solcalendar().build_apk();
        let analyzer = OfflineAnalyzer::new();
        let mut db = SignatureDatabase::new();
        let hash = analyzer.analyze_into(&apk, &mut db).unwrap();
        let (_, signatures) = analyzer.analyze(&apk).unwrap();

        let indexes: Vec<u32> = vec![0, 2, 1];
        let resolved = db.resolve_stack(hash.tag(), &indexes).unwrap();
        assert_eq!(resolved[0], signatures[0]);
        assert_eq!(resolved[1], signatures[2]);
        assert_eq!(resolved[2], signatures[1]);
    }

    #[test]
    fn resolve_stack_rejects_unknown_tag_and_index() {
        let db = SignatureDatabase::new();
        let tag = ApkHash::digest(b"unknown").tag();
        assert!(db.resolve_stack(tag, &[0]).is_err());

        let apk = CorpusGenerator::box_app().build_apk();
        let mut db = SignatureDatabase::new();
        let hash = OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let huge_index = 1_000_000;
        assert!(db.resolve_stack(hash.tag(), &[huge_index]).is_err());
    }

    #[test]
    fn entries_record_multidex_and_package_name() {
        let apk = CorpusGenerator::dropbox().as_multidex().build_apk();
        let mut db = SignatureDatabase::new();
        let hash = OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let entry = db.entry(hash.tag()).unwrap();
        assert!(entry.multidex);
        assert_eq!(entry.package_name, "com.dropbox.android");
        assert!(db.contains(hash.tag()));
        assert!(!db.has_tag_collision());
    }

    fn sig(descriptor: &str) -> MethodSignature {
        descriptor.parse().unwrap()
    }

    #[test]
    fn colliding_tags_are_detected_and_first_entry_is_kept() {
        // Two distinct "apks" whose digests share the leading 8 bytes.
        let mut first_hash = [0xAB; 16];
        first_hash[15] = 0x01;
        let mut second_hash = [0xAB; 16];
        second_hash[15] = 0x02;
        let first = ApkHash::from_bytes(first_hash);
        let second = ApkHash::from_bytes(second_hash);
        assert_eq!(first.tag(), second.tag());

        let mut db = SignatureDatabase::new();
        assert!(db
            .insert(first, "com.first.app", false, vec![sig("La/B;->m()V")])
            .is_none());
        let collision = db
            .insert(second, "com.second.app", false, vec![sig("Lc/D;->n()V")])
            .expect("second insert must surface the collision");
        assert_eq!(collision.tag, first.tag().to_hex());
        assert_eq!(collision.existing_apk_hash, first.to_hex());
        assert_eq!(collision.rejected_apk_hash, second.to_hex());
        assert_eq!(collision.rejected_package, "com.second.app");

        // The §VII collision case is now observable.
        assert!(db.has_tag_collision());
        assert_eq!(db.collisions().len(), 1);
        // The existing app keeps resolving through the original table.
        let entry = db.entry(first.tag()).unwrap();
        assert_eq!(entry.package_name, "com.first.app");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn reanalyzing_the_same_apk_is_not_a_collision() {
        let apk = CorpusGenerator::dropbox().build_apk();
        let mut db = SignatureDatabase::new();
        let analyzer = OfflineAnalyzer::new();
        analyzer.analyze_into(&apk, &mut db).unwrap();
        analyzer.analyze_into(&apk, &mut db).unwrap();
        assert_eq!(db.len(), 1);
        assert!(!db.has_tag_collision());
        assert!(db.collisions().is_empty());
    }

    #[test]
    fn collisions_survive_json_roundtrip() {
        let mut db = SignatureDatabase::new();
        let mut a = [0x11; 16];
        a[15] = 1;
        let mut b = [0x11; 16];
        b[15] = 2;
        db.insert(ApkHash::from_bytes(a), "a", false, vec![]);
        db.insert(ApkHash::from_bytes(b), "b", false, vec![]);
        let restored = SignatureDatabase::from_json(&db.to_json().unwrap()).unwrap();
        assert_eq!(restored, db);
        assert!(restored.has_tag_collision());
    }

    #[test]
    fn compiled_db_resolves_identically_to_interchange_form() {
        let analyzer = OfflineAnalyzer::new();
        let apks: Vec<_> = CorpusGenerator::case_study_apps()
            .iter()
            .map(|a| a.build_apk())
            .collect();
        let db = analyzer.analyze_batch(&apks).unwrap();
        let compiled = CompiledSignatureDb::compile(&db);
        assert_eq!(compiled.len(), db.len());

        for apk in &apks {
            let tag = apk.hash().tag();
            assert!(compiled.contains(tag));
            let entry = compiled.entry(tag).unwrap();
            assert_eq!(entry.tag(), tag);
            assert_eq!(entry.apk_hash(), Some(apk.hash()));
            let count = entry.signature_count();
            assert!(count > 0);
            let indexes: Vec<u32> = (0..count.min(20) as u32).collect();
            let interpreted = db.resolve_stack(tag, &indexes).unwrap();
            let fast = compiled.resolve_stack(tag, &indexes).unwrap();
            assert_eq!(interpreted.len(), fast.len());
            for (a, b) in interpreted.iter().zip(fast) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn compiled_db_rejects_unknown_tags_and_dangling_indexes() {
        let apk = CorpusGenerator::box_app().build_apk();
        let mut db = SignatureDatabase::new();
        let hash = OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let compiled = CompiledSignatureDb::compile(&db);

        assert!(compiled
            .resolve_stack(ApkHash::digest(b"unknown").tag(), &[0])
            .is_err());
        assert!(compiled.resolve_stack(hash.tag(), &[1_000_000]).is_err());
        let entry = compiled.entry(hash.tag()).unwrap();
        assert!(entry.validate_indexes(&[0]).is_ok());
        assert!(entry.validate_indexes(&[0, 9_999_999]).is_err());
        assert!(entry.signature(9_999_999).is_none());
    }

    #[test]
    fn compiled_db_marks_unparseable_descriptors_malformed() {
        let mut db = SignatureDatabase::new();
        db.insert(
            ApkHash::digest(b"app"),
            "com.app",
            false,
            vec![sig("La/B;->m()V")],
        );
        let mut json = db.to_json().unwrap();
        // Corrupt the stored descriptor to simulate a damaged database file.
        json = json.replace("La/B;->m()V", "not a descriptor");
        let damaged = SignatureDatabase::from_json(&json).unwrap();
        let compiled = CompiledSignatureDb::compile(&damaged);
        let tag = ApkHash::digest(b"app").tag();
        let err = compiled.resolve_stack(tag, &[0]).unwrap_err();
        assert!(matches!(err, Error::Malformed { .. }));
        // Same classification as the interpretive resolver.
        let legacy_err = damaged.resolve_stack(tag, &[0]).unwrap_err();
        assert!(matches!(legacy_err, Error::Malformed { .. }));
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("bp-core-offline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("signatures.json");
        let apk = CorpusGenerator::dropbox().build_apk();
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        db.save(&path).unwrap();
        let loaded = SignatureDatabase::load(&path).unwrap();
        assert_eq!(loaded, db);
        std::fs::remove_file(&path).ok();
    }
}
