//! Byte-level ingress boundary: wire codec and replayable captures.
//!
//! Everything upstream of the enforcement plane in this workspace trades in
//! structured [`Ipv4Packet`]s, but the appliance the paper describes sits on
//! a wire: what arrives is bytes, and every malformed frame is an attack
//! surface.  This module is the single crossing point between the two
//! worlds:
//!
//! * [`encode`] / [`encode_into`] — serialize a packet to its RFC 791 wire
//!   form (delegating to [`Ipv4Packet::write_wire_bytes`]), preserving the
//!   non-conforming shapes adversarial traffic needs: duplicate context
//!   options and non-zero data trailing the End-of-List marker.
//! * [`WireFrame`] — a zero-copy validated view over a `&[u8]` frame.  All
//!   header, checksum and option-geometry validation happens against the
//!   borrowed bytes; nothing is allocated until [`WireFrame::to_packet`]
//!   materializes the packet that feeds the enforcer's decode scratch.
//! * [`WireError`] — the typed, frame-ordered decode failure taxonomy
//!   (re-exported from `bp-types`).  Malformed bytes never panic and never
//!   pass: the enforcer turns each failure into a fail-closed drop verdict
//!   whose reason is [`WireError::drop_reason`], counted in
//!   `EnforcerStats::dropped_wire`.
//! * [`CaptureWriter`] / [`CaptureReader`] — a length-prefixed capture
//!   format (seed + clock header, then per-tick tagged frames) so scenario
//!   traffic records once and replays as raw bytes through the same ingress
//!   path, byte-identically, on any shard count.
//!
//! # Examples
//!
//! Round trip through the codec:
//!
//! ```
//! use bp_core::wire;
//! use bp_netsim::addr::Endpoint;
//! use bp_netsim::packet::Ipv4Packet;
//!
//! let packet = Ipv4Packet::new(
//!     Endpoint::new([10, 0, 0, 1], 40_000),
//!     Endpoint::new([198, 51, 100, 7], 443),
//!     b"hello".to_vec(),
//! );
//! let bytes = wire::encode(&packet);
//! assert_eq!(wire::decode_frame(&bytes).unwrap(), packet);
//! ```
//!
//! Malformed bytes fail closed with a typed reason:
//!
//! ```
//! use bp_core::wire::{self, WireError};
//!
//! assert_eq!(wire::decode_frame(&[0u8; 10]), Err(WireError::TruncatedHeader));
//! ```

use std::io::{self, Read, Write};

use bp_netsim::addr::Endpoint;
use bp_netsim::options::{IpOption, IpOptionKind, IpOptions};
use bp_netsim::packet::{Ipv4Packet, Protocol};
pub use bp_types::wire::{WireError, MAX_OPTIONS_AREA};
use bp_types::wire::{OPT_END_OF_LIST, OPT_NOOP};

/// Minimum decodable frame: 20-byte base header plus the abbreviated 4-byte
/// transport header (source and destination ports).
pub const MIN_FRAME_LEN: usize = Ipv4Packet::BASE_HEADER_LEN + 4;

/// Serialize `packet` to its wire form.
///
/// Unlike the normalizing `Ipv4Packet::to_bytes`, this preserves a set
/// trailing-data flag as post-EOL non-zero padding, so
/// `decode_frame(encode(p)) == p` holds for every expressible packet,
/// including the covert-channel and duplicate-option adversarial shapes.
pub fn encode(packet: &Ipv4Packet) -> Vec<u8> {
    packet.wire_bytes()
}

/// Serialize `packet` into `out` (cleared first) — the reusable-buffer
/// variant of [`encode`] for recording loops.
pub fn encode_into(packet: &Ipv4Packet, out: &mut Vec<u8>) {
    packet.write_wire_bytes(out);
}

/// RFC 1071 ones-complement checksum over `bytes` as they appear on the
/// wire.  A header with a correct embedded checksum field sums to zero.
///
/// Public so tampering tests and fixture generators can forge or repair
/// checksums without reaching into the packet structs.
pub fn rfc1071_checksum(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = bytes.chunks_exact(2);
    for pair in &mut chunks {
        sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A zero-copy validated view over one wire frame.
///
/// [`WireFrame::parse`] runs every check the ingress boundary needs —
/// geometry, checksum, protocol, option layout — against the borrowed bytes
/// without allocating.  A parsed frame is guaranteed materializable:
/// [`WireFrame::to_packet`] cannot fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFrame<'a> {
    frame: &'a [u8],
    header_len: usize,
    protocol: Protocol,
    trailing_data: bool,
}

impl<'a> WireFrame<'a> {
    /// Validate `frame` as one wire packet.
    ///
    /// Checks run in frame order and the first failure wins, so every
    /// malformed input maps to exactly one [`WireError`] — the attribution
    /// the malformed-bytes corpus pins down:
    ///
    /// 1. shorter than [`MIN_FRAME_LEN`] → [`WireError::TruncatedHeader`]
    /// 2. version nibble ≠ 4 → [`WireError::BadVersion`]
    /// 3. IHL outside 20..=60 bytes → [`WireError::BadIhl`]
    /// 4. frame shorter than IHL + ports → [`WireError::TruncatedFrame`]
    /// 5. header checksum mismatch → [`WireError::BadChecksum`]
    /// 6. protocol not TCP/UDP → [`WireError::UnknownProtocol`]
    /// 7. option missing its length byte → [`WireError::OptionTruncated`],
    ///    length byte < 2 → [`WireError::BadOptionLength`], length past the
    ///    area end → [`WireError::OptionOverrun`]
    /// 8. total-length field disagreeing with the frame →
    ///    [`WireError::LengthMismatch`]
    ///
    /// Non-zero bytes after an End-of-List marker are *not* an error: RFC
    /// 791 calls them padding, BorderPatrol calls them a covert channel
    /// (paper §IV-A4).  They decode into the trailing-data conformance flag
    /// and the *enforcement* layer decides their fate.
    ///
    /// # Errors
    ///
    /// The first failing check above; never panics on any input.
    pub fn parse(frame: &'a [u8]) -> Result<Self, WireError> {
        if frame.len() < MIN_FRAME_LEN {
            return Err(WireError::TruncatedHeader);
        }
        if frame[0] >> 4 != 4 {
            return Err(WireError::BadVersion);
        }
        let header_len = ((frame[0] & 0x0f) as usize) * 4;
        if !(Ipv4Packet::BASE_HEADER_LEN..=Ipv4Packet::BASE_HEADER_LEN + MAX_OPTIONS_AREA)
            .contains(&header_len)
        {
            return Err(WireError::BadIhl);
        }
        if frame.len() < header_len + 4 {
            return Err(WireError::TruncatedFrame);
        }
        if rfc1071_checksum(&frame[..header_len]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let protocol = Protocol::from_number(frame[9]).ok_or(WireError::UnknownProtocol)?;
        let trailing_data = validate_options_area(&frame[Ipv4Packet::BASE_HEADER_LEN..header_len])?;
        let total_len = u16::from_be_bytes([frame[2], frame[3]]) as usize;
        if total_len != frame.len() - 4 {
            // The abbreviated transport header (4 port bytes) is not part of
            // the IP total-length accounting; see Ipv4Packet::to_bytes.
            return Err(WireError::LengthMismatch);
        }
        Ok(WireFrame {
            frame,
            header_len,
            protocol,
            trailing_data,
        })
    }

    /// Header length in bytes (20 plus the options area).
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Transport protocol.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// IP identification field.
    pub fn identification(&self) -> u16 {
        u16::from_be_bytes([self.frame[4], self.frame[5]])
    }

    /// Time-to-live field.
    pub fn ttl(&self) -> u8 {
        self.frame[8]
    }

    /// Source endpoint (IP header address + abbreviated transport port).
    pub fn source(&self) -> Endpoint {
        Endpoint::new(
            [
                self.frame[12],
                self.frame[13],
                self.frame[14],
                self.frame[15],
            ],
            u16::from_be_bytes([self.frame[self.header_len], self.frame[self.header_len + 1]]),
        )
    }

    /// Destination endpoint.
    pub fn destination(&self) -> Endpoint {
        Endpoint::new(
            [
                self.frame[16],
                self.frame[17],
                self.frame[18],
                self.frame[19],
            ],
            u16::from_be_bytes([
                self.frame[self.header_len + 2],
                self.frame[self.header_len + 3],
            ]),
        )
    }

    /// The raw options area (between the base header and the ports).
    pub fn options_area(&self) -> &'a [u8] {
        &self.frame[Ipv4Packet::BASE_HEADER_LEN..self.header_len]
    }

    /// Whether non-zero bytes ride after the End-of-List marker — the
    /// covert-channel conformance signal.
    pub fn has_trailing_data(&self) -> bool {
        self.trailing_data
    }

    /// Payload bytes after the abbreviated transport header.
    pub fn payload(&self) -> &'a [u8] {
        &self.frame[self.header_len + 4..]
    }

    /// Iterate the options as `(type_byte, data)` pairs, skipping No-Op
    /// padding and stopping at End-of-List — the same normalization
    /// `IpOptions::parse` applies.  Geometry was validated by
    /// [`WireFrame::parse`], so the walk cannot run out of bounds.
    pub fn options(&self) -> impl Iterator<Item = (u8, &'a [u8])> {
        OptionsIter {
            area: self.options_area(),
            pos: 0,
        }
    }

    /// Materialize the borrowed frame into an owned [`Ipv4Packet`] — the
    /// structured form the enforcement plane inspects.  Infallible: every
    /// check already ran in [`WireFrame::parse`].
    pub fn to_packet(&self) -> Ipv4Packet {
        let mut options: IpOptions = self
            .options()
            .map(|(type_byte, data)| IpOption {
                kind: IpOptionKind::from_type_byte(type_byte),
                data: data.to_vec(),
            })
            .collect();
        if self.trailing_data {
            options.mark_trailing_data();
        }
        let mut packet = Ipv4Packet::with_protocol(
            self.source(),
            self.destination(),
            self.protocol,
            self.payload().to_vec(),
        );
        packet.set_identification(self.identification());
        packet.set_ttl(self.ttl());
        *packet.options_mut() = options;
        packet
    }
}

/// Validate the raw options area, returning whether non-zero trailing data
/// follows an End-of-List marker.
fn validate_options_area(area: &[u8]) -> Result<bool, WireError> {
    let mut pos = 0;
    while pos < area.len() {
        match area[pos] {
            OPT_END_OF_LIST => {
                return Ok(area[pos + 1..].iter().any(|&b| b != 0));
            }
            OPT_NOOP => pos += 1,
            _ => {
                if pos + 1 >= area.len() {
                    return Err(WireError::OptionTruncated);
                }
                let len = area[pos + 1] as usize;
                if len < 2 {
                    return Err(WireError::BadOptionLength);
                }
                if pos + len > area.len() {
                    return Err(WireError::OptionOverrun);
                }
                pos += len;
            }
        }
    }
    Ok(false)
}

struct OptionsIter<'a> {
    area: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for OptionsIter<'a> {
    type Item = (u8, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.area.len() {
            match self.area[self.pos] {
                OPT_END_OF_LIST => return None,
                OPT_NOOP => self.pos += 1,
                type_byte => {
                    let len = self.area[self.pos + 1] as usize;
                    let data = &self.area[self.pos + 2..self.pos + len];
                    self.pos += len;
                    return Some((type_byte, data));
                }
            }
        }
        None
    }
}

/// Decode one frame straight to an owned packet — [`WireFrame::parse`]
/// followed by [`WireFrame::to_packet`].
///
/// # Errors
///
/// Propagates the typed [`WireError`] of the first failing check.
pub fn decode_frame(frame: &[u8]) -> Result<Ipv4Packet, WireError> {
    WireFrame::parse(frame).map(|f| f.to_packet())
}

/// A decode failure inside a batch: which frame, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFailure {
    /// Index of the offending frame within the batch.
    pub index: usize,
    /// The typed decode failure.
    pub error: WireError,
}

/// Reusable batch decoder: splits a batch of raw frames into decoded
/// packets and typed failures, reusing its buffers across batches.
///
/// # Examples
///
/// ```
/// use bp_core::wire::{self, WireDecoder, WireError};
/// use bp_netsim::addr::Endpoint;
/// use bp_netsim::packet::Ipv4Packet;
///
/// let good = wire::encode(&Ipv4Packet::new(
///     Endpoint::new([10, 0, 0, 1], 40_000),
///     Endpoint::new([198, 51, 100, 7], 443),
///     vec![],
/// ));
/// let mut decoder = WireDecoder::new();
/// let (packets, failures) = decoder.decode_batch(&[&good, &[0u8; 3]]);
/// assert_eq!(packets.len(), 1);
/// assert_eq!(failures, [wire::WireFailure { index: 1, error: WireError::TruncatedHeader }]);
/// ```
#[derive(Debug, Default)]
pub struct WireDecoder {
    packets: Vec<Ipv4Packet>,
    failures: Vec<WireFailure>,
}

impl WireDecoder {
    /// A decoder with empty scratch buffers.
    pub fn new() -> Self {
        WireDecoder::default()
    }

    /// Decode `frames`, returning the packets that parsed (in frame order)
    /// and the typed failures (in frame order).  Never panics; a batch of
    /// garbage simply yields an empty packet slice and one failure per
    /// frame.
    pub fn decode_batch(&mut self, frames: &[&[u8]]) -> (&[Ipv4Packet], &[WireFailure]) {
        self.packets.clear();
        self.failures.clear();
        for (index, frame) in frames.iter().enumerate() {
            match decode_frame(frame) {
                Ok(packet) => self.packets.push(packet),
                Err(error) => self.failures.push(WireFailure { index, error }),
            }
        }
        (&self.packets, &self.failures)
    }
}

// ---------------------------------------------------------------------------
// Replayable captures
// ---------------------------------------------------------------------------

/// Magic bytes opening every capture stream.
pub const CAPTURE_MAGIC: [u8; 6] = *b"BPCAP\0";

/// Capture format version this build writes and reads.
pub const CAPTURE_VERSION: u16 = 1;

/// Fixed-size capture header: enough to reproduce the recorded run.
///
/// `seed` and `tick_millis` pin the scenario's deterministic inputs;
/// `ticks` pins its length, so a replayer can drive the virtual clock
/// through exactly the recorded schedule even for ticks that carried no
/// frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureHeader {
    /// RNG seed the recorded scenario ran with.
    pub seed: u64,
    /// Virtual milliseconds per tick.
    pub tick_millis: u64,
    /// Number of ticks the recorded run executed.
    pub ticks: u32,
}

const CAPTURE_HEADER_LEN: usize = 6 + 2 + 8 + 8 + 4;
const FRAME_PREFIX_LEN: usize = 4 + 1 + 4;

/// Streaming capture writer: header up front, then length-prefixed tagged
/// frames.
///
/// Each record is `[tick: u32 LE][tag: u8][len: u32 LE][len frame bytes]`.
/// The tag attributes the frame to its traffic source (`0` = legitimate,
/// `k` = the scenario's `k-1`-th adversary) so a replayer can rebuild
/// per-adversary outcome accounting without re-running synthesis.
#[derive(Debug)]
pub struct CaptureWriter<W: Write> {
    sink: W,
    frames: u64,
}

impl<W: Write> CaptureWriter<W> {
    /// Write the capture header and return the writer.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn new(mut sink: W, header: CaptureHeader) -> io::Result<Self> {
        sink.write_all(&CAPTURE_MAGIC)?;
        sink.write_all(&CAPTURE_VERSION.to_le_bytes())?;
        sink.write_all(&header.seed.to_le_bytes())?;
        sink.write_all(&header.tick_millis.to_le_bytes())?;
        sink.write_all(&header.ticks.to_le_bytes())?;
        Ok(CaptureWriter { sink, frames: 0 })
    }

    /// Append one frame observed at `tick`, attributed by `tag`.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn record(&mut self, tick: u32, tag: u8, frame: &[u8]) -> io::Result<()> {
        self.sink.write_all(&tick.to_le_bytes())?;
        self.sink.write_all(&[tag])?;
        self.sink.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.sink.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames recorded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flush and return the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Why a capture stream failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureError {
    /// The stream does not start with [`CAPTURE_MAGIC`].
    BadMagic,
    /// The stream's version is not [`CAPTURE_VERSION`].
    UnsupportedVersion(u16),
    /// The stream ended inside the header or a frame record.
    Truncated,
    /// A frame record names a tick at or past the header's tick count.
    TickOutOfRange {
        /// The offending record's tick.
        tick: u32,
        /// The header's tick count.
        ticks: u32,
    },
    /// Frame records are not sorted by tick (replay walks them in order).
    OutOfOrder,
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::BadMagic => write!(f, "not a BPCAP capture (bad magic)"),
            CaptureError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported capture version {v} (expected {CAPTURE_VERSION})"
                )
            }
            CaptureError::Truncated => write!(f, "capture truncated mid-header or mid-frame"),
            CaptureError::TickOutOfRange { tick, ticks } => {
                write!(f, "frame at tick {tick} but capture declares {ticks} ticks")
            }
            CaptureError::OutOfOrder => write!(f, "frame records not sorted by tick"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// One frame pulled out of a parsed capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureFrame<'a> {
    /// Tick the frame was observed at.
    pub tick: u32,
    /// Traffic-source tag (`0` = legitimate, `k` = adversary `k-1`).
    pub tag: u8,
    /// The raw wire bytes.
    pub bytes: &'a [u8],
}

struct FrameEntry {
    tick: u32,
    tag: u8,
    start: usize,
    len: usize,
}

/// A fully parsed capture: header plus an index over the frame bytes, which
/// stay in one arena so iteration is allocation-free.
pub struct CaptureReader {
    header: CaptureHeader,
    data: Vec<u8>,
    index: Vec<FrameEntry>,
}

impl CaptureReader {
    /// Parse a capture from an in-memory byte stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CaptureError`] describing the first structural problem;
    /// never panics on any input.
    pub fn parse(bytes: &[u8]) -> Result<Self, CaptureError> {
        if bytes.len() < CAPTURE_HEADER_LEN {
            return Err(if bytes.len() >= 6 && bytes[..6] != CAPTURE_MAGIC {
                CaptureError::BadMagic
            } else {
                CaptureError::Truncated
            });
        }
        if bytes[..6] != CAPTURE_MAGIC {
            return Err(CaptureError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        if version != CAPTURE_VERSION {
            return Err(CaptureError::UnsupportedVersion(version));
        }
        let seed = u64::from_le_bytes(bytes[8..16].try_into().expect("fixed-width header slice"));
        let tick_millis =
            u64::from_le_bytes(bytes[16..24].try_into().expect("fixed-width header slice"));
        let ticks = u32::from_le_bytes(bytes[24..28].try_into().expect("fixed-width header slice"));
        let header = CaptureHeader {
            seed,
            tick_millis,
            ticks,
        };

        let data = bytes[CAPTURE_HEADER_LEN..].to_vec();
        let mut index = Vec::new();
        let mut pos = 0;
        let mut last_tick = 0u32;
        while pos < data.len() {
            if data.len() - pos < FRAME_PREFIX_LEN {
                return Err(CaptureError::Truncated);
            }
            let tick =
                u32::from_le_bytes(data[pos..pos + 4].try_into().expect("fixed-width prefix"));
            let tag = data[pos + 4];
            let len = u32::from_le_bytes(
                data[pos + 5..pos + 9]
                    .try_into()
                    .expect("fixed-width prefix"),
            ) as usize;
            pos += FRAME_PREFIX_LEN;
            if data.len() - pos < len {
                return Err(CaptureError::Truncated);
            }
            if tick >= ticks {
                return Err(CaptureError::TickOutOfRange { tick, ticks });
            }
            if tick < last_tick {
                return Err(CaptureError::OutOfOrder);
            }
            last_tick = tick;
            index.push(FrameEntry {
                tick,
                tag,
                start: pos,
                len,
            });
            pos += len;
        }
        Ok(CaptureReader {
            header,
            data,
            index,
        })
    }

    /// Read and parse a capture from any reader (e.g. a file).
    ///
    /// # Errors
    ///
    /// I/O errors from the reader; parse failures surface as
    /// [`io::ErrorKind::InvalidData`] wrapping the [`CaptureError`].
    pub fn from_reader<R: Read>(mut reader: R) -> io::Result<Self> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        CaptureReader::parse(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// The capture header.
    pub fn header(&self) -> CaptureHeader {
        self.header
    }

    /// Number of frames in the capture.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the capture holds no frames.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Iterate the recorded frames in capture order.
    pub fn frames(&self) -> impl Iterator<Item = CaptureFrame<'_>> {
        self.index.iter().map(|e| CaptureFrame {
            tick: e.tick,
            tag: e.tag,
            bytes: &self.data[e.start..e.start + e.len],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> Ipv4Packet {
        let mut packet = Ipv4Packet::with_protocol(
            Endpoint::new([10, 1, 2, 3], 33_000),
            Endpoint::new([198, 51, 100, 7], 443),
            Protocol::Udp,
            b"query".to_vec(),
        );
        packet.set_identification(0x1234);
        packet.set_ttl(17);
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::BorderPatrolContext, vec![1, 2, 3, 4]).unwrap())
            .unwrap();
        packet
    }

    #[test]
    fn codec_round_trips_a_tagged_packet() {
        let packet = sample_packet();
        let bytes = encode(&packet);
        let frame = WireFrame::parse(&bytes).unwrap();
        assert_eq!(frame.protocol(), Protocol::Udp);
        assert_eq!(frame.ttl(), 17);
        assert_eq!(frame.identification(), 0x1234);
        assert_eq!(frame.payload(), b"query");
        assert!(!frame.has_trailing_data());
        assert_eq!(frame.to_packet(), packet);
    }

    #[test]
    fn codec_round_trips_trailing_data_and_duplicates() {
        let mut packet = sample_packet();
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::BorderPatrolContext, vec![9, 9]).unwrap())
            .unwrap();
        packet.options_mut().mark_trailing_data();
        let bytes = encode(&packet);
        let decoded = decode_frame(&bytes).unwrap();
        assert!(decoded.options().has_trailing_data());
        assert_eq!(
            decoded.options().count(IpOptionKind::BorderPatrolContext),
            2
        );
        assert_eq!(decoded, packet);
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let packet = sample_packet();
        let mut buf = vec![0xAA; 3];
        encode_into(&packet, &mut buf);
        assert_eq!(buf, encode(&packet));
    }

    #[test]
    fn each_error_variant_is_reachable() {
        let good = encode(&sample_packet());

        assert_eq!(WireFrame::parse(&[]), Err(WireError::TruncatedHeader));
        assert_eq!(
            WireFrame::parse(&good[..MIN_FRAME_LEN - 1]),
            Err(WireError::TruncatedHeader)
        );

        let mut bad = good.clone();
        bad[0] = 0x65; // version 6
        assert_eq!(WireFrame::parse(&bad), Err(WireError::BadVersion));

        let mut bad = good.clone();
        bad[0] = 0x44; // IHL 16 bytes < base header
        assert_eq!(WireFrame::parse(&bad), Err(WireError::BadIhl));

        let mut bad = good.clone();
        bad[0] = 0x4f; // IHL 60 bytes, frame too short for it
        assert_eq!(WireFrame::parse(&bad), Err(WireError::TruncatedFrame));

        let mut bad = good.clone();
        bad[8] ^= 0xff; // corrupt TTL without repairing the checksum
        assert_eq!(WireFrame::parse(&bad), Err(WireError::BadChecksum));

        let mut bad = good.clone();
        bad[9] = 89; // OSPF; repair the checksum so only the protocol is wrong
        patch_checksum(&mut bad);
        assert_eq!(WireFrame::parse(&bad), Err(WireError::UnknownProtocol));

        let mut bad = good.clone();
        let area_start = Ipv4Packet::BASE_HEADER_LEN;
        bad[area_start + 1] = 0; // context option claims zero length
        patch_checksum(&mut bad);
        assert_eq!(WireFrame::parse(&bad), Err(WireError::BadOptionLength));

        let mut bad = good.clone();
        bad[area_start + 1] = 41; // context option overruns the area
        patch_checksum(&mut bad);
        assert_eq!(WireFrame::parse(&bad), Err(WireError::OptionOverrun));

        let mut bad = good.clone();
        let header_len = ((bad[0] & 0x0f) as usize) * 4;
        for b in &mut bad[area_start..header_len] {
            *b = OPT_NOOP;
        }
        bad[header_len - 1] = bp_types::wire::OPT_TIMESTAMP; // final byte: option with no length byte
        patch_checksum(&mut bad);
        assert_eq!(WireFrame::parse(&bad), Err(WireError::OptionTruncated));

        let mut bad = good.clone();
        let total = u16::from_be_bytes([bad[2], bad[3]]) + 1;
        bad[2..4].copy_from_slice(&total.to_be_bytes());
        patch_checksum(&mut bad);
        assert_eq!(WireFrame::parse(&bad), Err(WireError::LengthMismatch));
    }

    fn patch_checksum(frame: &mut [u8]) {
        let header_len = ((frame[0] & 0x0f) as usize) * 4;
        frame[10] = 0;
        frame[11] = 0;
        let ck = rfc1071_checksum(&frame[..header_len]);
        frame[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    #[test]
    fn decoder_splits_batches_and_reuses_buffers() {
        let good = encode(&sample_packet());
        let mut decoder = WireDecoder::new();
        let (packets, failures) = decoder.decode_batch(&[&good, &[0u8; 2], &good]);
        assert_eq!(packets.len(), 2);
        assert_eq!(
            failures,
            [WireFailure {
                index: 1,
                error: WireError::TruncatedHeader
            }]
        );
        let (packets, failures) = decoder.decode_batch(&[&good]);
        assert_eq!(packets.len(), 1);
        assert!(failures.is_empty());
    }

    #[test]
    fn capture_round_trips_header_and_frames() {
        let frame_a = encode(&sample_packet());
        let header = CaptureHeader {
            seed: 0xdead_beef,
            tick_millis: 250,
            ticks: 4,
        };
        let mut writer = CaptureWriter::new(Vec::new(), header).unwrap();
        writer.record(0, 0, &frame_a).unwrap();
        writer.record(0, 1, &[1, 2, 3]).unwrap();
        writer.record(3, 0, &frame_a).unwrap();
        assert_eq!(writer.frames(), 3);
        let bytes = writer.finish().unwrap();

        let reader = CaptureReader::parse(&bytes).unwrap();
        assert_eq!(reader.header(), header);
        assert_eq!(reader.len(), 3);
        let frames: Vec<_> = reader.frames().collect();
        assert_eq!(frames[0].tick, 0);
        assert_eq!(frames[0].tag, 0);
        assert_eq!(frames[0].bytes, &frame_a[..]);
        assert_eq!(frames[1].tag, 1);
        assert_eq!(frames[1].bytes, &[1, 2, 3]);
        assert_eq!(frames[2].tick, 3);
    }

    #[test]
    fn capture_parse_fails_closed_on_malformed_streams() {
        let header = CaptureHeader {
            seed: 7,
            tick_millis: 100,
            ticks: 2,
        };
        let mut writer = CaptureWriter::new(Vec::new(), header).unwrap();
        writer.record(1, 0, &[5, 6, 7]).unwrap();
        let bytes = writer.finish().unwrap();

        assert_eq!(
            CaptureReader::parse(&[]).err(),
            Some(CaptureError::Truncated)
        );
        assert_eq!(
            CaptureReader::parse(b"NOTCAP--------------------------").err(),
            Some(CaptureError::BadMagic)
        );
        let mut bad = bytes.clone();
        bad[6] = 9; // version 9
        assert_eq!(
            CaptureReader::parse(&bad).err(),
            Some(CaptureError::UnsupportedVersion(9))
        );
        let mut bad = bytes.clone();
        bad.truncate(bytes.len() - 1);
        assert_eq!(
            CaptureReader::parse(&bad).err(),
            Some(CaptureError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[CAPTURE_HEADER_LEN] = 2; // tick 2 >= declared 2 ticks
        assert_eq!(
            CaptureReader::parse(&bad).err(),
            Some(CaptureError::TickOutOfRange { tick: 2, ticks: 2 })
        );

        let mut writer = CaptureWriter::new(Vec::new(), header).unwrap();
        writer.record(1, 0, &[]).unwrap();
        writer.record(0, 0, &[]).unwrap();
        let bytes = writer.finish().unwrap();
        assert_eq!(
            CaptureReader::parse(&bytes).err(),
            Some(CaptureError::OutOfOrder)
        );
    }
}
