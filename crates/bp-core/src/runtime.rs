//! The persistent data-plane worker runtime.
//!
//! [`ShardedEnforcer::inspect_batch`] historically paid a
//! `std::thread::scope` spawn/join of one OS thread per shard on **every
//! batch** — tolerable for the 95k-packet scenario sweeps, ruinous in the
//! small-batch regime an ingress NFQUEUE actually delivers (a handful of
//! packets per kernel wakeup), where thread creation dwarfs inspection.
//! This module replaces that model with a worker pool of **long-lived
//! threads, one per shard**, fed through bounded in-repo SPSC ring buffers
//! ([`spsc_ring`]) carrying packet-index slices:
//!
//! ```text
//!           inspect_batch(&[pkt; N])
//!                 │  partition by flow into per-shard index buffers
//!                 │  (reused across batches, no per-batch allocation)
//!                 ▼
//!   ┌─ SPSC ring ─▶ worker 0 ── owns shard 0 flow table / scratch ─┐
//!   ├─ SPSC ring ─▶ worker 1 ── owns shard 1 flow table / scratch ─┤ verdicts
//!   ├─ SPSC ring ─▶ …                                              ├─ written
//!   └─ (inline)  ─▶ submitter runs the last busy partition itself ─┘ in place
//!                 │
//!                 ▼  completion countdown → unpark the submitter
//! ```
//!
//! * **Idle is free**: a worker that drains its ring parks
//!   ([`std::thread::park`]); a quiet enforcer burns zero CPU.  The producer
//!   side unparks after every push, and the park token makes the
//!   check-then-park race benign.
//! * **Verdicts in place**: workers write each packet's verdict directly
//!   into the caller's pre-sized slot array — no per-shard result vectors,
//!   no reassembly pass.
//! * **Hot-swap safe**: workers revalidate the enforcer's table generation
//!   per packet exactly as the scoped path did, so a control-plane
//!   [`commit`](crate::control::Transaction::commit) mid-batch takes effect
//!   on every later packet of that batch.
//! * **Shutdown joins**: dropping the pool (i.e. the owning
//!   [`ShardedEnforcer`]) sends every worker a shutdown message and joins it —
//!   no detached threads outlive the enforcer.
//!
//! The scoped-spawn path is retained behind [`BatchRuntime::Scoped`] as the
//! equivalence baseline; the pool is the default
//! ([`BatchRuntime::Pool`]).
//!
//! # Safety
//!
//! This is the one module in `bp-core` that uses `unsafe` (the crate is
//! otherwise `deny(unsafe_code)`).  Every unsafe block implements a single
//! borrowed-batch handoff protocol, whose soundness rests on one invariant:
//! **a submitted batch's borrows outlive the submission call.**  The
//! submitter keeps the batch's packets, index buffers, verdict slots and
//! completion counter alive until every dispatched worker has counted down
//! — including on the panic path (a drop guard waits before unwinding) —
//! so the raw pointers a batch job carries are live for exactly as long as
//! any worker can dereference them.
//!
//! [`ShardedEnforcer`]: crate::enforcer::ShardedEnforcer
//! [`ShardedEnforcer::inspect_batch`]: crate::enforcer::ShardedEnforcer::inspect_batch

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle, Thread};

use parking_lot::Mutex;

use bp_netsim::netfilter::Verdict;
use bp_netsim::packet::Ipv4Packet;

use crate::enforcer::EnforcerCore;

/// How [`ShardedEnforcer::inspect_batch`] fans a batch across its shards.
///
/// [`ShardedEnforcer::inspect_batch`]: crate::enforcer::ShardedEnforcer::inspect_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchRuntime {
    /// The persistent per-shard worker pool (the default): long-lived
    /// threads fed through SPSC rings, parked when idle.  Batch submission
    /// costs a wake/park handshake instead of a thread spawn/join.
    ///
    /// Submission is serialized: concurrent `inspect_batch` callers take
    /// turns for the full batch (the pool's partition buffers and rings are
    /// single-producer).  Per-shard state serializes cross-batch work under
    /// [`Scoped`](BatchRuntime::Scoped) too, so in-batch parallelism is
    /// identical; what `Scoped` additionally allows is pipeline *overlap*
    /// between two in-flight batches touching disjoint shards — deployments
    /// with many ingest threads on large batches can prefer it for that.
    #[default]
    Pool,
    /// The original scoped-spawn model: one fresh OS thread per busy shard
    /// per batch.  Kept as the equivalence and performance baseline, and
    /// for multi-ingest-thread deployments that want concurrent batches to
    /// overlap across disjoint shards.
    Scoped,
}

impl BatchRuntime {
    /// Stable lowercase label (used by bench reports).
    pub fn label(self) -> &'static str {
        match self {
            BatchRuntime::Pool => "pool",
            BatchRuntime::Scoped => "scoped",
        }
    }
}

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

/// Shared storage of one single-producer single-consumer ring.
struct RingShared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will pop; monotonically increasing (wrapping),
    /// masked into the slot array.
    head: AtomicUsize,
    /// Next slot the producer will fill; monotonically increasing
    /// (wrapping).
    tail: AtomicUsize,
}

// SAFETY: the ring hands each `T` from exactly one producer to exactly one
// consumer (enforced by the unique `SpscSender` / `SpscReceiver` handles
// taking `&mut self`), so sharing the storage across those two threads is
// sound for any `T: Send`.
unsafe impl<T: Send> Send for RingShared<T> {}
// SAFETY: same argument as Send above — the unique handles make all slot
// accesses exclusive even through a shared reference.
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> RingShared<T> {
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }
}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Drop any values pushed but never popped.  `&mut self` proves both
        // handles are gone, so the plain loads are exact.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mask = self.mask();
        let mut at = head;
        while at != tail {
            // SAFETY: slots in [head, tail) were written by a push and never
            // consumed by a pop.
            unsafe { (*self.slots[at & mask].get()).assume_init_drop() };
            at = at.wrapping_add(1);
        }
    }
}

/// Producer handle of a [`spsc_ring`].  Not clonable: the single producer is
/// whoever owns this value.
pub struct SpscSender<T> {
    ring: Arc<RingShared<T>>,
}

/// Consumer handle of a [`spsc_ring`].  Not clonable: the single consumer is
/// whoever owns this value.
pub struct SpscReceiver<T> {
    ring: Arc<RingShared<T>>,
}

/// Create a bounded single-producer single-consumer ring buffer.
///
/// `capacity` is rounded up to the next power of two (minimum 2) so index
/// masking replaces modulo in the hot path.  The producer/consumer
/// discipline is enforced by the handle types: both endpoints take
/// `&mut self` and neither is clonable, so misuse is a compile error, not a
/// data race.
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = bp_core::runtime::spsc_ring::<u32>(4);
/// assert!(tx.push(7).is_ok());
/// assert_eq!(rx.pop(), Some(7));
/// assert_eq!(rx.pop(), None);
/// ```
pub fn spsc_ring<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let capacity = capacity.next_power_of_two().max(2);
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(RingShared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscSender {
            ring: Arc::clone(&ring),
        },
        SpscReceiver { ring },
    )
}

impl<T> SpscSender<T> {
    /// Push `value`, or hand it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == ring.slots.len() {
            return Err(value);
        }
        // SAFETY: the slot at `tail` is unoccupied (checked above) and only
        // this producer writes slots; the Release store below publishes the
        // write to the consumer.
        unsafe { (*ring.slots[tail & ring.mask()].get()).write(value) };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(ring.head.load(Ordering::Acquire))
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity (rounded up at construction).
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

impl<T> SpscReceiver<T> {
    /// Pop the oldest value, if any.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the slot at `head` was published by the producer's Release
        // store (observed by the Acquire load above) and is consumed exactly
        // once: the store below retires the index before any further pop.
        let value = unsafe { (*ring.slots[head & ring.mask()].get()).assume_init_read() };
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail
            .load(Ordering::Acquire)
            .wrapping_sub(ring.head.load(Ordering::Relaxed))
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity (rounded up at construction).
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

// ---------------------------------------------------------------------------
// Borrowed batch handoff
// ---------------------------------------------------------------------------

/// A borrowed, indexable view of a packet batch.
///
/// The two batch entry points deliver packets as `&[Ipv4Packet]`
/// ([`ShardedEnforcer::inspect_batch`]) and `&mut [&mut Ipv4Packet]`
/// ([`QueueHandler::handle_batch_into`]); this view lets the partitioning and
/// inspection loops index either shape directly instead of collecting an
/// intermediate `Vec<&Ipv4Packet>` per batch.
///
/// # Safety contract
///
/// A `PacketSource` is a raw borrow: whoever constructs one must keep the
/// underlying slice alive and unmodified until the last [`PacketSource::get`]
/// call.  Within this crate that is guaranteed by the batch submission
/// protocol (the submitter outlives the batch).
///
/// [`ShardedEnforcer::inspect_batch`]: crate::enforcer::ShardedEnforcer::inspect_batch
/// [`QueueHandler::handle_batch_into`]: bp_netsim::netfilter::QueueHandler::handle_batch_into
#[derive(Clone, Copy)]
pub(crate) enum PacketSource {
    /// A contiguous slice of packets.
    Slice {
        /// First packet.
        ptr: *const Ipv4Packet,
        /// Packet count.
        len: usize,
    },
    /// A slice of packet references (the NFQUEUE batch shape).
    Refs {
        /// First packet pointer.
        ptr: *const *const Ipv4Packet,
        /// Packet count.
        len: usize,
    },
}

// SAFETY: a PacketSource only reads the packets it points at, and the
// submission protocol keeps them alive and unmutated for the lifetime of the
// batch; sharing the raw pointers across worker threads is therefore sound.
unsafe impl Send for PacketSource {}
// SAFETY: same argument as Send above — the view is read-only, so shared
// references add no new hazards.
unsafe impl Sync for PacketSource {}

impl PacketSource {
    /// View a contiguous packet slice.
    pub(crate) fn slice(packets: &[Ipv4Packet]) -> Self {
        PacketSource::Slice {
            ptr: packets.as_ptr(),
            len: packets.len(),
        }
    }

    /// View an NFQUEUE-style batch of exclusive packet references without
    /// collecting them.  The enforcer only ever reads through the view, so
    /// downgrading `&mut` to shared reads is sound (`&mut T` and `*const T`
    /// share one pointer layout).
    pub(crate) fn refs(packets: &[&mut Ipv4Packet]) -> Self {
        PacketSource::Refs {
            ptr: packets.as_ptr().cast::<*const Ipv4Packet>(),
            len: packets.len(),
        }
    }

    /// Number of packets in the batch.
    pub(crate) fn len(&self) -> usize {
        match *self {
            PacketSource::Slice { len, .. } | PacketSource::Refs { len, .. } => len,
        }
    }

    /// The packet at `index`.
    ///
    /// # Safety
    ///
    /// `index < self.len()`, and the borrowed batch must still be alive (see
    /// the type-level contract).  The returned lifetime is unbounded; the
    /// caller must not let it outlive the batch.
    pub(crate) unsafe fn get<'a>(&self, index: usize) -> &'a Ipv4Packet {
        debug_assert!(index < self.len());
        match *self {
            PacketSource::Slice { ptr, .. } => &*ptr.add(index),
            PacketSource::Refs { ptr, .. } => &**ptr.add(index),
        }
    }
}

/// Verdict slot array shared across the workers of one batch.  Each worker
/// writes only the slots of its own partition's packet indexes, so the
/// disjoint `*mut` writes never race.
#[derive(Clone, Copy)]
pub(crate) struct VerdictSlots(pub(crate) *mut Verdict);

// SAFETY: slots are written disjointly (each packet index belongs to exactly
// one shard partition) and the submitter does not read them until every
// worker has counted down.
unsafe impl Send for VerdictSlots {}
// SAFETY: same argument as Send above — partition disjointness, not
// reference uniqueness, is what prevents racing writes.
unsafe impl Sync for VerdictSlots {}

impl VerdictSlots {
    /// Store `verdict` for packet `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds of the batch the slots were sized for, the
    /// slot must be initialized (the submitter pre-fills the array), and no
    /// other thread may write the same `index`.
    pub(crate) unsafe fn set(&self, index: usize, verdict: Verdict) {
        *self.0.add(index) = verdict;
    }
}

// ---------------------------------------------------------------------------
// EnforcerCore batch entry points
// ---------------------------------------------------------------------------
//
// The batch loops that dereference borrowed-batch raw pointers live here —
// with the rest of the handoff protocol — rather than in `enforcer.rs`,
// keeping every `unsafe` in the crate inside this one audited module.

impl EnforcerCore {
    /// Inspect one shard's partition of a batch, writing each packet's
    /// verdict into its slot.  This is the shared inner loop of the pool
    /// workers, the scoped-spawn baseline and the submitter's inline
    /// partition.
    ///
    /// The shard's state is locked once per partition; the active tables are
    /// snapshotted once and revalidated per packet against the generation
    /// counter (one acquire load, no lock/refcount traffic), so a concurrent
    /// table installation still takes effect mid-batch — once the swap
    /// returns, no later packet is evaluated (or served from cache) under
    /// the old epoch.
    ///
    /// # Safety
    ///
    /// Every index must be `< source.len()`, the batch behind `source` must
    /// outlive the call, `slots` must point at `source.len()` initialized
    /// verdicts, and no other thread may write the slots of these indexes.
    pub(crate) unsafe fn run_partition(
        &self,
        shard: usize,
        source: PacketSource,
        indexes: &[u32],
        slots: VerdictSlots,
    ) {
        let shard = &self.shards[shard];
        // Shard lock order: scratch → drop_log → flow, matching
        // `EnforcerCore::inspect` — an inline inspect and a batch worker
        // contending for the same shard must never interleave acquisition.
        let mut scratch = shard.scratch.lock();
        let mut drop_log = shard.drop_log.lock();
        let mut flow = shard.flow.lock();
        let mut generation = self.tables_generation.load(Ordering::Acquire);
        let mut tables = self.tables();
        for &index in indexes {
            let current = self.tables_generation.load(Ordering::Acquire);
            if current != generation {
                generation = current;
                tables = self.tables();
            }
            let verdict = tables.inspect_flow_cached(
                source.get(index as usize),
                &mut flow,
                self.now(),
                &mut scratch,
                &shard.stats,
                &mut drop_log,
            );
            slots.set(index as usize, verdict);
        }
        // Publish once per partition, not per packet: the batch paths keep
        // telemetry out of the per-packet budget.  Still holding drop_log,
        // which is the telemetry single-writer token.
        shard.telemetry.publish(&shard.stats, tables.epoch());
    }

    /// The scoped-spawn batch baseline: partition by flow, spawn one scoped
    /// OS thread per busy shard, join.  Pays a thread spawn/join and fresh
    /// partition allocations on every batch — exactly the costs the
    /// [`BatchRuntime::Pool`] runtime eliminates — and is retained for
    /// equivalence testing and as the bench baseline.
    pub(crate) fn inspect_scoped(&self, source: PacketSource, out: &mut [Verdict]) {
        let shard_count = self.shards.len();
        let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for index in 0..source.len() {
            // SAFETY: `index < len` and the batch outlives this call.
            let packet = unsafe { source.get(index) };
            partitions[self.shard_for(packet)].push(index as u32);
        }
        let slots = VerdictSlots(out.as_mut_ptr());
        thread::scope(|scope| {
            for (shard, indexes) in partitions.iter().enumerate() {
                if indexes.is_empty() {
                    continue;
                }
                let slots = &slots;
                scope.spawn(move || {
                    // SAFETY: indexes are in bounds by construction, the
                    // batch outlives the scope, and partitions are disjoint
                    // so no slot is written twice.
                    unsafe { self.run_partition(shard, source, indexes, *slots) };
                });
            }
        });
    }

    /// The single-shard / tiny-batch path: inspect every packet of the
    /// batch inline, appending verdicts in input order.
    pub(crate) fn inspect_sequential(&self, source: PacketSource, verdicts: &mut Vec<Verdict>) {
        let len = source.len();
        verdicts.reserve(len);
        // Defer telemetry publication to batch end (one seqlock write per
        // touched shard, not per packet); shards are tracked in a bitmask
        // while the count fits one word, else every shard is published.
        let track_touched = self.shards.len() <= u64::BITS as usize;
        let mut touched: u64 = 0;
        for index in 0..len {
            // SAFETY: `index < len` and the caller's batch outlives this
            // call.
            let packet = unsafe { source.get(index) };
            let shard = self.shard_for(packet);
            if track_touched {
                touched |= 1 << shard;
            }
            verdicts.push(self.inspect_on_shard(packet, shard, false));
        }
        for shard in 0..self.shards.len() {
            if !track_touched || touched & (1 << shard) != 0 {
                self.publish_shard_telemetry(shard);
            }
        }
    }
}

/// Completion rendezvous of one submitted batch, owned by the submitter's
/// stack frame.
struct BatchSync {
    /// Dispatched partitions still running.
    pending: AtomicUsize,
    /// Set when a worker's partition panicked; re-raised by the submitter.
    poisoned: AtomicBool,
    /// The submitting thread, unparked by the final countdown.
    waiter: Thread,
}

/// One shard's share of a submitted batch: the packet view, this shard's
/// index slice (into the pool's reused partition buffer) and the shared
/// verdict slots.
struct BatchJob {
    source: PacketSource,
    indexes: *const u32,
    index_count: usize,
    slots: VerdictSlots,
    sync: *const BatchSync,
}

// SAFETY: every pointer in a BatchJob stays valid until the worker counts
// down `sync.pending` (the submitter — including its unwind path — waits for
// that), and the job is consumed by exactly one worker.
unsafe impl Send for BatchJob {}

/// What a worker pulls off its ring.
enum Message {
    /// Inspect one partition of a batch.
    Batch(BatchJob),
    /// Exit the worker loop (sent on pool drop).
    Shutdown,
}

/// Waits for the batch countdown even when the guarded scope unwinds: the
/// workers hold pointers into the submitter's frame (verdict slots,
/// partition buffers, the countdown itself), so returning — or panicking —
/// before they finish would free memory out from under them.
struct WaitForBatch<'a>(&'a BatchSync);

impl Drop for WaitForBatch<'_> {
    fn drop(&mut self) {
        while self.0.pending.load(Ordering::Acquire) != 0 {
            thread::park();
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Ring capacity per worker: submission is serialized (one batch in flight)
/// so a lane never holds more than one job plus, at teardown, one shutdown
/// message.
const LANE_CAPACITY: usize = 2;

/// One worker's submission lane: its ring producer plus its thread handle
/// for unparking.
struct Lane {
    jobs: SpscSender<Message>,
    worker: Thread,
}

/// Producer-side state, serialized by the submission lock: the per-worker
/// lanes and the reused per-shard partition buffers.
struct SubmitState {
    lanes: Vec<Lane>,
    partitions: Vec<Vec<u32>>,
}

/// The persistent per-shard worker pool (see the module docs).
///
/// Spawned lazily on the first pooled batch, dropped (shutdown + join) with
/// the owning [`ShardedEnforcer`](crate::enforcer::ShardedEnforcer).
pub(crate) struct WorkerPool {
    submit: Mutex<SubmitState>,
    handles: Vec<JoinHandle<()>>,
    /// Workers that have not yet exited their loop; drained to zero by the
    /// shutdown join.  Kept behind an `Arc` so tests can watch it across the
    /// pool's own drop.
    live_workers: Arc<AtomicUsize>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("live", &self.live_workers.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawn one worker per shard of `core`.
    pub(crate) fn spawn(core: &Arc<EnforcerCore>) -> WorkerPool {
        let shard_count = core.shard_count();
        let live_workers = Arc::new(AtomicUsize::new(shard_count));
        let mut lanes: Vec<Lane> = Vec::with_capacity(shard_count);
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let (jobs, ring) = spsc_ring::<Message>(LANE_CAPACITY);
            let worker_core = Arc::clone(core);
            let live = Arc::clone(&live_workers);
            let spawned = thread::Builder::new()
                .name(format!("bp-enforcer-shard-{shard}"))
                .spawn(move || worker_loop(worker_core, shard, ring, live));
            let handle = match spawned {
                Ok(handle) => handle,
                Err(error) => {
                    // Partial spawn (thread/resource exhaustion): shut down
                    // and join the workers already running before failing,
                    // so no detached thread outlives this call holding the
                    // core — the shutdown guarantee must hold on the error
                    // path too.
                    for lane in &mut lanes {
                        let _ = lane.jobs.push(Message::Shutdown);
                        lane.worker.unpark();
                    }
                    for handle in handles {
                        let _ = handle.join();
                    }
                    panic!("spawn enforcer shard worker: {error}");
                }
            };
            lanes.push(Lane {
                jobs,
                worker: handle.thread().clone(),
            });
            handles.push(handle);
        }
        WorkerPool {
            submit: Mutex::new(SubmitState {
                lanes,
                partitions: vec![Vec::new(); shard_count],
            }),
            handles,
            live_workers,
        }
    }

    /// Count of workers that have not yet exited (drops to zero once the
    /// pool's shutdown join completes).  Test-only observability for the
    /// no-leaked-threads guarantee.
    #[cfg(test)]
    pub(crate) fn live_workers(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.live_workers)
    }

    /// Inspect a batch on the pool: partition by flow, dispatch every busy
    /// shard but the last to its worker, run the last partition on the
    /// submitting thread, wait for the countdown.
    ///
    /// `out` must hold exactly `source.len()` initialized verdict slots;
    /// each is overwritten in place.  On the all-accept path this performs
    /// no allocation: the partition buffers are reused, the jobs are
    /// fixed-size ring slots and the verdicts land in `out`.
    pub(crate) fn inspect(&self, core: &EnforcerCore, source: PacketSource, out: &mut [Verdict]) {
        debug_assert_eq!(out.len(), source.len());
        let mut state = self.submit.lock();
        let SubmitState { lanes, partitions } = &mut *state;

        for partition in partitions.iter_mut() {
            partition.clear();
        }
        for index in 0..source.len() {
            // SAFETY: `index < len` and the caller's batch outlives this
            // call.
            let packet = unsafe { source.get(index) };
            partitions[core.shard_for(packet)].push(index as u32);
        }
        let Some(last_busy) = partitions.iter().rposition(|p| !p.is_empty()) else {
            return;
        };
        let busy = partitions.iter().filter(|p| !p.is_empty()).count();

        let sync = BatchSync {
            pending: AtomicUsize::new(busy - 1),
            poisoned: AtomicBool::new(false),
            waiter: thread::current(),
        };
        let slots = VerdictSlots(out.as_mut_ptr());
        {
            // The guard waits for every already-dispatched worker no matter
            // what panics below — workers hold pointers into this frame, so
            // unwinding past them would be a use-after-free, not a panic.
            let _wait = WaitForBatch(&sync);
            for (shard, partition) in partitions.iter().enumerate() {
                if partition.is_empty() || shard == last_busy {
                    continue;
                }
                let job = BatchJob {
                    source,
                    indexes: partition.as_ptr(),
                    index_count: partition.len(),
                    slots,
                    sync: &sync,
                };
                let lane = &mut lanes[shard];
                match lane.jobs.push(Message::Batch(job)) {
                    Ok(()) => lane.worker.unpark(),
                    // Unreachable while submission is serialized (the ring
                    // holds one job plus a shutdown message), but degrade to
                    // running the partition on the submitter rather than
                    // panicking mid-dispatch.  Count it down *first*: the
                    // countdown tracks work other threads owe this frame.
                    Err(Message::Batch(job)) => {
                        sync.pending.fetch_sub(1, Ordering::Release);
                        // SAFETY: same contract as the worker side — indexes
                        // in bounds, batch alive, partition disjoint.
                        unsafe {
                            let indexes = std::slice::from_raw_parts(job.indexes, job.index_count);
                            core.run_partition(shard, job.source, indexes, job.slots);
                        }
                    }
                    Err(Message::Shutdown) => {
                        unreachable!("submitter never enqueues shutdown")
                    }
                }
            }
            // SAFETY: indexes are in bounds by construction, the batch is
            // alive for the whole call, and `last_busy`'s indexes are
            // disjoint from every dispatched partition.
            unsafe { core.run_partition(last_busy, source, &partitions[last_busy], slots) };
        }
        if sync.poisoned.load(Ordering::Relaxed) {
            panic!("enforcer shard panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.submit.lock();
            for lane in &mut state.lanes {
                if lane.jobs.push(Message::Shutdown).is_err() {
                    unreachable!("worker lane overflow: no batch can be in flight during drop");
                }
                lane.worker.unpark();
            }
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a batch already poisoned the
            // batch that observed it; nothing useful to re-raise from drop.
            let _ = handle.join();
        }
    }
}

/// The body of one pool worker: drain the ring, park when idle, exit on
/// shutdown.
fn worker_loop(
    core: Arc<EnforcerCore>,
    shard: usize,
    mut jobs: SpscReceiver<Message>,
    live: Arc<AtomicUsize>,
) {
    loop {
        let Some(message) = jobs.pop() else {
            // Benign race with the producer's push+unpark: an unpark that
            // lands between our pop and this park leaves a token, so park
            // returns immediately and the next pop sees the job.
            thread::park();
            continue;
        };
        match message {
            Message::Shutdown => break,
            Message::Batch(job) => {
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: the submitter keeps the batch (packets, index
                    // slice, verdict slots) alive until we count down below.
                    unsafe {
                        let indexes = std::slice::from_raw_parts(job.indexes, job.index_count);
                        core.run_partition(shard, job.source, indexes, job.slots);
                    }
                }));
                // SAFETY: `sync` lives until `pending` reaches zero and the
                // submitter observes it — which cannot happen before the
                // fetch_sub below.
                let sync = unsafe { &*job.sync };
                if outcome.is_err() {
                    sync.poisoned.store(true, Ordering::Relaxed);
                }
                // Clone the waiter handle *before* counting down: the
                // countdown releases the submitter, whose frame (and with it
                // `sync`) may be gone by the time we unpark.
                let waiter = sync.waiter.clone();
                if sync.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    waiter.unpark();
                }
            }
        }
    }
    live.fetch_sub(1, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_roundtrips_in_order_and_reports_full() {
        let (mut tx, mut rx) = spsc_ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        assert!(tx.is_empty());
        for value in 0..4 {
            assert!(tx.push(value).is_ok());
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(tx.len(), 4);
        assert_eq!(rx.len(), 4);
        for value in 0..4 {
            assert_eq!(rx.pop(), Some(value));
        }
        assert!(rx.pop().is_none());
        assert!(rx.is_empty());
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc_ring::<u8>(3);
        assert_eq!(tx.capacity(), 4);
        let (tx, _rx) = spsc_ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn ring_wraps_around_many_times() {
        let (mut tx, mut rx) = spsc_ring::<usize>(2);
        for round in 0..1_000 {
            assert!(tx.push(round).is_ok());
            assert!(tx.push(round + 1).is_ok());
            assert_eq!(rx.pop(), Some(round));
            assert_eq!(rx.pop(), Some(round + 1));
        }
        assert!(rx.pop().is_none());
    }

    #[test]
    fn ring_transfers_across_threads_in_order() {
        const COUNT: u64 = 200_000;
        let (mut tx, mut rx) = spsc_ring::<u64>(64);
        let consumer = thread::spawn(move || {
            let mut expected = 0;
            while expected < COUNT {
                match rx.pop() {
                    Some(value) => {
                        assert_eq!(value, expected);
                        expected += 1;
                    }
                    None => thread::yield_now(),
                }
            }
            assert!(rx.pop().is_none());
        });
        let mut next = 0;
        while next < COUNT {
            if tx.push(next).is_ok() {
                next += 1;
            } else {
                thread::yield_now();
            }
        }
        consumer.join().unwrap();
    }

    #[test]
    fn ring_drops_unconsumed_values() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = spsc_ring::<Counted>(4);
        for _ in 0..3 {
            assert!(tx.push(Counted(Arc::clone(&counter))).is_ok());
        }
        drop(rx.pop());
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn batch_runtime_labels_are_stable() {
        assert_eq!(BatchRuntime::default(), BatchRuntime::Pool);
        assert_eq!(BatchRuntime::Pool.label(), "pool");
        assert_eq!(BatchRuntime::Scoped.label(), "scoped");
    }
}
