//! The persistent data-plane worker runtime.
//!
//! [`ShardedEnforcer::inspect_batch`] historically paid a
//! `std::thread::scope` spawn/join of one OS thread per shard on **every
//! batch** — tolerable for the 95k-packet scenario sweeps, ruinous in the
//! small-batch regime an ingress NFQUEUE actually delivers (a handful of
//! packets per kernel wakeup), where thread creation dwarfs inspection.
//! This module replaces that model with a worker pool of **long-lived
//! threads, one per shard**, fed through bounded in-repo SPSC ring buffers
//! ([`spsc_ring`]) carrying packet-index slices:
//!
//! ```text
//!           inspect_batch(&[pkt; N])
//!                 │  partition by flow into per-shard index buffers
//!                 │  (reused across batches, no per-batch allocation)
//!                 ▼
//!   ┌─ SPSC ring ─▶ worker 0 ── owns shard 0 flow table / scratch ─┐
//!   ├─ SPSC ring ─▶ worker 1 ── owns shard 1 flow table / scratch ─┤ verdicts
//!   ├─ SPSC ring ─▶ …                                              ├─ written
//!   └─ (inline)  ─▶ submitter runs the last busy partition itself ─┘ in place
//!                 │
//!                 ▼  completion countdown → unpark the submitter
//! ```
//!
//! * **Idle is free**: a worker that drains its ring parks
//!   ([`std::thread::park`]); a quiet enforcer burns zero CPU.  The producer
//!   side unparks after every push, and the park token makes the
//!   check-then-park race benign.
//! * **Verdicts in place**: workers write each packet's verdict directly
//!   into the caller's pre-sized slot array — no per-shard result vectors,
//!   no reassembly pass.
//! * **Hot-swap safe**: workers revalidate the enforcer's table generation
//!   per packet exactly as the scoped path did, so a control-plane
//!   [`commit`](crate::control::Transaction::commit) mid-batch takes effect
//!   on every later packet of that batch.
//! * **Self-healing**: a worker panic (injected by a
//!   [`FaultPlan`](crate::faults::FaultPlan) or real) never crosses the
//!   submitter.  The panicked partition's uninspected packets **fail
//!   closed** under `dropped_runtime_fault`, the worker thread is retired
//!   and respawned under a bounded backoff budget
//!   (`RESPAWN_BUDGET`), and a shard that exhausts the budget is
//!   **quarantined**: its partitions run inline on the submitting thread
//!   forever after.  A watchdog flags partitions stuck past
//!   `STALL_DEADLINE` into the shard's health state.  The enforcer keeps
//!   serving batches through all of it.
//! * **Shutdown joins**: dropping the pool (i.e. the owning
//!   [`ShardedEnforcer`]) sends every worker a shutdown message and joins it —
//!   no detached threads outlive the enforcer.
//!
//! The scoped-spawn path is retained behind [`BatchRuntime::Scoped`] as the
//! equivalence baseline; the pool is the default
//! ([`BatchRuntime::Pool`]).
//!
//! # Safety
//!
//! This is the one module in `bp-core` that uses `unsafe` (the crate is
//! otherwise `deny(unsafe_code)`).  Every unsafe block implements a single
//! borrowed-batch handoff protocol, whose soundness rests on one invariant:
//! **a submitted batch's borrows outlive the submission call.**  The
//! submitter keeps the batch's packets, index buffers, verdict slots and
//! completion counter alive until every dispatched worker has counted down
//! — including on the panic path (a drop guard waits before unwinding) —
//! so the raw pointers a batch job carries are live for exactly as long as
//! any worker can dereference them.
//!
//! [`ShardedEnforcer`]: crate::enforcer::ShardedEnforcer
//! [`ShardedEnforcer::inspect_batch`]: crate::enforcer::ShardedEnforcer::inspect_batch

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use bp_netsim::netfilter::Verdict;
use bp_netsim::packet::Ipv4Packet;

use crate::enforcer::{record_drop, DropReason, EnforcerCore, RUNTIME_FAULT_DROP_REASON};
use crate::faults::HealthState;

/// How [`ShardedEnforcer::inspect_batch`] fans a batch across its shards.
///
/// [`ShardedEnforcer::inspect_batch`]: crate::enforcer::ShardedEnforcer::inspect_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchRuntime {
    /// The persistent per-shard worker pool (the default): long-lived
    /// threads fed through SPSC rings, parked when idle.  Batch submission
    /// costs a wake/park handshake instead of a thread spawn/join.
    ///
    /// Submission is serialized: concurrent `inspect_batch` callers take
    /// turns for the full batch (the pool's partition buffers and rings are
    /// single-producer).  Per-shard state serializes cross-batch work under
    /// [`Scoped`](BatchRuntime::Scoped) too, so in-batch parallelism is
    /// identical; what `Scoped` additionally allows is pipeline *overlap*
    /// between two in-flight batches touching disjoint shards — deployments
    /// with many ingest threads on large batches can prefer it for that.
    #[default]
    Pool,
    /// The original scoped-spawn model: one fresh OS thread per busy shard
    /// per batch.  Kept as the equivalence and performance baseline, and
    /// for multi-ingest-thread deployments that want concurrent batches to
    /// overlap across disjoint shards.
    Scoped,
}

impl BatchRuntime {
    /// Stable lowercase label (used by bench reports).
    pub fn label(self) -> &'static str {
        match self {
            BatchRuntime::Pool => "pool",
            BatchRuntime::Scoped => "scoped",
        }
    }
}

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

/// Shared storage of one single-producer single-consumer ring.
struct RingShared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will pop; monotonically increasing (wrapping),
    /// masked into the slot array.
    head: AtomicUsize,
    /// Next slot the producer will fill; monotonically increasing
    /// (wrapping).
    tail: AtomicUsize,
}

// SAFETY: the ring hands each `T` from exactly one producer to exactly one
// consumer (enforced by the unique `SpscSender` / `SpscReceiver` handles
// taking `&mut self`), so sharing the storage across those two threads is
// sound for any `T: Send`.
unsafe impl<T: Send> Send for RingShared<T> {}
// SAFETY: same argument as Send above — the unique handles make all slot
// accesses exclusive even through a shared reference.
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> RingShared<T> {
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }
}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Drop any values pushed but never popped.  `&mut self` proves both
        // handles are gone, so the plain loads are exact.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mask = self.mask();
        let mut at = head;
        while at != tail {
            // SAFETY: slots in [head, tail) were written by a push and never
            // consumed by a pop.
            unsafe { (*self.slots[at & mask].get()).assume_init_drop() };
            at = at.wrapping_add(1);
        }
    }
}

/// Producer handle of a [`spsc_ring`].  Not clonable: the single producer is
/// whoever owns this value.
pub struct SpscSender<T> {
    ring: Arc<RingShared<T>>,
}

/// Consumer handle of a [`spsc_ring`].  Not clonable: the single consumer is
/// whoever owns this value.
pub struct SpscReceiver<T> {
    ring: Arc<RingShared<T>>,
}

/// Create a bounded single-producer single-consumer ring buffer.
///
/// `capacity` is rounded up to the next power of two (minimum 2) so index
/// masking replaces modulo in the hot path.  The producer/consumer
/// discipline is enforced by the handle types: both endpoints take
/// `&mut self` and neither is clonable, so misuse is a compile error, not a
/// data race.
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = bp_core::runtime::spsc_ring::<u32>(4);
/// assert!(tx.push(7).is_ok());
/// assert_eq!(rx.pop(), Some(7));
/// assert_eq!(rx.pop(), None);
/// ```
pub fn spsc_ring<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let capacity = capacity.next_power_of_two().max(2);
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(RingShared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscSender {
            ring: Arc::clone(&ring),
        },
        SpscReceiver { ring },
    )
}

impl<T> SpscSender<T> {
    /// Push `value`, or hand it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == ring.slots.len() {
            return Err(value);
        }
        // SAFETY: the slot at `tail` is unoccupied (checked above) and only
        // this producer writes slots; the Release store below publishes the
        // write to the consumer.
        unsafe { (*ring.slots[tail & ring.mask()].get()).write(value) };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(ring.head.load(Ordering::Acquire))
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity (rounded up at construction).
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

impl<T> SpscReceiver<T> {
    /// Pop the oldest value, if any.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the slot at `head` was published by the producer's Release
        // store (observed by the Acquire load above) and is consumed exactly
        // once: the store below retires the index before any further pop.
        let value = unsafe { (*ring.slots[head & ring.mask()].get()).assume_init_read() };
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail
            .load(Ordering::Acquire)
            .wrapping_sub(ring.head.load(Ordering::Relaxed))
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity (rounded up at construction).
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

// ---------------------------------------------------------------------------
// Borrowed batch handoff
// ---------------------------------------------------------------------------

/// A borrowed, indexable view of a packet batch.
///
/// The two batch entry points deliver packets as `&[Ipv4Packet]`
/// ([`ShardedEnforcer::inspect_batch`]) and `&mut [&mut Ipv4Packet]`
/// ([`QueueHandler::handle_batch_into`]); this view lets the partitioning and
/// inspection loops index either shape directly instead of collecting an
/// intermediate `Vec<&Ipv4Packet>` per batch.
///
/// # Safety contract
///
/// A `PacketSource` is a raw borrow: whoever constructs one must keep the
/// underlying slice alive and unmodified until the last [`PacketSource::get`]
/// call.  Within this crate that is guaranteed by the batch submission
/// protocol (the submitter outlives the batch).
///
/// [`ShardedEnforcer::inspect_batch`]: crate::enforcer::ShardedEnforcer::inspect_batch
/// [`QueueHandler::handle_batch_into`]: bp_netsim::netfilter::QueueHandler::handle_batch_into
#[derive(Clone, Copy)]
pub(crate) enum PacketSource {
    /// A contiguous slice of packets.
    Slice {
        /// First packet.
        ptr: *const Ipv4Packet,
        /// Packet count.
        len: usize,
    },
    /// A slice of packet references (the NFQUEUE batch shape).
    Refs {
        /// First packet pointer.
        ptr: *const *const Ipv4Packet,
        /// Packet count.
        len: usize,
    },
}

// SAFETY: a PacketSource only reads the packets it points at, and the
// submission protocol keeps them alive and unmutated for the lifetime of the
// batch; sharing the raw pointers across worker threads is therefore sound.
unsafe impl Send for PacketSource {}
// SAFETY: same argument as Send above — the view is read-only, so shared
// references add no new hazards.
unsafe impl Sync for PacketSource {}

impl PacketSource {
    /// View a contiguous packet slice.
    pub(crate) fn slice(packets: &[Ipv4Packet]) -> Self {
        PacketSource::Slice {
            ptr: packets.as_ptr(),
            len: packets.len(),
        }
    }

    /// View an NFQUEUE-style batch of exclusive packet references without
    /// collecting them.  The enforcer only ever reads through the view, so
    /// downgrading `&mut` to shared reads is sound (`&mut T` and `*const T`
    /// share one pointer layout).
    pub(crate) fn refs(packets: &[&mut Ipv4Packet]) -> Self {
        PacketSource::Refs {
            ptr: packets.as_ptr().cast::<*const Ipv4Packet>(),
            len: packets.len(),
        }
    }

    /// Number of packets in the batch.
    pub(crate) fn len(&self) -> usize {
        match *self {
            PacketSource::Slice { len, .. } | PacketSource::Refs { len, .. } => len,
        }
    }

    /// This view limited to its first `new_len` packets (no-op when the
    /// batch is already at most that long).  The overload guard inspects the
    /// truncated head and sheds the tail fail-closed.
    pub(crate) fn truncated(self, new_len: usize) -> Self {
        match self {
            PacketSource::Slice { ptr, len } => PacketSource::Slice {
                ptr,
                len: len.min(new_len),
            },
            PacketSource::Refs { ptr, len } => PacketSource::Refs {
                ptr,
                len: len.min(new_len),
            },
        }
    }

    /// The packet at `index`.
    ///
    /// # Safety
    ///
    /// `index < self.len()`, and the borrowed batch must still be alive (see
    /// the type-level contract).  The returned lifetime is unbounded; the
    /// caller must not let it outlive the batch.
    pub(crate) unsafe fn get<'a>(&self, index: usize) -> &'a Ipv4Packet {
        debug_assert!(index < self.len());
        match *self {
            PacketSource::Slice { ptr, .. } => &*ptr.add(index),
            PacketSource::Refs { ptr, .. } => &**ptr.add(index),
        }
    }
}

/// Verdict slot array shared across the workers of one batch.  Each worker
/// writes only the slots of its own partition's packet indexes, so the
/// disjoint `*mut` writes never race.
#[derive(Clone, Copy)]
pub(crate) struct VerdictSlots(pub(crate) *mut Verdict);

// SAFETY: slots are written disjointly (each packet index belongs to exactly
// one shard partition) and the submitter does not read them until every
// worker has counted down.
unsafe impl Send for VerdictSlots {}
// SAFETY: same argument as Send above — partition disjointness, not
// reference uniqueness, is what prevents racing writes.
unsafe impl Sync for VerdictSlots {}

impl VerdictSlots {
    /// Store `verdict` for packet `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds of the batch the slots were sized for, the
    /// slot must be initialized (the submitter pre-fills the array), and no
    /// other thread may write the same `index`.
    pub(crate) unsafe fn set(&self, index: usize, verdict: Verdict) {
        *self.0.add(index) = verdict;
    }
}

// ---------------------------------------------------------------------------
// EnforcerCore batch entry points
// ---------------------------------------------------------------------------
//
// The batch loops that dereference borrowed-batch raw pointers live here —
// with the rest of the handoff protocol — rather than in `enforcer.rs`,
// keeping every `unsafe` in the crate inside this one audited module.

impl EnforcerCore {
    /// Inspect one shard's partition of a batch, writing each packet's
    /// verdict into its slot.  This is the shared inner loop of the pool
    /// workers, the scoped-spawn baseline and the submitter's inline
    /// partition.
    ///
    /// The shard's state is locked once per partition; the active tables are
    /// snapshotted once and revalidated per packet against the generation
    /// counter (one acquire load, no lock/refcount traffic), so a concurrent
    /// table installation still takes effect mid-batch — once the swap
    /// returns, no later packet is evaluated (or served from cache) under
    /// the old epoch.
    ///
    /// # Safety
    ///
    /// Every index must be `< source.len()`, the batch behind `source` must
    /// outlive the call, `slots` must point at `source.len()` initialized
    /// verdicts, and no other thread may write the slots of these indexes.
    pub(crate) unsafe fn run_partition(
        &self,
        shard: usize,
        source: PacketSource,
        indexes: &[u32],
        slots: VerdictSlots,
    ) {
        let shard_index = shard;
        let shard = &self.shards[shard_index];
        // Deterministic fault injection fires at partition start, before any
        // packet or lock is touched: the whole partition fails closed, which
        // keeps the faulted set a pure function of the plan and the batch
        // ordinal.  Quarantined shards are past their fault schedule by
        // construction (the budget is exhausted), so injection is suppressed
        // and the inline reroute serves them indefinitely.
        if let Some(injector) = self.faults.get() {
            if shard.health.state() != HealthState::Quarantined {
                injector.on_partition_start(shard_index);
            }
        }
        // Shard lock order: scratch → drop_log → flow, matching
        // `EnforcerCore::inspect` — an inline inspect and a batch worker
        // contending for the same shard must never interleave acquisition.
        let mut scratch = shard.scratch.lock();
        let mut drop_log = shard.drop_log.lock();
        let mut flow = shard.flow.lock();
        let mut generation = self.tables_generation.load(Ordering::Acquire);
        let mut tables = self.tables();
        for &index in indexes {
            let current = self.tables_generation.load(Ordering::Acquire);
            if current != generation {
                generation = current;
                tables = self.tables();
            }
            let verdict = tables.inspect_flow_cached(
                source.get(index as usize),
                &mut flow,
                self.now(),
                &mut scratch,
                &shard.stats,
                &mut drop_log,
            );
            slots.set(index as usize, verdict);
        }
        // Publish once per partition, not per packet: the batch paths keep
        // telemetry out of the per-packet budget.  Still holding drop_log,
        // which is the telemetry single-writer token.
        shard.health.note_clean_batch();
        shard
            .telemetry
            .publish(&shard.stats, tables.epoch(), &shard.health);
    }

    /// Fail a panicked partition closed: every index whose slot still holds
    /// the submitter's empty-reason placeholder was never inspected, and
    /// drops under `dropped_runtime_fault`.  Slots the partition wrote
    /// before unwinding keep their real verdicts — the packet *was*
    /// inspected.  Records the fault on the shard's health and republishes
    /// telemetry so the degradation is immediately observable.
    ///
    /// # Safety
    ///
    /// Same contract as [`run_partition`](Self::run_partition): indexes in
    /// bounds, batch alive, slots exclusive to this partition.
    pub(crate) unsafe fn fail_close_partition(
        &self,
        shard: usize,
        indexes: &[u32],
        slots: VerdictSlots,
    ) {
        let shard = &self.shards[shard];
        shard.health.record_fault();
        let mut drop_log = shard.drop_log.lock();
        for &index in indexes {
            let slot = &mut *slots.0.add(index as usize);
            let uninspected = matches!(&*slot, Verdict::Drop { reason } if reason.is_empty());
            if !uninspected {
                continue;
            }
            shard.stats.record_runtime_fault();
            *slot = record_drop(&mut drop_log, DropReason::Static(RUNTIME_FAULT_DROP_REASON));
        }
        shard
            .telemetry
            .publish(&shard.stats, self.tables().epoch(), &shard.health);
    }

    /// Run one partition under `catch_unwind`; a panic (injected or real)
    /// fails the uninspected remainder closed instead of crossing the
    /// caller.  Returns whether the partition completed cleanly.
    ///
    /// # Safety
    ///
    /// Same contract as [`run_partition`](Self::run_partition).
    pub(crate) unsafe fn run_partition_caught(
        &self,
        shard: usize,
        source: PacketSource,
        indexes: &[u32],
        slots: VerdictSlots,
    ) -> bool {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            self.run_partition(shard, source, indexes, slots);
        }));
        if outcome.is_err() {
            // Fail closed, never open: nothing uninspected may pass.
            self.fail_close_partition(shard, indexes, slots);
        }
        outcome.is_ok()
    }

    /// The scoped-spawn batch baseline: partition by flow, spawn one scoped
    /// OS thread per busy shard, join.  Pays a thread spawn/join and fresh
    /// partition allocations on every batch — exactly the costs the
    /// [`BatchRuntime::Pool`] runtime eliminates — and is retained for
    /// equivalence testing and as the bench baseline.
    pub(crate) fn inspect_scoped(&self, source: PacketSource, out: &mut [Verdict]) {
        let shard_count = self.shards.len();
        let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for index in 0..source.len() {
            // SAFETY: `index < len` and the batch outlives this call.
            let packet = unsafe { source.get(index) };
            partitions[self.shard_for(packet)].push(index as u32);
        }
        let slots = VerdictSlots(out.as_mut_ptr());
        thread::scope(|scope| {
            for (shard, indexes) in partitions.iter().enumerate() {
                if indexes.is_empty() {
                    continue;
                }
                let slots = &slots;
                scope.spawn(move || {
                    // SAFETY: indexes are in bounds by construction, the
                    // batch outlives the scope, and partitions are disjoint
                    // so no slot is written twice.
                    unsafe { self.run_partition_caught(shard, source, indexes, *slots) };
                });
            }
        });
    }

    /// The single-shard / tiny-batch path: inspect every packet of the
    /// batch inline, appending verdicts in input order.
    ///
    /// Fault injection fires on the first packet that touches a shard in
    /// the batch (the sequential analogue of a partition start); a panic
    /// fails the uninspected tail closed per packet on each packet's own
    /// shard — same invariant as the pooled recovery: nothing uninspected
    /// ever passes, and the batch call returns normally.
    pub(crate) fn inspect_sequential(&self, source: PacketSource, verdicts: &mut Vec<Verdict>) {
        let len = source.len();
        verdicts.reserve(len);
        // Defer telemetry publication to batch end (one seqlock write per
        // touched shard, not per packet); shards are tracked in a bitmask
        // while the count fits one word, else every shard is published.
        // This path only runs multi-packet batches when `shard_count == 1`,
        // so the bitmask doubles as the first-touch injection trigger.
        let track_touched = self.shards.len() <= u64::BITS as usize;
        let mut touched: u64 = 0;
        let injector = self.faults.get();
        let outcome = {
            let touched = &mut touched;
            let verdicts = &mut *verdicts;
            panic::catch_unwind(AssertUnwindSafe(move || {
                for index in verdicts.len()..len {
                    // SAFETY: `index < len` and the caller's batch outlives
                    // this call.
                    let packet = unsafe { source.get(index) };
                    let shard = self.shard_for(packet);
                    let first_touch = if track_touched {
                        let bit = 1u64 << shard;
                        let first = *touched & bit == 0;
                        *touched |= bit;
                        first
                    } else {
                        // > 64 shards only reaches here with a <= 1 packet
                        // batch, where every touch is a first touch.
                        true
                    };
                    if first_touch {
                        if let Some(injector) = injector {
                            if self.shards[shard].health.state() != HealthState::Quarantined {
                                injector.on_partition_start(shard);
                            }
                        }
                    }
                    verdicts.push(self.inspect_on_shard(packet, shard, false));
                }
            }))
        };
        if outcome.is_err() {
            // `verdicts.len()` is the first uninspected index: push wasn't
            // reached for the packet that unwound, nor for any after it.
            // Fail the whole tail closed on each packet's own shard.
            let from = verdicts.len();
            if from < len {
                // SAFETY: `from < len` and the batch is alive.
                let faulted = self.shard_for(unsafe { source.get(from) });
                self.shards[faulted].health.record_fault();
                for index in from..len {
                    // SAFETY: `index < len` and the batch is alive.
                    let packet = unsafe { source.get(index) };
                    let shard = self.shard_for(packet);
                    if track_touched {
                        touched |= 1 << shard;
                    }
                    let shard = &self.shards[shard];
                    let mut drop_log = shard.drop_log.lock();
                    shard.stats.record_runtime_fault();
                    verdicts.push(record_drop(
                        &mut drop_log,
                        DropReason::Static(RUNTIME_FAULT_DROP_REASON),
                    ));
                }
            }
        }
        for shard in 0..self.shards.len() {
            if !track_touched || touched & (1 << shard) != 0 {
                if outcome.is_ok() {
                    self.shards[shard].health.note_clean_batch();
                }
                self.publish_shard_telemetry(shard);
            }
        }
    }
}

/// Completion rendezvous of one submitted batch, owned by the submitter's
/// stack frame.
struct BatchSync {
    /// Dispatched partitions still running.
    pending: AtomicUsize,
    /// The submitting thread, unparked by the final countdown.
    waiter: Thread,
}

/// One shard's share of a submitted batch: the packet view, this shard's
/// index slice (into the pool's reused partition buffer) and the shared
/// verdict slots.
struct BatchJob {
    source: PacketSource,
    indexes: *const u32,
    index_count: usize,
    slots: VerdictSlots,
    sync: *const BatchSync,
}

// SAFETY: every pointer in a BatchJob stays valid until the worker counts
// down `sync.pending` (the submitter — including its unwind path — waits for
// that), and the job is consumed by exactly one worker.
unsafe impl Send for BatchJob {}

/// What a worker pulls off its ring.
enum Message {
    /// Inspect one partition of a batch.
    Batch(BatchJob),
    /// Exit the worker loop (sent on pool drop).
    Shutdown,
}

/// How long a dispatched partition may run before the submitter's watchdog
/// flags its shard as stalled.  The wait itself never gives up — the workers
/// hold pointers into the submitter's frame, so abandoning them would be a
/// use-after-free — but the stall is recorded into the shard's health state
/// for the observability plane.  Wall-clock dependent, so stall flags are
/// deliberately *not* part of the deterministic chaos report surface.
const STALL_DEADLINE: Duration = Duration::from_millis(250);

/// Waits for the batch countdown even when the guarded scope unwinds: the
/// workers hold pointers into the submitter's frame (verdict slots,
/// partition buffers, the countdown itself), so returning — or panicking —
/// before they finish would free memory out from under them.
///
/// Doubles as the stall watchdog: once the wait exceeds [`STALL_DEADLINE`],
/// every shard still mid-batch (its `batch_done` flag unset) is flagged
/// degraded via [`ShardHealth::record_stall`](crate::faults::ShardHealth).
struct WaitForBatch<'a> {
    sync: &'a BatchSync,
    core: &'a EnforcerCore,
}

impl Drop for WaitForBatch<'_> {
    fn drop(&mut self) {
        let deadline = Instant::now() + STALL_DEADLINE;
        let mut flagged = false;
        while self.sync.pending.load(Ordering::Acquire) != 0 {
            thread::park_timeout(STALL_DEADLINE);
            if !flagged && Instant::now() >= deadline {
                flagged = true;
                for shard in &self.core.shards {
                    if !shard.health.batch_done() {
                        shard.health.record_stall();
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Ring capacity per worker: submission is serialized (one batch in flight)
/// so a lane never holds more than one job plus, at teardown, one shutdown
/// message.
const LANE_CAPACITY: usize = 2;

/// How many times a shard's worker is respawned after panics before the
/// shard is quarantined to the inline path for good.  Between respawns the
/// lane sits out an exponentially growing number of batches
/// (2, 4, 8 — `1 << respawns`), served inline meanwhile, so a
/// crash-looping shard cannot monopolize the submitter with respawn work.
const RESPAWN_BUDGET: u32 = 3;

/// One worker's submission lane: its ring producer, its thread handle for
/// unparking, and the respawn bookkeeping the self-healing path maintains.
struct Lane {
    jobs: SpscSender<Message>,
    worker: Thread,
    /// Cleared by the worker itself when a partition panics: the thread
    /// retires after counting the batch down, and the next submission
    /// respawns or reroutes.  Only written while the worker owns a job and
    /// only read under the submission lock with no job in flight, so plain
    /// relaxed ordering suffices.
    alive: Arc<AtomicBool>,
    /// Joined before the lane is respawned or the pool drops.
    handle: Option<JoinHandle<()>>,
    /// Respawns consumed from [`RESPAWN_BUDGET`].
    respawns: u32,
    /// Batches left to sit out (inline-served) before the next respawn.
    cooldown: u32,
}

/// Producer-side state, serialized by the submission lock: the per-worker
/// lanes and the reused per-shard partition buffers.
struct SubmitState {
    lanes: Vec<Lane>,
    partitions: Vec<Vec<u32>>,
}

/// The persistent per-shard worker pool (see the module docs).
///
/// Spawned lazily on the first pooled batch, dropped (shutdown + join) with
/// the owning [`ShardedEnforcer`](crate::enforcer::ShardedEnforcer).
pub(crate) struct WorkerPool {
    submit: Mutex<SubmitState>,
    /// The enforcer the workers serve; owned so the respawn path can build
    /// replacement workers without the caller re-threading it through.
    core: Arc<EnforcerCore>,
    /// Workers that have not yet exited their loop; drained to zero by the
    /// shutdown join.  Kept behind an `Arc` so tests can watch it across the
    /// pool's own drop.
    live_workers: Arc<AtomicUsize>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("shards", &self.core.shard_count())
            .field("live", &self.live_workers.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Spawn one shard worker: ring, alive flag, named thread.  Increments
/// `live` before the thread starts (and backs the increment out if the
/// spawn fails), so the count never underflows however short-lived the
/// worker turns out to be.
fn spawn_worker(
    core: &Arc<EnforcerCore>,
    shard: usize,
    live: &Arc<AtomicUsize>,
) -> std::io::Result<Lane> {
    let (jobs, ring) = spsc_ring::<Message>(LANE_CAPACITY);
    let alive = Arc::new(AtomicBool::new(true));
    let worker_core = Arc::clone(core);
    let worker_live = Arc::clone(live);
    let worker_alive = Arc::clone(&alive);
    live.fetch_add(1, Ordering::Release);
    let spawned = thread::Builder::new()
        .name(format!("bp-enforcer-shard-{shard}"))
        .spawn(move || worker_loop(worker_core, shard, ring, worker_live, worker_alive));
    let handle = match spawned {
        Ok(handle) => handle,
        Err(error) => {
            live.fetch_sub(1, Ordering::Release);
            return Err(error);
        }
    };
    Ok(Lane {
        jobs,
        worker: handle.thread().clone(),
        alive,
        handle: Some(handle),
        respawns: 0,
        cooldown: 0,
    })
}

impl WorkerPool {
    /// Spawn one worker per shard of `core`.
    pub(crate) fn spawn(core: &Arc<EnforcerCore>) -> WorkerPool {
        let shard_count = core.shard_count();
        let live_workers = Arc::new(AtomicUsize::new(0));
        let mut lanes: Vec<Lane> = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            match spawn_worker(core, shard, &live_workers) {
                Ok(lane) => lanes.push(lane),
                Err(error) => {
                    // Partial spawn (thread/resource exhaustion): shut down
                    // and join the workers already running before failing,
                    // so no detached thread outlives this call holding the
                    // core — the shutdown guarantee must hold on the error
                    // path too.
                    for lane in &mut lanes {
                        let _ = lane.jobs.push(Message::Shutdown);
                        lane.worker.unpark();
                    }
                    for lane in &mut lanes {
                        if let Some(handle) = lane.handle.take() {
                            let _ = handle.join();
                        }
                    }
                    panic!("spawn enforcer shard worker: {error}");
                }
            }
        }
        WorkerPool {
            submit: Mutex::new(SubmitState {
                lanes,
                partitions: vec![Vec::new(); shard_count],
            }),
            core: Arc::clone(core),
            live_workers,
        }
    }

    /// Bring `lane` to a dispatchable state, consuming respawn budget as
    /// needed.  Returns whether the lane can take this batch's partition;
    /// `false` means the partition runs inline on the submitter.
    ///
    /// Called under the submission lock with no batch in flight, so the
    /// `alive` flag it reads cannot change concurrently (workers only retire
    /// while they own a job).
    fn ensure_lane(
        core: &Arc<EnforcerCore>,
        shard: usize,
        lane: &mut Lane,
        live: &Arc<AtomicUsize>,
    ) -> bool {
        let health = &core.shards[shard].health;
        if health.state() == HealthState::Quarantined {
            return false;
        }
        if lane.alive.load(Ordering::Relaxed) {
            return true;
        }
        if lane.respawns >= RESPAWN_BUDGET {
            // Budget exhausted: the shard is quarantined for the lifetime of
            // the pool and served inline from here on.
            health.quarantine();
            return false;
        }
        if lane.cooldown > 0 {
            // Sitting out the backoff window; the partition runs inline.
            lane.cooldown -= 1;
            return false;
        }
        // Join the retired worker before replacing its lane: it has already
        // counted its last batch down, so the join is prompt, and it must
        // not outlive its ring's producer side.
        if let Some(handle) = lane.handle.take() {
            let _ = handle.join();
        }
        lane.respawns += 1;
        let respawns = lane.respawns;
        let cooldown = 1 << respawns;
        match spawn_worker(core, shard, live) {
            Ok(fresh) => {
                *lane = fresh;
                lane.respawns = respawns;
                lane.cooldown = cooldown;
                health.record_respawn();
                true
            }
            Err(_) => {
                // The attempt consumed budget; retry after the cooldown.
                lane.cooldown = cooldown;
                false
            }
        }
    }

    /// Count of workers that have not yet exited (drops to zero once the
    /// pool's shutdown join completes).  Test-only observability for the
    /// no-leaked-threads guarantee.
    #[cfg(test)]
    pub(crate) fn live_workers(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.live_workers)
    }

    /// Inspect a batch on the pool: partition by flow, dispatch every busy
    /// shard but the last to its worker, run the last partition on the
    /// submitting thread, wait for the countdown.
    ///
    /// Self-healing: shards whose worker retired after a panic are respawned
    /// here under the backoff budget (see [`Lane`]); shards past the budget
    /// are quarantined and their partitions — like those of lanes mid
    /// cooldown — run inline on the submitting thread.  Either way the call
    /// returns normally with every slot holding a real verdict; a panicked
    /// partition's uninspected packets fail closed.
    ///
    /// `out` must hold exactly `source.len()` initialized verdict slots;
    /// each is overwritten in place.  On the all-accept path this performs
    /// no allocation: the partition buffers are reused, the jobs are
    /// fixed-size ring slots and the verdicts land in `out`.
    pub(crate) fn inspect(&self, source: PacketSource, out: &mut [Verdict]) {
        let core = &self.core;
        debug_assert_eq!(out.len(), source.len());
        let mut state = self.submit.lock();
        let SubmitState { lanes, partitions } = &mut *state;

        for partition in partitions.iter_mut() {
            partition.clear();
        }
        for index in 0..source.len() {
            // SAFETY: `index < len` and the caller's batch outlives this
            // call.
            let packet = unsafe { source.get(index) };
            partitions[core.shard_for(packet)].push(index as u32);
        }
        let Some(last_busy) = partitions.iter().rposition(|p| !p.is_empty()) else {
            return;
        };

        // Pass 1 — route: respawn/quarantine side effects happen before any
        // dispatch so the pending count is exact when the first job lands.
        // Routing is stable between the passes: workers only retire while
        // they own a job, and none is in flight under the submission lock.
        let mut dispatched = 0usize;
        for (shard, partition) in partitions.iter().enumerate() {
            if partition.is_empty() || shard == last_busy {
                continue;
            }
            if Self::ensure_lane(core, shard, &mut lanes[shard], &self.live_workers) {
                dispatched += 1;
            }
        }

        let sync = BatchSync {
            pending: AtomicUsize::new(dispatched),
            waiter: thread::current(),
        };
        let slots = VerdictSlots(out.as_mut_ptr());
        {
            // The guard waits for every already-dispatched worker no matter
            // what panics below — workers hold pointers into this frame, so
            // unwinding past them would be a use-after-free, not a panic.
            let _wait = WaitForBatch { sync: &sync, core };
            // Pass 2 — dispatch to live lanes, run the rest inline.
            for (shard, partition) in partitions.iter().enumerate() {
                if partition.is_empty() || shard == last_busy {
                    continue;
                }
                let lane = &mut lanes[shard];
                let dispatchable = lane.alive.load(Ordering::Relaxed)
                    && core.shards[shard].health.state() != HealthState::Quarantined;
                if !dispatchable {
                    // SAFETY: indexes in bounds, batch alive, partitions
                    // disjoint; a panic fails the partition closed.
                    unsafe { core.run_partition_caught(shard, source, partition, slots) };
                    continue;
                }
                core.shards[shard].health.set_batch_done(false);
                let job = BatchJob {
                    source,
                    indexes: partition.as_ptr(),
                    index_count: partition.len(),
                    slots,
                    sync: &sync,
                };
                match lane.jobs.push(Message::Batch(job)) {
                    Ok(()) => lane.worker.unpark(),
                    // Unreachable while submission is serialized (the ring
                    // holds one job plus a shutdown message), but degrade to
                    // running the partition on the submitter rather than
                    // panicking mid-dispatch.  Count it down *first*: the
                    // countdown tracks work other threads owe this frame.
                    Err(Message::Batch(job)) => {
                        core.shards[shard].health.set_batch_done(true);
                        sync.pending.fetch_sub(1, Ordering::Release);
                        // SAFETY: same contract as the worker side — indexes
                        // in bounds, batch alive, partition disjoint.
                        unsafe {
                            let indexes = std::slice::from_raw_parts(job.indexes, job.index_count);
                            core.run_partition_caught(shard, job.source, indexes, job.slots);
                        }
                    }
                    Err(Message::Shutdown) => {
                        unreachable!("submitter never enqueues shutdown")
                    }
                }
            }
            // SAFETY: indexes are in bounds by construction, the batch is
            // alive for the whole call, and `last_busy`'s indexes are
            // disjoint from every dispatched partition.
            unsafe { core.run_partition_caught(last_busy, source, &partitions[last_busy], slots) };
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let state = self.submit.get_mut();
        for lane in &mut state.lanes {
            // A retired lane's receiver is gone; the shutdown message then
            // sits in a ring nobody drains, which the ring's own drop
            // reclaims.  Push failure (full ring) is likewise only possible
            // on a retired lane — a live lane's ring is empty between
            // batches.
            let _ = lane.jobs.push(Message::Shutdown);
            lane.worker.unpark();
        }
        for lane in &mut state.lanes {
            if let Some(handle) = lane.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The body of one pool worker: drain the ring, park when idle, exit on
/// shutdown — or retire after a panicked partition, clearing `alive` so the
/// next submission respawns the lane (or reroutes it inline).
fn worker_loop(
    core: Arc<EnforcerCore>,
    shard: usize,
    mut jobs: SpscReceiver<Message>,
    live: Arc<AtomicUsize>,
    alive: Arc<AtomicBool>,
) {
    loop {
        let Some(message) = jobs.pop() else {
            // Benign race with the producer's push+unpark: an unpark that
            // lands between our pop and this park leaves a token, so park
            // returns immediately and the next pop sees the job.
            thread::park();
            continue;
        };
        match message {
            Message::Shutdown => break,
            Message::Batch(job) => {
                // SAFETY: the submitter keeps the batch (packets, index
                // slice, verdict slots) alive until we count down below.  A
                // panic fails the uninspected remainder closed under
                // `dropped_runtime_fault`; it never escapes the worker.
                let clean = unsafe {
                    let indexes = std::slice::from_raw_parts(job.indexes, job.index_count);
                    core.run_partition_caught(shard, job.source, indexes, job.slots)
                };
                core.shards[shard].health.set_batch_done(true);
                if !clean {
                    // The thread's state is suspect after an unwound
                    // partition: retire it.  Ordering relative to the
                    // countdown below doesn't matter — the submitter only
                    // reads `alive` under the submission lock with no batch
                    // in flight.
                    alive.store(false, Ordering::Relaxed);
                }
                // SAFETY: `sync` lives until `pending` reaches zero and the
                // submitter observes it — which cannot happen before the
                // fetch_sub below.
                let sync = unsafe { &*job.sync };
                // Clone the waiter handle *before* counting down: the
                // countdown releases the submitter, whose frame (and with it
                // `sync`) may be gone by the time we unpark.
                let waiter = sync.waiter.clone();
                if sync.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    waiter.unpark();
                }
                if !clean {
                    break;
                }
            }
        }
    }
    live.fetch_sub(1, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_roundtrips_in_order_and_reports_full() {
        let (mut tx, mut rx) = spsc_ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        assert!(tx.is_empty());
        for value in 0..4 {
            assert!(tx.push(value).is_ok());
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(tx.len(), 4);
        assert_eq!(rx.len(), 4);
        for value in 0..4 {
            assert_eq!(rx.pop(), Some(value));
        }
        assert!(rx.pop().is_none());
        assert!(rx.is_empty());
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc_ring::<u8>(3);
        assert_eq!(tx.capacity(), 4);
        let (tx, _rx) = spsc_ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn ring_wraps_around_many_times() {
        let (mut tx, mut rx) = spsc_ring::<usize>(2);
        for round in 0..1_000 {
            assert!(tx.push(round).is_ok());
            assert!(tx.push(round + 1).is_ok());
            assert_eq!(rx.pop(), Some(round));
            assert_eq!(rx.pop(), Some(round + 1));
        }
        assert!(rx.pop().is_none());
    }

    #[test]
    fn ring_transfers_across_threads_in_order() {
        const COUNT: u64 = 200_000;
        let (mut tx, mut rx) = spsc_ring::<u64>(64);
        let consumer = thread::spawn(move || {
            let mut expected = 0;
            while expected < COUNT {
                match rx.pop() {
                    Some(value) => {
                        assert_eq!(value, expected);
                        expected += 1;
                    }
                    None => thread::yield_now(),
                }
            }
            assert!(rx.pop().is_none());
        });
        let mut next = 0;
        while next < COUNT {
            if tx.push(next).is_ok() {
                next += 1;
            } else {
                thread::yield_now();
            }
        }
        consumer.join().unwrap();
    }

    #[test]
    fn ring_drops_unconsumed_values() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = spsc_ring::<Counted>(4);
        for _ in 0..3 {
            assert!(tx.push(Counted(Arc::clone(&counter))).is_ok());
        }
        drop(rx.pop());
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn batch_runtime_labels_are_stable() {
        assert_eq!(BatchRuntime::default(), BatchRuntime::Pool);
        assert_eq!(BatchRuntime::Pool.label(), "pool");
        assert_eq!(BatchRuntime::Scoped.label(), "scoped");
    }
}
