//! Per-shard seqlock-published telemetry snapshots (DESIGN §12).
//!
//! The enforcer's [`AtomicEnforcerStats`] counters are relaxed atomics: any
//! thread can read them at any time, but a multi-counter read can tear —
//! `packets_inspected` from after a batch, `packets_accepted` from before
//! it.  That is fine for coarse totals and useless for rates: an
//! observability plane computing per-second deltas from torn snapshots
//! reports phantom spikes.
//!
//! [`TelemetryCell`] fixes this without perturbing the data plane.  Each
//! shard owns one cell: a fixed array of `AtomicU64` words plus a sequence
//! stamp.  The **writer** — the shard's batch worker, which already holds
//! the shard's `drop_log` mutex at every publication site, making it the
//! sole writer — publishes at partition/batch end with plain relaxed
//! stores bracketed by two stamp stores (odd = write in progress, even =
//! stable).  No lock, no read-modify-write, no `SeqCst`; the only fence is
//! a compiler-level `Release` fence that costs nothing on x86 and pairs
//! with the reader's `Acquire` fence elsewhere.
//!
//! **Readers** (the `bp-obs` collector, tests) spin: load the stamp
//! (acquire), copy the words (relaxed), fence (acquire), re-load the stamp.
//! An odd or changed stamp means a write raced the copy — retry.  A stable
//! even stamp means the words are exactly one publication, so cross-counter
//! invariants hold: `packets_inspected == packets_accepted +
//! total_dropped()`, and the checksum word (a wrapping sum the writer
//! stamps over the payload) verifies.  Readers never block writers;
//! writers never wait for readers.
//!
//! Beyond the [`EnforcerStats`] counters (including the per-`WireError`
//! breakdown), each snapshot carries a small **generation ring**: verdict
//! deltas attributed to the tables epoch that was active when they were
//! published, so a fleet view can answer "how many drops has generation N
//! produced" while a hot swap is mid-flight.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::enforcer::{AtomicEnforcerStats, EnforcerStats};
use crate::faults::{HealthState, ShardHealth, ShardHealthSnapshot};

/// Generations tracked per shard.  A rollback window deeper than this many
/// *concurrently active* epochs recycles the oldest slot; totals are never
/// lost, only re-attributed to the slot's successor.
pub const GENERATION_SLOTS: usize = 4;

/// `EnforcerStats` scalar counters plus the 10 per-`WireError` counters.
const STATS_WORDS: usize = 15 + 10;
/// (epoch, accepted, dropped) per generation slot.
const RING_WORDS: usize = 3 * GENERATION_SLOTS;
/// Shard health words: state, faults, respawns, stalls.
const HEALTH_WORDS: usize = 4;
/// First health word index.
const W_HEALTH: usize = STATS_WORDS + RING_WORDS;
/// Checksum word index (wrapping sum of every preceding word).
const W_CHECKSUM: usize = W_HEALTH + HEALTH_WORDS;
/// Total payload words of one snapshot.
const SNAPSHOT_WORDS: usize = W_CHECKSUM + 1;

/// Verdict deltas attributed to one tables epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerationCounters {
    /// The flow-cache epoch of the generation (0 = empty slot).  Epochs are
    /// process-unique and monotonic, so consumers can order slots by age.
    pub epoch: u64,
    /// Packets accepted while this epoch was the published one.
    pub accepted: u64,
    /// Packets dropped (any reason) while this epoch was the published one.
    pub dropped: u64,
}

/// One consistent per-shard telemetry publication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Publication count (how many times the shard has published).
    pub publications: u64,
    /// The shard's enforcement counters as of the publication.
    pub stats: EnforcerStats,
    /// Verdict deltas per recently active tables epoch.
    pub generations: [GenerationCounters; GENERATION_SLOTS],
    /// The shard's health state machine as of the publication.
    pub health: ShardHealthSnapshot,
    /// The checksum word as published (see
    /// [`TelemetrySnapshot::checksum_valid`]).
    pub checksum: u64,
}

impl TelemetrySnapshot {
    /// Does the published checksum verify against the payload?  A stable
    /// sequence stamp already guarantees this; the word exists so tests can
    /// prove the guarantee rather than assume it.
    pub fn checksum_valid(&self) -> bool {
        let mut words = [0u64; SNAPSHOT_WORDS];
        write_payload(&mut words, &self.stats, &self.generations, &self.health);
        words[W_CHECKSUM] == self.checksum
    }

    /// Cross-counter invariants that only hold on untorn snapshots: every
    /// inspected packet was either accepted or dropped, the per-variant
    /// wire counters sum to the aggregate, and the generation ring never
    /// accounts more verdicts than the shard produced.
    pub fn consistent(&self) -> bool {
        let stats = &self.stats;
        let ring_accepted: u64 = self.generations.iter().map(|g| g.accepted).sum();
        let ring_dropped: u64 = self.generations.iter().map(|g| g.dropped).sum();
        stats.packets_inspected == stats.packets_accepted + stats.total_dropped()
            && stats.dropped_wire == stats.dropped_wire_by.total()
            && ring_accepted <= stats.packets_accepted
            && ring_dropped <= stats.total_dropped()
            && self.checksum_valid()
    }
}

/// Serialize the stats + ring + health into the word layout (checksum
/// stamped last).
fn write_payload(
    words: &mut [u64; SNAPSHOT_WORDS],
    stats: &EnforcerStats,
    ring: &[GenerationCounters; GENERATION_SLOTS],
    health: &ShardHealthSnapshot,
) {
    let scalars = [
        stats.packets_inspected,
        stats.packets_accepted,
        stats.dropped_by_policy,
        stats.dropped_untagged,
        stats.dropped_unknown_app,
        stats.dropped_malformed,
        stats.dropped_duplicate_context,
        stats.dropped_context_switch,
        stats.dropped_wire,
        stats.dropped_runtime_fault,
        stats.dropped_overload,
        stats.flow_hits,
        stats.flow_misses,
        stats.flow_evictions,
        stats.flow_context_switches,
    ];
    words[..15].copy_from_slice(&scalars);
    words[15..STATS_WORDS].copy_from_slice(&stats.dropped_wire_by.to_array());
    for (slot, counters) in ring.iter().enumerate() {
        let base = STATS_WORDS + 3 * slot;
        words[base] = counters.epoch;
        words[base + 1] = counters.accepted;
        words[base + 2] = counters.dropped;
    }
    words[W_HEALTH] = health.state as u8 as u64;
    words[W_HEALTH + 1] = health.faults;
    words[W_HEALTH + 2] = health.respawns;
    words[W_HEALTH + 3] = health.stalls;
    words[W_CHECKSUM] = checksum(words);
}

/// Deserialize the word layout back into a snapshot.
fn read_payload(
    words: &[u64; SNAPSHOT_WORDS],
) -> (
    EnforcerStats,
    [GenerationCounters; GENERATION_SLOTS],
    ShardHealthSnapshot,
) {
    let mut wire_by = [0u64; 10];
    wire_by.copy_from_slice(&words[15..STATS_WORDS]);
    let stats = EnforcerStats {
        packets_inspected: words[0],
        packets_accepted: words[1],
        dropped_by_policy: words[2],
        dropped_untagged: words[3],
        dropped_unknown_app: words[4],
        dropped_malformed: words[5],
        dropped_duplicate_context: words[6],
        dropped_context_switch: words[7],
        dropped_wire: words[8],
        dropped_runtime_fault: words[9],
        dropped_overload: words[10],
        flow_hits: words[11],
        flow_misses: words[12],
        flow_evictions: words[13],
        flow_context_switches: words[14],
        dropped_wire_by: crate::enforcer::WireDropStats::from_array(wire_by),
    };
    let mut ring = [GenerationCounters::default(); GENERATION_SLOTS];
    for (slot, counters) in ring.iter_mut().enumerate() {
        let base = STATS_WORDS + 3 * slot;
        counters.epoch = words[base];
        counters.accepted = words[base + 1];
        counters.dropped = words[base + 2];
    }
    let health = ShardHealthSnapshot {
        state: HealthState::from_word(words[W_HEALTH]),
        faults: words[W_HEALTH + 1],
        respawns: words[W_HEALTH + 2],
        stalls: words[W_HEALTH + 3],
    };
    (stats, ring, health)
}

/// Wrapping sum of every payload word before the checksum slot.
fn checksum(words: &[u64; SNAPSHOT_WORDS]) -> u64 {
    words[..W_CHECKSUM]
        .iter()
        .fold(0u64, |acc, word| acc.wrapping_add(*word))
}

/// One shard's seqlock-published snapshot cell (see the module docs for the
/// protocol).  Writers must hold the shard's `drop_log` mutex — that lock
/// is what makes "single writer" true at every publication site; the cell
/// itself never blocks anyone.
#[derive(Debug)]
pub struct TelemetryCell {
    /// The sequence stamp: odd while a publication is in flight, even and
    /// monotonically increasing between publications.
    seq: AtomicU64,
    /// The snapshot payload words (layout in [`write_payload`]).
    words: [AtomicU64; SNAPSHOT_WORDS],
}

impl Default for TelemetryCell {
    fn default() -> Self {
        TelemetryCell {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl TelemetryCell {
    /// Publish the shard's current counters, attributing the verdict delta
    /// since the previous publication to `epoch`'s generation-ring slot.
    ///
    /// Caller must be the shard's sole telemetry writer (hold the shard's
    /// `drop_log` mutex).  Cost: one relaxed snapshot of the counters plus
    /// ~36 relaxed stores and two stamp stores — no RMW, no lock.
    pub(crate) fn publish(&self, stats: &AtomicEnforcerStats, epoch: u64, health: &ShardHealth) {
        let snapshot = stats.snapshot();
        let health = health.snapshot();

        // The previous payload is writer-private between publications (the
        // drop_log lock serializes writers), so these relaxed loads see
        // exactly the last published words.
        let mut words = [0u64; SNAPSHOT_WORDS];
        for (word, cell) in words.iter_mut().zip(self.words.iter()) {
            *word = cell.load(Ordering::Relaxed);
        }
        let (previous, mut ring, _) = read_payload(&words);

        // A counter reset (tests, operator action) makes the snapshot
        // regress; restart attribution from the new totals rather than wrap.
        let reset = snapshot.packets_inspected < previous.packets_inspected
            || snapshot.packets_accepted < previous.packets_accepted
            || snapshot.total_dropped() < previous.total_dropped();
        let (delta_accepted, delta_dropped) = if reset {
            ring = [GenerationCounters::default(); GENERATION_SLOTS];
            (snapshot.packets_accepted, snapshot.total_dropped())
        } else {
            (
                snapshot.packets_accepted - previous.packets_accepted,
                snapshot.total_dropped() - previous.total_dropped(),
            )
        };
        if delta_accepted != 0 || delta_dropped != 0 || ring.iter().all(|g| g.epoch == 0) {
            let slot = ring_slot(&mut ring, epoch);
            slot.accepted += delta_accepted;
            slot.dropped += delta_dropped;
        }

        write_payload(&mut words, &snapshot, &ring, &health);

        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        // Pair with the reader's acquire fence: payload stores must not be
        // observable before the odd stamp.
        fence(Ordering::Release);
        for (cell, word) in self.words.iter().zip(words.iter()) {
            cell.store(*word, Ordering::Relaxed);
        }
        // Release: a reader that acquires the even stamp sees every payload
        // store that preceded it.
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Zero the cell (paired with a stats reset).  Caller must hold the
    /// shard's `drop_log` mutex, like every writer.
    pub(crate) fn reset(&self) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        for cell in &self.words {
            cell.store(0, Ordering::Relaxed);
        }
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// One snapshot attempt: `None` if a publication raced the copy (odd or
    /// changed stamp).  Exposed so tests can prove the retry protocol is
    /// what prevents torn reads; most callers want [`TelemetryCell::read`].
    pub fn try_read(&self) -> Option<TelemetrySnapshot> {
        let before = self.seq.load(Ordering::Acquire);
        if before & 1 == 1 {
            return None;
        }
        let mut words = [0u64; SNAPSHOT_WORDS];
        for (word, cell) in words.iter_mut().zip(self.words.iter()) {
            *word = cell.load(Ordering::Relaxed);
        }
        // Pair with the writer's release fence: the re-read of the stamp
        // must not be satisfied before the payload loads above.
        fence(Ordering::Acquire);
        let after = self.seq.load(Ordering::Relaxed);
        if before != after {
            return None;
        }
        let (stats, generations, health) = read_payload(&words);
        Some(TelemetrySnapshot {
            publications: before / 2,
            stats,
            generations,
            health,
            checksum: words[W_CHECKSUM],
        })
    }

    /// A consistent snapshot, spinning until an attempt lands between
    /// publications.  Writers publish in nanoseconds, so the spin is short;
    /// readers never block a writer.
    pub fn read(&self) -> TelemetrySnapshot {
        loop {
            if let Some(snapshot) = self.try_read() {
                return snapshot;
            }
            std::hint::spin_loop();
        }
    }
}

/// The ring slot for `epoch`: its existing slot, an empty one, or — evicting
/// — the oldest (smallest-epoch) slot, whose counts are re-attributed.
fn ring_slot(
    ring: &mut [GenerationCounters; GENERATION_SLOTS],
    epoch: u64,
) -> &mut GenerationCounters {
    let position = ring
        .iter()
        .position(|slot| slot.epoch == epoch)
        .or_else(|| ring.iter().position(|slot| slot.epoch == 0))
        .unwrap_or_else(|| {
            let oldest = ring
                .iter()
                .enumerate()
                .min_by_key(|(_, slot)| slot.epoch)
                .map(|(index, _)| index)
                .unwrap_or(0);
            ring[oldest] = GenerationCounters::default();
            oldest
        });
    let slot = &mut ring[position];
    slot.epoch = epoch;
    slot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters_with(accepted: u64, dropped_by_policy: u64) -> AtomicEnforcerStats {
        let atomic = AtomicEnforcerStats::new();
        atomic.store(EnforcerStats {
            packets_inspected: accepted + dropped_by_policy,
            packets_accepted: accepted,
            dropped_by_policy,
            ..EnforcerStats::default()
        });
        atomic
    }

    #[test]
    fn fresh_cell_reads_zeroed_and_consistent() {
        let cell = TelemetryCell::default();
        let snapshot = cell.read();
        assert_eq!(snapshot.publications, 0);
        assert_eq!(snapshot.stats, EnforcerStats::default());
        assert!(snapshot.consistent(), "{snapshot:?}");
    }

    #[test]
    fn publish_roundtrips_stats_and_attributes_the_delta() {
        let cell = TelemetryCell::default();
        cell.publish(&counters_with(7, 3), 42, &ShardHealth::default());
        let snapshot = cell.read();
        assert_eq!(snapshot.publications, 1);
        assert_eq!(snapshot.stats.packets_accepted, 7);
        assert_eq!(snapshot.stats.dropped_by_policy, 3);
        assert_eq!(snapshot.generations[0].epoch, 42);
        assert_eq!(snapshot.generations[0].accepted, 7);
        assert_eq!(snapshot.generations[0].dropped, 3);
        assert!(snapshot.consistent(), "{snapshot:?}");
    }

    #[test]
    fn deltas_split_across_epochs() {
        let cell = TelemetryCell::default();
        cell.publish(&counters_with(5, 1), 10, &ShardHealth::default());
        cell.publish(&counters_with(9, 4), 11, &ShardHealth::default());
        let snapshot = cell.read();
        assert_eq!(snapshot.publications, 2);
        let by_epoch: Vec<_> = snapshot
            .generations
            .iter()
            .filter(|g| g.epoch != 0)
            .collect();
        assert_eq!(by_epoch.len(), 2);
        assert_eq!((by_epoch[0].accepted, by_epoch[0].dropped), (5, 1));
        assert_eq!((by_epoch[1].accepted, by_epoch[1].dropped), (4, 3));
        assert!(snapshot.consistent());
    }

    #[test]
    fn ring_evicts_the_oldest_epoch_at_capacity() {
        let cell = TelemetryCell::default();
        for (index, epoch) in (100..100 + GENERATION_SLOTS as u64 + 1).enumerate() {
            cell.publish(
                &counters_with((index as u64 + 1) * 2, 0),
                epoch,
                &ShardHealth::default(),
            );
        }
        let snapshot = cell.read();
        let epochs: Vec<u64> = snapshot
            .generations
            .iter()
            .map(|g| g.epoch)
            .filter(|&e| e != 0)
            .collect();
        assert_eq!(epochs.len(), GENERATION_SLOTS);
        assert!(
            !epochs.contains(&100),
            "oldest epoch must be evicted: {epochs:?}"
        );
        assert!(epochs.contains(&(100 + GENERATION_SLOTS as u64)));
    }

    #[test]
    fn counter_reset_restarts_attribution_without_wrapping() {
        let cell = TelemetryCell::default();
        cell.publish(&counters_with(50, 5), 7, &ShardHealth::default());
        let fresh = AtomicEnforcerStats::new();
        fresh.store(EnforcerStats {
            packets_inspected: 2,
            packets_accepted: 2,
            ..EnforcerStats::default()
        });
        cell.publish(&fresh, 8, &ShardHealth::default());
        let snapshot = cell.read();
        assert_eq!(snapshot.stats.packets_accepted, 2);
        let total_ring: u64 = snapshot.generations.iter().map(|g| g.accepted).sum();
        assert_eq!(total_ring, 2, "{snapshot:?}");
        assert!(snapshot.consistent());
    }

    #[test]
    fn reset_zeroes_the_published_payload() {
        let cell = TelemetryCell::default();
        cell.publish(&counters_with(9, 9), 3, &ShardHealth::default());
        cell.reset();
        let snapshot = cell.read();
        assert_eq!(snapshot.stats, EnforcerStats::default());
        assert_eq!(
            snapshot.generations,
            [GenerationCounters::default(); GENERATION_SLOTS]
        );
        assert!(snapshot.consistent());
    }

    #[test]
    fn try_read_refuses_an_in_flight_publication() {
        let cell = TelemetryCell::default();
        // Force the stamp odd, as if a writer were mid-publication.
        cell.seq.store(1, Ordering::Release);
        assert!(cell.try_read().is_none());
        cell.seq.store(2, Ordering::Release);
        assert!(cell.try_read().is_some());
    }

    #[test]
    fn checksum_detects_a_hand_torn_payload() {
        let cell = TelemetryCell::default();
        cell.publish(&counters_with(4, 2), 1, &ShardHealth::default());
        let mut snapshot = cell.read();
        assert!(snapshot.checksum_valid());
        snapshot.stats.packets_accepted += 1;
        assert!(
            !snapshot.checksum_valid(),
            "tampered payload must not verify"
        );
    }
}
