//! The Policy Enforcer (network-side component).
//!
//! The Policy Enforcer consumes packets from an NFQUEUE and performs the three
//! stages of §IV-A3: **extraction** of the app tag and index sequence from
//! `IP_OPTIONS`, **decoding** of indexes back to method signatures through the
//! signature database, and **enforcement** of the policy set.  Packets that
//! violate policy are dropped; conforming packets continue to the Packet
//! Sanitizer.

use serde::{Deserialize, Serialize};

use bp_netsim::netfilter::{QueueHandler, Verdict};
use bp_netsim::options::IpOptionKind;
use bp_netsim::packet::Ipv4Packet;

use crate::encoding::ContextEncoding;
use crate::offline::SignatureDatabase;
use crate::policy::{Decision, PolicySet};

/// Configuration of the Policy Enforcer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcerConfig {
    /// Drop packets that carry no BorderPatrol context option at all.
    ///
    /// In the paper's deployment model (§VII "Compatibility") every packet
    /// leaving the work profile is tagged, so untagged packets indicate
    /// traffic from outside BorderPatrol's control and are dropped in strict
    /// deployments; permissive deployments let them pass (useful while rolling
    /// the system out).
    pub drop_untagged: bool,
    /// Drop packets whose app tag is not present in the signature database.
    pub drop_unknown_apps: bool,
    /// Drop packets whose context option fails to decode.
    pub drop_malformed_context: bool,
}

impl Default for EnforcerConfig {
    fn default() -> Self {
        EnforcerConfig { drop_untagged: false, drop_unknown_apps: true, drop_malformed_context: true }
    }
}

impl EnforcerConfig {
    /// The strict deployment described in §VII: untagged packets are dropped.
    pub fn strict() -> Self {
        EnforcerConfig { drop_untagged: true, drop_unknown_apps: true, drop_malformed_context: true }
    }

    /// A permissive configuration that only enforces explicit policies.
    pub fn permissive() -> Self {
        EnforcerConfig {
            drop_untagged: false,
            drop_unknown_apps: false,
            drop_malformed_context: false,
        }
    }
}

/// Counters the enforcer keeps, broken down by outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcerStats {
    /// Packets inspected.
    pub packets_inspected: u64,
    /// Packets accepted.
    pub packets_accepted: u64,
    /// Packets dropped because a policy matched.
    pub dropped_by_policy: u64,
    /// Packets dropped because they carried no context option.
    pub dropped_untagged: u64,
    /// Packets dropped because the app tag was unknown.
    pub dropped_unknown_app: u64,
    /// Packets dropped because the context failed to decode.
    pub dropped_malformed: u64,
}

impl EnforcerStats {
    /// Total packets dropped for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_by_policy
            + self.dropped_untagged
            + self.dropped_unknown_app
            + self.dropped_malformed
    }
}

/// The Policy Enforcer NFQUEUE consumer.
///
/// # Examples
///
/// ```
/// use bp_core::enforcer::{EnforcerConfig, PolicyEnforcer};
/// use bp_core::offline::SignatureDatabase;
/// use bp_core::policy::PolicySet;
///
/// let enforcer = PolicyEnforcer::new(
///     SignatureDatabase::new(),
///     PolicySet::new(),
///     EnforcerConfig::default(),
/// );
/// assert_eq!(enforcer.stats().packets_inspected, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PolicyEnforcer {
    database: SignatureDatabase,
    policies: PolicySet,
    config: EnforcerConfig,
    stats: EnforcerStats,
    drop_log: Vec<String>,
}

impl PolicyEnforcer {
    /// Create an enforcer with a signature database, a policy set and a
    /// configuration.
    pub fn new(database: SignatureDatabase, policies: PolicySet, config: EnforcerConfig) -> Self {
        PolicyEnforcer { database, policies, config, stats: EnforcerStats::default(), drop_log: Vec::new() }
    }

    /// The active policy set.
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    /// Replace the policy set (administrators reconfigure policies centrally;
    /// this is the "Reconfigurability" design goal of §IV).
    pub fn set_policies(&mut self, policies: PolicySet) {
        self.policies = policies;
    }

    /// Replace the signature database (e.g. after new apps are analyzed).
    pub fn set_database(&mut self, database: SignatureDatabase) {
        self.database = database;
    }

    /// The signature database.
    pub fn database(&self) -> &SignatureDatabase {
        &self.database
    }

    /// Enforcement statistics.
    pub fn stats(&self) -> EnforcerStats {
        self.stats
    }

    /// Human-readable reasons of the most recent drops (most recent last).
    pub fn drop_log(&self) -> &[String] {
        &self.drop_log
    }

    /// Reset statistics and the drop log.
    pub fn reset_stats(&mut self) {
        self.stats = EnforcerStats::default();
        self.drop_log.clear();
    }

    fn record_drop(&mut self, reason: String) -> Verdict {
        self.drop_log.push(reason.clone());
        if self.drop_log.len() > 10_000 {
            self.drop_log.remove(0);
        }
        Verdict::Drop { reason }
    }

    /// Inspect one packet and produce a verdict (the three-stage pipeline).
    pub fn inspect(&mut self, packet: &Ipv4Packet) -> Verdict {
        self.stats.packets_inspected += 1;

        // Stage 1: extraction.
        let Some(option) = packet.options().find(IpOptionKind::BorderPatrolContext) else {
            if self.config.drop_untagged {
                self.stats.dropped_untagged += 1;
                return self.record_drop("packet carries no BorderPatrol context".to_string());
            }
            self.stats.packets_accepted += 1;
            return Verdict::Accept;
        };

        // Stage 2: decoding.
        let decoded = match ContextEncoding::decode(&option.data) {
            Ok(decoded) => decoded,
            Err(e) => {
                if self.config.drop_malformed_context {
                    self.stats.dropped_malformed += 1;
                    return self.record_drop(format!("malformed context option: {e}"));
                }
                self.stats.packets_accepted += 1;
                return Verdict::Accept;
            }
        };
        let stack = match self.database.resolve_stack(decoded.app_tag, &decoded.frame_indexes) {
            Ok(stack) => stack,
            Err(_) if !self.database.contains(decoded.app_tag) => {
                if self.config.drop_unknown_apps {
                    self.stats.dropped_unknown_app += 1;
                    return self
                        .record_drop(format!("unknown application tag {}", decoded.app_tag));
                }
                self.stats.packets_accepted += 1;
                return Verdict::Accept;
            }
            Err(e) => {
                if self.config.drop_malformed_context {
                    self.stats.dropped_malformed += 1;
                    return self.record_drop(format!("undecodable stack indexes: {e}"));
                }
                self.stats.packets_accepted += 1;
                return Verdict::Accept;
            }
        };

        // Stage 3: enforcement.
        match self.policies.evaluate(decoded.app_tag, &stack) {
            Decision::Allow => {
                self.stats.packets_accepted += 1;
                Verdict::Accept
            }
            Decision::Deny { policy, reason } => {
                self.stats.dropped_by_policy += 1;
                let detail = match policy {
                    Some(policy) => format!("policy {policy} violated: {reason}"),
                    None => reason,
                };
                self.record_drop(detail)
            }
        }
    }
}

impl QueueHandler for PolicyEnforcer {
    fn name(&self) -> &str {
        "policy-enforcer"
    }

    fn handle(&mut self, packet: &mut Ipv4Packet) -> Verdict {
        self.inspect(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineAnalyzer;
    use crate::policy::Policy;
    use bp_appsim::generator::CorpusGenerator;
    use bp_netsim::addr::Endpoint;
    use bp_netsim::options::IpOption;
    use bp_types::EnforcementLevel;

    fn tagged_packet(payload_option: Vec<u8>) -> Ipv4Packet {
        let mut packet = Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 4], 40001),
            Endpoint::new([31, 13, 71, 36], 443),
            b"POST /beacon HTTP/1.1".to_vec(),
        );
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::BorderPatrolContext, payload_option).unwrap())
            .unwrap();
        packet
    }

    fn untagged_packet() -> Ipv4Packet {
        Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 4], 40001),
            Endpoint::new([31, 13, 71, 36], 443),
            b"GET / HTTP/1.1".to_vec(),
        )
    }

    /// Build a database + a context payload whose decoded stack includes the
    /// Facebook analytics frames of the SolCalendar model.
    fn solcalendar_fixture() -> (SignatureDatabase, Vec<u8>, Vec<u8>) {
        let spec = CorpusGenerator::solcalendar();
        let apk = spec.build_apk();
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let table = bp_dex::MethodTable::from_apk(&apk).unwrap();

        let indexes_for = |functionality: &str| -> Vec<u32> {
            spec.functionality(functionality)
                .unwrap()
                .call_chain
                .iter()
                .rev()
                .map(|sig| table.index_of(sig).unwrap())
                .collect()
        };
        let analytics =
            ContextEncoding::encode(apk.hash().tag(), &indexes_for("fb-analytics"), false).unwrap();
        let login =
            ContextEncoding::encode(apk.hash().tag(), &indexes_for("fb-login"), false).unwrap();
        (db, analytics, login)
    }

    #[test]
    fn policy_violations_are_dropped_and_logged() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);
        let mut enforcer = PolicyEnforcer::new(db, policies, EnforcerConfig::default());

        let verdict = enforcer.inspect(&tagged_packet(analytics_payload));
        assert!(!verdict.is_accept());
        let verdict = enforcer.inspect(&tagged_packet(login_payload));
        assert!(verdict.is_accept());

        let stats = enforcer.stats();
        assert_eq!(stats.packets_inspected, 2);
        assert_eq!(stats.dropped_by_policy, 1);
        assert_eq!(stats.packets_accepted, 1);
        assert_eq!(enforcer.drop_log().len(), 1);
        assert!(enforcer.drop_log()[0].contains("com/facebook/appevents"));
    }

    #[test]
    fn untagged_packets_follow_configuration() {
        let (db, _, _) = solcalendar_fixture();
        let mut permissive =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(permissive.inspect(&untagged_packet()).is_accept());
        assert_eq!(permissive.stats().dropped_untagged, 0);

        let mut strict = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::strict());
        assert!(!strict.inspect(&untagged_packet()).is_accept());
        assert_eq!(strict.stats().dropped_untagged, 1);
    }

    #[test]
    fn unknown_app_tags_follow_configuration() {
        let (db, _, _) = solcalendar_fixture();
        let bogus_payload = ContextEncoding::encode(
            bp_types::ApkHash::digest(b"never-analyzed").tag(),
            &[0, 1],
            false,
        )
        .unwrap();

        let mut default = PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(!default.inspect(&tagged_packet(bogus_payload.clone())).is_accept());
        assert_eq!(default.stats().dropped_unknown_app, 1);

        let mut permissive = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::permissive());
        assert!(permissive.inspect(&tagged_packet(bogus_payload)).is_accept());
    }

    #[test]
    fn malformed_context_is_dropped_by_default() {
        let (db, _, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        // 3 bytes is shorter than the payload header.
        let verdict = enforcer.inspect(&tagged_packet(vec![1, 2, 3]));
        assert!(!verdict.is_accept());
        assert_eq!(enforcer.stats().dropped_malformed, 1);
    }

    #[test]
    fn dangling_index_counts_as_malformed_for_known_app() {
        let (db, _, _) = solcalendar_fixture();
        let tag = db.iter().next().map(|(tag_hex, _)| bp_types::AppTag::from_hex(tag_hex).unwrap()).unwrap();
        let payload = ContextEncoding::encode(tag, &[60_000], false).unwrap();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        assert!(!enforcer.inspect(&tagged_packet(payload)).is_accept());
        assert_eq!(enforcer.stats().dropped_malformed, 1);
    }

    #[test]
    fn reconfiguration_changes_behaviour_without_rebuilding() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        assert!(enforcer.inspect(&tagged_packet(analytics_payload.clone())).is_accept());

        enforcer.set_policies(PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Library,
            "com/facebook",
        )]));
        assert!(!enforcer.inspect(&tagged_packet(analytics_payload)).is_accept());
        enforcer.reset_stats();
        assert_eq!(enforcer.stats().packets_inspected, 0);
        assert!(enforcer.drop_log().is_empty());
    }

    #[test]
    fn stats_total_dropped_sums_reasons() {
        let stats = EnforcerStats {
            packets_inspected: 10,
            packets_accepted: 4,
            dropped_by_policy: 3,
            dropped_untagged: 1,
            dropped_unknown_app: 1,
            dropped_malformed: 1,
        };
        assert_eq!(stats.total_dropped(), 6);
    }
}
