//! The Policy Enforcer (network-side component).
//!
//! The Policy Enforcer consumes packets from an NFQUEUE and performs the three
//! stages of §IV-A3: **extraction** of the app tag and index sequence from
//! `IP_OPTIONS`, **decoding** of indexes back to method signatures through the
//! signature database, and **enforcement** of the policy set.  Packets that
//! violate policy are dropped; conforming packets continue to the Packet
//! Sanitizer.
//!
//! # Architecture: compiled data plane
//!
//! Enforcement state is split into two halves so the hot path scales:
//!
//! * [`EnforcementTables`] — the **immutable, compiled** half: a
//!   [`CompiledSignatureDb`] (per-app tables keyed by the tag's `u64` form,
//!   descriptors pre-parsed) plus a [`CompiledPolicySet`] (targets pre-split
//!   into slice comparisons) plus the [`EnforcerConfig`].  Built once, shared
//!   via `Arc` by every worker.
//! * Per-shard **mutable** state — [`AtomicEnforcerStats`] counters, a
//!   [`DropLog`] ring buffer and a reusable index-decode scratch buffer.
//!
//! [`PolicyEnforcer`] is the single-shard facade with the historical API;
//! [`ShardedEnforcer`] fans packet batches across N shards with merged
//! statistics.  On the accept path the compiled plane performs no signature
//! parsing and no `String` allocation.
//!
//! # Flow-aware enforcement
//!
//! Every shard additionally owns a [`FlowTable`]: a bounded map from the
//! 5-tuple flow key to the cached outcome of the last evaluation, versioned
//! by a hash of the exact context-option payload and by the **epoch** of the
//! compiled tables.  A packet whose flow and payload match hits an O(1)
//! probe and skips decode/resolve/evaluate entirely; any context change
//! re-evaluates, and every table rebuild — a committed
//! [`ControlPlane`](crate::control::ControlPlane) transaction installing a
//! new generation — bumps the epoch so entries cached before a hot swap are
//! lazily invalidated instead of served stale.
//!
//! The flow table doubles as a **replay detector**: the set-once hardened
//! kernel injects the context exactly once per socket, so a payload change
//! on a live flow can only be replayed or injected context.  Such mid-flow
//! context switches are counted ([`EnforcerStats::flow_context_switches`])
//! and, under [`EnforcerConfig::drop_context_switch`], dropped while the
//! flow's legitimate cached context is retained.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use bp_netsim::clock::SimDuration;
use bp_netsim::netfilter::{QueueHandler, Verdict};
use bp_netsim::options::IpOptionKind;
use bp_netsim::packet::Ipv4Packet;

use crate::encoding::ContextEncoding;
use crate::faults::{FaultInjector, HealthState, ShardHealth, ShardHealthSnapshot};
use crate::flow::{CachedOutcome, FlowProbe, FlowTable, FlowTableConfig};
use crate::offline::{CompiledSignatureDb, SignatureDatabase};
use crate::policy::{CompiledPolicySet, CompiledVerdict, Decision, PolicySet};
use crate::runtime::{BatchRuntime, PacketSource, WorkerPool};
use crate::telemetry::{TelemetryCell, TelemetrySnapshot};
use crate::wire::{self, WireError};

/// Source of the monotonically increasing epoch stamped onto every
/// [`EnforcementTables`] build.  Process-global so that *any* recompilation
/// (a control-plane commit, a policy or database swap, an independently
/// built table set) observes a fresh epoch and flow-table entries cached
/// under older tables can never be mistaken for current.
static NEXT_TABLE_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Configuration of the Policy Enforcer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcerConfig {
    /// Drop packets that carry no BorderPatrol context option at all.
    ///
    /// In the paper's deployment model (§VII "Compatibility") every packet
    /// leaving the work profile is tagged, so untagged packets indicate
    /// traffic from outside BorderPatrol's control and are dropped in strict
    /// deployments; permissive deployments let them pass (useful while rolling
    /// the system out).
    pub drop_untagged: bool,
    /// Drop packets whose app tag is not present in the signature database.
    pub drop_unknown_apps: bool,
    /// Drop packets whose context option fails to decode.
    pub drop_malformed_context: bool,
    /// Drop packets whose context payload differs from the one already
    /// cached for their (live, same-epoch) flow.
    ///
    /// The hardened kernel injects the context once per socket (set-once
    /// `setsockopt`, §IV-A2/§VII), so the packets of a live flow can never
    /// legitimately change their context: a mid-flow change is the signature
    /// of verbatim context **replay** or injection riding an established
    /// flow.  Detection requires connection tracking, so it fires only on
    /// the flow-cached path ([`PolicyEnforcer::inspect`] /
    /// [`ShardedEnforcer::inspect_batch`]); the uncached and legacy
    /// baselines have no flow state and cannot observe switches.  Off by
    /// default (a switch is then counted in
    /// [`EnforcerStats::flow_context_switches`] and re-evaluated); enabled
    /// in [`EnforcerConfig::strict`] deployments.
    #[serde(default)]
    pub drop_context_switch: bool,
}

impl Default for EnforcerConfig {
    fn default() -> Self {
        EnforcerConfig {
            drop_untagged: false,
            drop_unknown_apps: true,
            drop_malformed_context: true,
            drop_context_switch: false,
        }
    }
}

impl EnforcerConfig {
    /// The strict deployment described in §VII: untagged packets are dropped,
    /// and so are mid-flow context switches (replayed/injected context on a
    /// live flow).
    pub fn strict() -> Self {
        EnforcerConfig {
            drop_untagged: true,
            drop_unknown_apps: true,
            drop_malformed_context: true,
            drop_context_switch: true,
        }
    }

    /// A permissive configuration that only enforces explicit policies.
    pub fn permissive() -> Self {
        EnforcerConfig {
            drop_untagged: false,
            drop_unknown_apps: false,
            drop_malformed_context: false,
            drop_context_switch: false,
        }
    }
}

/// Counters the enforcer keeps, broken down by outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcerStats {
    /// Packets inspected.
    pub packets_inspected: u64,
    /// Packets accepted.
    pub packets_accepted: u64,
    /// Packets dropped because a policy matched.
    pub dropped_by_policy: u64,
    /// Packets dropped because they carried no context option.
    pub dropped_untagged: u64,
    /// Packets dropped because the app tag was unknown.
    pub dropped_unknown_app: u64,
    /// Packets dropped because the context failed to decode.
    pub dropped_malformed: u64,
    /// Packets dropped because they carried more than one context option
    /// (the hardened kernel never emits duplicates, so a second option is a
    /// spoofing attempt riding ahead of the kernel-injected context).
    pub dropped_duplicate_context: u64,
    /// Packets dropped because their context payload differed from the one
    /// cached for their live flow (mid-flow context switch = replayed or
    /// injected context; only charged when
    /// [`EnforcerConfig::drop_context_switch`] is enabled).
    pub dropped_context_switch: u64,
    /// Frames dropped at the byte ingress boundary because they failed wire
    /// decode ([`crate::wire::WireError`]): truncated, corrupt checksum,
    /// unknown protocol or inconsistent option geometry.  Such frames never
    /// reach context decode, so they are charged here (and to
    /// [`EnforcerStats::packets_inspected`]), not to
    /// [`EnforcerStats::dropped_malformed`].
    pub dropped_wire: u64,
    /// Packets failed closed because the worker inspecting their partition
    /// panicked (injected or real): the uninspected remainder of the
    /// partition drops under this counter instead of poisoning the
    /// enforcer.  `serde(default)` so pre-fault snapshots still parse.
    #[serde(default)]
    pub dropped_runtime_fault: u64,
    /// Packets shed fail-closed by the overload guard before inspection
    /// (batch length past the admission watermark).  `serde(default)` so
    /// pre-fault snapshots still parse.
    #[serde(default)]
    pub dropped_overload: u64,
    /// Tagged packets whose verdict was served from the flow table.
    pub flow_hits: u64,
    /// Tagged packets that required a full decode/resolve/evaluate pass.
    pub flow_misses: u64,
    /// Flow-table entries evicted to admit new flows at capacity.
    pub flow_evictions: u64,
    /// Mid-flow context changes observed by the flow table (counted whether
    /// or not [`EnforcerConfig::drop_context_switch`] turns them into
    /// drops): a live, unexpired flow entry saw a packet with different
    /// context payload bytes under the same tables epoch.
    pub flow_context_switches: u64,
    /// [`EnforcerStats::dropped_wire`] broken out per [`WireError`]
    /// variant — `dropped_wire` always equals
    /// [`WireDropStats::total`] of this field.  `serde(default)` so
    /// snapshots serialized before the breakdown existed still parse.
    #[serde(default)]
    pub dropped_wire_by: WireDropStats,
}

/// Wire-decode drops broken out by [`WireError`] variant (one counter per
/// variant, field order matching [`WireError::ALL`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireDropStats {
    /// Frames rejected with [`WireError::TruncatedHeader`].
    pub truncated_header: u64,
    /// Frames rejected with [`WireError::BadVersion`].
    pub bad_version: u64,
    /// Frames rejected with [`WireError::BadIhl`].
    pub bad_ihl: u64,
    /// Frames rejected with [`WireError::TruncatedFrame`].
    pub truncated_frame: u64,
    /// Frames rejected with [`WireError::BadChecksum`].
    pub bad_checksum: u64,
    /// Frames rejected with [`WireError::UnknownProtocol`].
    pub unknown_protocol: u64,
    /// Frames rejected with [`WireError::OptionTruncated`].
    pub option_truncated: u64,
    /// Frames rejected with [`WireError::BadOptionLength`].
    pub bad_option_length: u64,
    /// Frames rejected with [`WireError::OptionOverrun`].
    pub option_overrun: u64,
    /// Frames rejected with [`WireError::LengthMismatch`].
    pub length_mismatch: u64,
}

impl WireDropStats {
    /// The counter for one error variant.
    pub fn get(&self, error: WireError) -> u64 {
        self.to_array()[error.index()]
    }

    /// Sum across every variant (always equals
    /// [`EnforcerStats::dropped_wire`]).
    pub fn total(&self) -> u64 {
        self.to_array().iter().sum()
    }

    /// The counters as an array indexed by [`WireError::index`].
    pub fn to_array(&self) -> [u64; 10] {
        [
            self.truncated_header,
            self.bad_version,
            self.bad_ihl,
            self.truncated_frame,
            self.bad_checksum,
            self.unknown_protocol,
            self.option_truncated,
            self.bad_option_length,
            self.option_overrun,
            self.length_mismatch,
        ]
    }

    /// Rebuild from an array indexed by [`WireError::index`].
    pub fn from_array(counts: [u64; 10]) -> WireDropStats {
        WireDropStats {
            truncated_header: counts[0],
            bad_version: counts[1],
            bad_ihl: counts[2],
            truncated_frame: counts[3],
            bad_checksum: counts[4],
            unknown_protocol: counts[5],
            option_truncated: counts[6],
            bad_option_length: counts[7],
            option_overrun: counts[8],
            length_mismatch: counts[9],
        }
    }

    /// Sum two breakdowns (used when merging shards).
    pub fn merged(&self, other: &WireDropStats) -> WireDropStats {
        let mut counts = self.to_array();
        for (count, add) in counts.iter_mut().zip(other.to_array()) {
            *count += add;
        }
        WireDropStats::from_array(counts)
    }
}

impl EnforcerStats {
    /// Total packets dropped for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_by_policy
            + self.dropped_untagged
            + self.dropped_unknown_app
            + self.dropped_malformed
            + self.dropped_duplicate_context
            + self.dropped_context_switch
            + self.dropped_wire
            + self.dropped_runtime_fault
            + self.dropped_overload
    }

    /// Sum two snapshots (used when merging shards).
    pub fn merged(&self, other: &EnforcerStats) -> EnforcerStats {
        EnforcerStats {
            packets_inspected: self.packets_inspected + other.packets_inspected,
            packets_accepted: self.packets_accepted + other.packets_accepted,
            dropped_by_policy: self.dropped_by_policy + other.dropped_by_policy,
            dropped_untagged: self.dropped_untagged + other.dropped_untagged,
            dropped_unknown_app: self.dropped_unknown_app + other.dropped_unknown_app,
            dropped_malformed: self.dropped_malformed + other.dropped_malformed,
            dropped_duplicate_context: self.dropped_duplicate_context
                + other.dropped_duplicate_context,
            dropped_context_switch: self.dropped_context_switch + other.dropped_context_switch,
            dropped_wire: self.dropped_wire + other.dropped_wire,
            dropped_runtime_fault: self.dropped_runtime_fault + other.dropped_runtime_fault,
            dropped_overload: self.dropped_overload + other.dropped_overload,
            flow_hits: self.flow_hits + other.flow_hits,
            flow_misses: self.flow_misses + other.flow_misses,
            flow_evictions: self.flow_evictions + other.flow_evictions,
            flow_context_switches: self.flow_context_switches + other.flow_context_switches,
            dropped_wire_by: self.dropped_wire_by.merged(&other.dropped_wire_by),
        }
    }

    /// This snapshot with the flow-cache bookkeeping counters zeroed: the
    /// per-packet outcome counts, which are what cached and uncached (or
    /// legacy) pipelines must agree on regardless of how many probes hit.
    ///
    /// [`EnforcerStats::dropped_context_switch`] is an *outcome* counter and
    /// is **not** zeroed: with [`EnforcerConfig::drop_context_switch`]
    /// enabled the flow-cached path is intentionally stricter than the
    /// stateless baselines (which cannot observe switches), so the
    /// comparison is only meaningful with the knob off.
    pub fn without_flow_counters(&self) -> EnforcerStats {
        EnforcerStats {
            flow_hits: 0,
            flow_misses: 0,
            flow_evictions: 0,
            flow_context_switches: 0,
            ..*self
        }
    }
}

/// Lock-free enforcement counters, readable while shard workers are counting.
#[derive(Debug, Default)]
pub struct AtomicEnforcerStats {
    inspected: AtomicU64,
    accepted: AtomicU64,
    by_policy: AtomicU64,
    untagged: AtomicU64,
    unknown_app: AtomicU64,
    malformed: AtomicU64,
    duplicate_context: AtomicU64,
    context_switch: AtomicU64,
    wire: AtomicU64,
    runtime_fault: AtomicU64,
    overload: AtomicU64,
    flow_hits: AtomicU64,
    flow_misses: AtomicU64,
    flow_evictions: AtomicU64,
    flow_context_switches: AtomicU64,
    wire_by: [AtomicU64; 10],
}

impl AtomicEnforcerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AtomicEnforcerStats::default()
    }

    /// A consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> EnforcerStats {
        EnforcerStats {
            packets_inspected: self.inspected.load(Ordering::Relaxed),
            packets_accepted: self.accepted.load(Ordering::Relaxed),
            dropped_by_policy: self.by_policy.load(Ordering::Relaxed),
            dropped_untagged: self.untagged.load(Ordering::Relaxed),
            dropped_unknown_app: self.unknown_app.load(Ordering::Relaxed),
            dropped_malformed: self.malformed.load(Ordering::Relaxed),
            dropped_duplicate_context: self.duplicate_context.load(Ordering::Relaxed),
            dropped_context_switch: self.context_switch.load(Ordering::Relaxed),
            dropped_wire: self.wire.load(Ordering::Relaxed),
            dropped_runtime_fault: self.runtime_fault.load(Ordering::Relaxed),
            dropped_overload: self.overload.load(Ordering::Relaxed),
            flow_hits: self.flow_hits.load(Ordering::Relaxed),
            flow_misses: self.flow_misses.load(Ordering::Relaxed),
            flow_evictions: self.flow_evictions.load(Ordering::Relaxed),
            flow_context_switches: self.flow_context_switches.load(Ordering::Relaxed),
            dropped_wire_by: {
                let mut counts = [0u64; 10];
                for (count, counter) in counts.iter_mut().zip(self.wire_by.iter()) {
                    *count = counter.load(Ordering::Relaxed);
                }
                WireDropStats::from_array(counts)
            },
        }
    }

    /// Overwrite every counter from a snapshot.
    pub fn store(&self, stats: EnforcerStats) {
        self.inspected
            .store(stats.packets_inspected, Ordering::Relaxed);
        self.accepted
            .store(stats.packets_accepted, Ordering::Relaxed);
        self.by_policy
            .store(stats.dropped_by_policy, Ordering::Relaxed);
        self.untagged
            .store(stats.dropped_untagged, Ordering::Relaxed);
        self.unknown_app
            .store(stats.dropped_unknown_app, Ordering::Relaxed);
        self.malformed
            .store(stats.dropped_malformed, Ordering::Relaxed);
        self.duplicate_context
            .store(stats.dropped_duplicate_context, Ordering::Relaxed);
        self.context_switch
            .store(stats.dropped_context_switch, Ordering::Relaxed);
        self.wire.store(stats.dropped_wire, Ordering::Relaxed);
        self.runtime_fault
            .store(stats.dropped_runtime_fault, Ordering::Relaxed);
        self.overload
            .store(stats.dropped_overload, Ordering::Relaxed);
        self.flow_hits.store(stats.flow_hits, Ordering::Relaxed);
        self.flow_misses.store(stats.flow_misses, Ordering::Relaxed);
        self.flow_evictions
            .store(stats.flow_evictions, Ordering::Relaxed);
        self.flow_context_switches
            .store(stats.flow_context_switches, Ordering::Relaxed);
        for (counter, count) in self.wire_by.iter().zip(stats.dropped_wire_by.to_array()) {
            counter.store(count, Ordering::Relaxed);
        }
    }

    /// Count one frame that failed wire decode with `error`: inspected,
    /// then dropped at the byte ingress boundary before any enforcement
    /// logic ran — charged to both the aggregate
    /// [`EnforcerStats::dropped_wire`] and the per-variant breakdown.
    pub fn record_wire_drop(&self, error: WireError) {
        self.inspected.fetch_add(1, Ordering::Relaxed);
        self.wire.fetch_add(1, Ordering::Relaxed);
        self.wire_by[error.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one packet failed closed because its partition's worker
    /// panicked: inspected, then dropped without any enforcement logic
    /// having run.
    pub fn record_runtime_fault(&self) {
        self.inspected.fetch_add(1, Ordering::Relaxed);
        self.runtime_fault.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one packet shed fail-closed by the overload guard before
    /// inspection.
    pub fn record_overload(&self) {
        self.inspected.fetch_add(1, Ordering::Relaxed);
        self.overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.store(EnforcerStats::default());
    }
}

/// Default capacity of the drop log ring buffer.
pub const DROP_LOG_CAPACITY: usize = 10_000;

/// Drop-log reason charged to packets failed closed because the worker
/// inspecting their partition panicked ([`EnforcerStats::dropped_runtime_fault`]).
pub const RUNTIME_FAULT_DROP_REASON: &str = "runtime fault: worker panicked; packet failed closed";

/// Drop-log reason charged to packets shed fail-closed by the overload guard
/// ([`EnforcerStats::dropped_overload`]).
pub const OVERLOAD_DROP_REASON: &str =
    "overload: batch past admission watermark; packet shed fail-closed";

/// Why a packet was dropped, as retained by the [`DropLog`].
///
/// The log used to store `String`s, which made every drop clone the reason
/// twice (once into the log, once into the returned
/// [`Verdict::Drop`]).  A `DropReason` is either a `'static` conformance
/// diagnostic (appending it is a pointer copy) or an evaluation diagnostic
/// shared with the flow cache's [`CachedOutcome`] behind an `Arc`
/// (appending it is a refcount bump) — logging never copies string bytes.
/// The human-readable text, rendered on demand by
/// [`DropReason::as_str`] / [`DropLog::to_vec`], is byte-identical to what
/// the `String` log recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropReason {
    /// A fixed conformance diagnostic (§IV-A4 checks, strict-mode untagged
    /// drops, mid-flow context switches).
    Static(&'static str),
    /// A diagnostic rendered during evaluation (malformed context, unknown
    /// app, policy denial), shared with the cached outcome that produced it.
    Rendered(Arc<str>),
}

impl DropReason {
    /// The reason text.
    pub fn as_str(&self) -> &str {
        match self {
            DropReason::Static(reason) => reason,
            DropReason::Rendered(reason) => reason,
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&'static str> for DropReason {
    fn from(reason: &'static str) -> Self {
        DropReason::Static(reason)
    }
}

impl From<String> for DropReason {
    fn from(reason: String) -> Self {
        DropReason::Rendered(reason.into())
    }
}

impl From<&Arc<str>> for DropReason {
    fn from(reason: &Arc<str>) -> Self {
        DropReason::Rendered(Arc::clone(reason))
    }
}

/// Bounded log of drop reasons (most recent last).
///
/// Backed by a `VecDeque` ring buffer: hitting the capacity evicts the oldest
/// entry in O(1), unlike the `Vec::remove(0)` eviction the interpretive
/// prototype used, which shifted the remaining 10,000 entries on every drop
/// past capacity.  Entries are [`DropReason`]s, so recording a drop never
/// copies the reason text.
#[derive(Debug, Clone)]
pub struct DropLog {
    entries: VecDeque<DropReason>,
    capacity: usize,
}

impl Default for DropLog {
    fn default() -> Self {
        DropLog::new(DROP_LOG_CAPACITY)
    }
}

impl DropLog {
    /// An empty log bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        DropLog {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append a reason, evicting the oldest entry if the log is full.
    pub fn push(&mut self, reason: impl Into<DropReason>) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(reason.into());
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no drops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate over retained reasons, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(DropReason::as_str)
    }

    /// Render the retained reasons into a vector, oldest first.
    pub fn to_vec(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|reason| reason.as_str().to_owned())
            .collect()
    }

    /// Discard all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// How the compiled policy half of a generation was obtained — what
/// [`EnforcementTables::next_generation`] reports back to the control plane
/// (and through it to the reuse counters the regression tests observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyReuse {
    /// The previous generation's compiled set was shared unchanged.
    Shared,
    /// The previous tables were extended in place-sharing fashion.
    Incremental {
        /// Compiled rules carried over without recompilation.
        reused: usize,
        /// Newly compiled rules appended to the tables.
        appended: usize,
    },
    /// The set was recompiled from scratch.
    Full,
}

/// What [`EnforcementTables::next_generation`] reused from the previous
/// generation's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableReuse {
    /// The compiled signature database was shared rather than recompiled.
    pub database_reused: bool,
    /// How the compiled policy set was obtained.
    pub policy: PolicyReuse,
}

/// The control plane's description of how a staged policy set relates to the
/// previously committed one, steering [`EnforcementTables::next_generation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDelta {
    /// The staged set is identical to the committed one.
    Unchanged,
    /// The staged set equals the committed one plus appended policies.
    Appended {
        /// Position of the first appended policy (= previous set length).
        split: usize,
    },
    /// The staged set removed, replaced or reordered policies.
    Changed,
}

/// The immutable, compiled half of the enforcement plane: compiled signature
/// database + compiled policy set + configuration.  Built once from the
/// interchange forms and shared (via [`Arc`]) by every shard and facade.
///
/// Both compiled halves are individually [`Arc`]-shared so a generation that
/// changes only one of them (or neither — a config-only swap) can reuse the
/// other wholesale; see [`EnforcementTables::next_generation`].
#[derive(Debug, Clone)]
pub struct EnforcementTables {
    database: Arc<CompiledSignatureDb>,
    policies: Arc<CompiledPolicySet>,
    config: EnforcerConfig,
    /// Monotonically increasing build number (process-global).  Flow-table
    /// entries record the epoch they were computed under; a probe against
    /// tables with a different epoch misses, so hot-swapping policies or the
    /// database under concurrent inspection never serves a stale verdict.
    epoch: u64,
}

impl EnforcementTables {
    /// Compile `database` and `policies` into enforcement-ready tables,
    /// stamping a fresh epoch.
    pub fn build(
        database: &SignatureDatabase,
        policies: &PolicySet,
        config: EnforcerConfig,
    ) -> Self {
        EnforcementTables {
            database: Arc::new(CompiledSignatureDb::compile(database)),
            policies: Arc::new(policies.compile()),
            config,
            epoch: NEXT_TABLE_EPOCH.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Like [`EnforcementTables::build`], wrapped for sharing.
    pub fn shared(
        database: &SignatureDatabase,
        policies: &PolicySet,
        config: EnforcerConfig,
    ) -> Arc<Self> {
        Arc::new(Self::build(database, policies, config))
    }

    /// Build the tables for the next control-plane generation, reusing
    /// whatever `prev` already compiled: the signature database is shared
    /// when `database_changed` is false, and the compiled policy set is
    /// shared (delta [`PolicyDelta::Unchanged`]) or extended incrementally
    /// (delta [`PolicyDelta::Appended`], falling back to a full compile when
    /// the accumulated delta grows too large) rather than recompiled.
    ///
    /// A fresh epoch is always stamped, so flow-cache entries from the
    /// previous generation can never satisfy probes against the new one —
    /// reuse changes compile cost, not invalidation semantics.
    pub fn next_generation(
        prev: &EnforcementTables,
        database: &SignatureDatabase,
        database_changed: bool,
        policies: &PolicySet,
        delta: PolicyDelta,
        config: EnforcerConfig,
    ) -> (Arc<Self>, TableReuse) {
        let compiled_db = if database_changed {
            Arc::new(CompiledSignatureDb::compile(database))
        } else {
            Arc::clone(&prev.database)
        };
        let (compiled_policies, policy_reuse) = match delta {
            PolicyDelta::Unchanged => (Arc::clone(&prev.policies), PolicyReuse::Shared),
            PolicyDelta::Appended { split } => {
                match CompiledPolicySet::extend_compile(&prev.policies, policies, split) {
                    Some(extended) => {
                        let appended = extended.len() - split;
                        (
                            Arc::new(extended),
                            PolicyReuse::Incremental {
                                reused: split,
                                appended,
                            },
                        )
                    }
                    None => (Arc::new(policies.compile()), PolicyReuse::Full),
                }
            }
            PolicyDelta::Changed => (Arc::new(policies.compile()), PolicyReuse::Full),
        };
        let tables = Arc::new(EnforcementTables {
            database: compiled_db,
            policies: compiled_policies,
            config,
            epoch: NEXT_TABLE_EPOCH.fetch_add(1, Ordering::Relaxed),
        });
        let reuse = TableReuse {
            database_reused: !database_changed,
            policy: policy_reuse,
        };
        (tables, reuse)
    }

    /// The compiled signature database.
    pub fn database(&self) -> &CompiledSignatureDb {
        &self.database
    }

    /// The compiled policy set.
    pub fn policies(&self) -> &CompiledPolicySet {
        &self.policies
    }

    /// The enforcement configuration.
    pub fn config(&self) -> EnforcerConfig {
        self.config
    }

    /// The epoch stamped onto this build (monotonically increasing across
    /// recompilations; see [`EnforcementTables::build`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stage 2+3 of the pipeline: decode `payload` (into `scratch`), resolve
    /// indexes against the signature database and evaluate the policy set.
    ///
    /// The result is configuration-independent (how a [`CachedOutcome`] maps
    /// to a verdict is decided by [`EnforcementTables::apply_outcome`]) and
    /// depends only on the payload bytes and these tables — which is exactly
    /// what makes it safe to cache per flow, keyed by exact payload and epoch.
    fn evaluate_payload(&self, payload: &[u8], scratch: &mut Vec<u32>) -> CachedOutcome {
        let header = match ContextEncoding::decode_into(payload, scratch) {
            Ok(header) => header,
            Err(e) => {
                return CachedOutcome::Malformed(format!("malformed context option: {e}").into())
            }
        };
        let Some(entry) = self.database.entry(header.app_tag) else {
            return CachedOutcome::UnknownApp(
                format!("unknown application tag {}", header.app_tag).into(),
            );
        };
        if let Err(e) = entry.validate_indexes(scratch) {
            return CachedOutcome::Malformed(format!("undecodable stack indexes: {e}").into());
        }

        // Enforcement over pre-parsed frames (index lookups only).
        let frame = |i: usize| {
            entry
                .signature(scratch[i])
                .expect("indexes validated above")
        };
        match self
            .policies
            .evaluate_frames(header.app_tag, scratch.len(), frame)
        {
            CompiledVerdict::Allow => CachedOutcome::Accept,
            verdict @ CompiledVerdict::Deny { policy, .. } => {
                let decision = self.policies.verdict_to_decision(verdict, frame);
                let Decision::Deny { reason, .. } = decision else {
                    unreachable!("deny verdict renders to deny decision");
                };
                let detail = match policy.and_then(|i| self.policies.policy(i)) {
                    Some(policy) => format!("policy {policy} violated: {reason}"),
                    None => reason,
                };
                CachedOutcome::Deny(detail.into())
            }
        }
    }

    /// Turn an evaluation outcome (fresh or cached) into a verdict, charging
    /// the matching counter and drop-log entry.  Replaying a cached outcome
    /// through this function is indistinguishable from a fresh evaluation.
    fn apply_outcome(
        &self,
        outcome: &CachedOutcome,
        stats: &AtomicEnforcerStats,
        drop_log: &mut DropLog,
    ) -> Verdict {
        match outcome {
            CachedOutcome::Accept => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                Verdict::Accept
            }
            CachedOutcome::Malformed(reason) => {
                if self.config.drop_malformed_context {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    record_drop(drop_log, reason.into())
                } else {
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    Verdict::Accept
                }
            }
            CachedOutcome::UnknownApp(reason) => {
                if self.config.drop_unknown_apps {
                    stats.unknown_app.fetch_add(1, Ordering::Relaxed);
                    record_drop(drop_log, reason.into())
                } else {
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    Verdict::Accept
                }
            }
            CachedOutcome::Deny(reason) => {
                stats.by_policy.fetch_add(1, Ordering::Relaxed);
                record_drop(drop_log, reason.into())
            }
        }
    }

    /// Stage 0 + 1: §IV-A4 conformance checks and context extraction.
    ///
    /// Returns the single context option to enforce on, `Ok(None)` for
    /// untagged packets, or the early verdict for non-conforming packets
    /// (duplicate context options, covert data after End-of-List) and
    /// untagged packets in strict deployments.
    #[allow(clippy::type_complexity)]
    fn extract_context<'p>(
        &self,
        packet: &'p Ipv4Packet,
        stats: &AtomicEnforcerStats,
        drop_log: &mut DropLog,
    ) -> Result<Option<&'p bp_netsim::options::IpOption>, Verdict> {
        // A second context option is a spoofing attempt: the hardened kernel
        // emits exactly one, and enforcing on only the first would let the
        // other ride through unchecked.  No legitimate deployment — however
        // permissive — produces duplicates, and in permissive mode deny
        // policies still apply, so this check is unconditional: gating it
        // would hand permissive deployments the exact bypass back (an
        // attacker prepending a benign option to mask a denied context).
        if packet.options().count(IpOptionKind::BorderPatrolContext) > 1 {
            stats.duplicate_context.fetch_add(1, Ordering::Relaxed);
            return Err(record_drop(
                drop_log,
                DropReason::Static("duplicate BorderPatrol context options"),
            ));
        }
        // Non-zero bytes after End-of-List are a covert channel through the
        // options area (paper §IV-A4): treat them as non-conforming.  Unlike
        // duplicates this stays gated — trailing garbage does not change
        // which context is enforced, the sanitizer scrubs it regardless, and
        // permissive rollouts tolerate broken middlebox padding.
        if self.config.drop_malformed_context && packet.options().has_trailing_data() {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            return Err(record_drop(
                drop_log,
                DropReason::Static("non-zero data after end-of-options-list"),
            ));
        }
        let Some(option) = packet.options().find(IpOptionKind::BorderPatrolContext) else {
            if self.config.drop_untagged {
                stats.untagged.fetch_add(1, Ordering::Relaxed);
                return Err(record_drop(
                    drop_log,
                    DropReason::Static("packet carries no BorderPatrol context"),
                ));
            }
            return Ok(None);
        };
        Ok(Some(option))
    }

    /// Inspect one packet against the compiled tables (the three-stage
    /// pipeline), charging counters to `stats`, drop reasons to `drop_log`
    /// and reusing `scratch` for index decoding.
    ///
    /// On the accept path this performs no signature parsing and no `String`
    /// allocation: extraction borrows the option payload, decoding refills
    /// `scratch`, resolution is a `u64` map probe plus slice lookups, and
    /// evaluation works on pre-split targets.
    ///
    /// This is the *uncached* path — every packet pays the full pipeline.
    /// [`EnforcementTables::inspect_flow_cached`] adds the per-flow verdict
    /// cache in front of it.
    pub fn inspect_packet(
        &self,
        packet: &Ipv4Packet,
        scratch: &mut Vec<u32>,
        stats: &AtomicEnforcerStats,
        drop_log: &mut DropLog,
    ) -> Verdict {
        stats.inspected.fetch_add(1, Ordering::Relaxed);
        let option = match self.extract_context(packet, stats, drop_log) {
            Ok(Some(option)) => option,
            Ok(None) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
            Err(verdict) => return verdict,
        };
        let outcome = self.evaluate_payload(&option.data, scratch);
        self.apply_outcome(&outcome, stats, drop_log)
    }

    /// Inspect one packet with the per-flow verdict cache in front of the
    /// pipeline.
    ///
    /// A packet whose flow **and** exact context payload were evaluated
    /// before (under these tables' epoch, within `flow`'s TTL measured
    /// against `now`) replays the cached outcome after one O(1) probe —
    /// no decode, no database resolution, no policy evaluation.  An epoch
    /// bump or expiry re-evaluates and refreshes the entry.
    ///
    /// A **context change on a live flow** (the probe reports a
    /// [`FlowProbe::ContextSwitch`]) is counted in
    /// [`EnforcerStats::flow_context_switches`]: the set-once kernel never
    /// re-tags a socket, so a mid-flow change is replayed or injected
    /// context.  With [`EnforcerConfig::drop_context_switch`] enabled the
    /// packet is dropped and the flow's original entry is *kept* (injection
    /// cannot evict the legitimate context); otherwise the packet is
    /// re-evaluated like a miss and the entry is overwritten.
    ///
    /// With `drop_context_switch` off, verdicts, statistics outcome counters
    /// and drop-log entries are byte-identical to
    /// [`EnforcementTables::inspect_packet`].
    pub fn inspect_flow_cached(
        &self,
        packet: &Ipv4Packet,
        flow: &mut FlowTable,
        now: SimDuration,
        scratch: &mut Vec<u32>,
        stats: &AtomicEnforcerStats,
        drop_log: &mut DropLog,
    ) -> Verdict {
        stats.inspected.fetch_add(1, Ordering::Relaxed);
        let option = match self.extract_context(packet, stats, drop_log) {
            Ok(Some(option)) => option,
            Ok(None) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
            Err(verdict) => return verdict,
        };

        let key = packet.flow_key();
        match flow.probe(&key, &option.data, self.epoch, now) {
            FlowProbe::Hit(outcome) => {
                stats.flow_hits.fetch_add(1, Ordering::Relaxed);
                return self.apply_outcome(outcome, stats, drop_log);
            }
            FlowProbe::ContextSwitch => {
                stats.flow_context_switches.fetch_add(1, Ordering::Relaxed);
                if self.config.drop_context_switch {
                    stats.context_switch.fetch_add(1, Ordering::Relaxed);
                    return record_drop(
                        drop_log,
                        DropReason::Static(
                            "mid-flow context change (replayed or injected context)",
                        ),
                    );
                }
            }
            FlowProbe::Miss => {}
        }
        stats.flow_misses.fetch_add(1, Ordering::Relaxed);
        let outcome = self.evaluate_payload(&option.data, scratch);
        let evicted = flow.insert(key, &option.data, self.epoch, outcome.clone(), now);
        stats.flow_evictions.fetch_add(evicted, Ordering::Relaxed);
        self.apply_outcome(&outcome, stats, drop_log)
    }
}

/// Log `reason` and return the matching drop verdict.
///
/// The log entry is appended by pointer copy or refcount bump (see
/// [`DropReason`]); the only string the drop path still allocates is the
/// rendering carried by the returned [`Verdict::Drop`] itself — the old
/// `String` log paid that allocation *plus* two clones of the reason.
pub(crate) fn record_drop(drop_log: &mut DropLog, reason: DropReason) -> Verdict {
    let verdict = Verdict::Drop {
        reason: reason.as_str().to_owned(),
    };
    drop_log.push(reason);
    verdict
}

/// The Policy Enforcer NFQUEUE consumer — the single-shard facade over the
/// compiled enforcement plane.
///
/// Retains the interchange [`SignatureDatabase`] / [`PolicySet`] so
/// reconfiguration (§IV "Reconfigurability") recompiles the tables in place.
///
/// # Examples
///
/// ```
/// use bp_core::enforcer::{EnforcerConfig, PolicyEnforcer};
/// use bp_core::offline::SignatureDatabase;
/// use bp_core::policy::PolicySet;
///
/// let enforcer = PolicyEnforcer::new(
///     SignatureDatabase::new(),
///     PolicySet::new(),
///     EnforcerConfig::default(),
/// );
/// assert_eq!(enforcer.stats().packets_inspected, 0);
/// ```
#[derive(Debug)]
pub struct PolicyEnforcer {
    database: SignatureDatabase,
    policies: PolicySet,
    tables: Arc<EnforcementTables>,
    stats: AtomicEnforcerStats,
    drop_log: DropLog,
    scratch: Vec<u32>,
    flow: FlowTable,
    now: SimDuration,
}

impl Clone for PolicyEnforcer {
    fn clone(&self) -> Self {
        let mut clone = PolicyEnforcer::with_flow_config(
            self.database.clone(),
            self.policies.clone(),
            self.tables.config(),
            self.flow.config(),
        );
        clone.drop_log = self.drop_log.clone();
        clone.now = self.now;
        clone.stats.store(self.stats.snapshot());
        clone
    }
}

impl PolicyEnforcer {
    /// Create an enforcer with a signature database, a policy set and a
    /// configuration; compiles the enforcement tables once.
    pub fn new(database: SignatureDatabase, policies: PolicySet, config: EnforcerConfig) -> Self {
        Self::with_flow_config(database, policies, config, FlowTableConfig::default())
    }

    /// Like [`PolicyEnforcer::new`] with explicit flow-table bounds.
    pub fn with_flow_config(
        database: SignatureDatabase,
        policies: PolicySet,
        config: EnforcerConfig,
        flow: FlowTableConfig,
    ) -> Self {
        let tables = EnforcementTables::shared(&database, &policies, config);
        PolicyEnforcer {
            database,
            policies,
            tables,
            stats: AtomicEnforcerStats::new(),
            drop_log: DropLog::default(),
            scratch: Vec::with_capacity(ContextEncoding::max_frames(false)),
            flow: FlowTable::new(flow),
            now: SimDuration::ZERO,
        }
    }

    /// The active policy set (interchange form).
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    /// Adopt a control-plane build: interchange state and pre-compiled
    /// tables together, with no recompilation here.  The control plane is
    /// the only caller — this is how a commit or rollback installs a
    /// generation into the single-shard facade.
    pub(crate) fn adopt(
        &mut self,
        database: SignatureDatabase,
        policies: PolicySet,
        tables: Arc<EnforcementTables>,
    ) {
        self.database = database;
        self.policies = policies;
        self.tables = tables;
    }

    /// The signature database (interchange form).
    pub fn database(&self) -> &SignatureDatabase {
        &self.database
    }

    /// The compiled tables this enforcer currently shares with its callers.
    pub fn tables(&self) -> Arc<EnforcementTables> {
        Arc::clone(&self.tables)
    }

    /// Enforcement statistics.
    pub fn stats(&self) -> EnforcerStats {
        self.stats.snapshot()
    }

    /// Human-readable reasons of the most recent drops (most recent last).
    pub fn drop_log(&self) -> Vec<String> {
        self.drop_log.to_vec()
    }

    /// Reset statistics and the drop log (the flow cache is kept; see
    /// [`PolicyEnforcer::clear_flow_cache`]).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.drop_log.clear();
    }

    /// Advance the enforcer's view of simulated time, used for flow-table
    /// TTL expiry.  Drivers with a clock (the testbed, the network) call
    /// this; standalone users may leave it at zero, which keeps entries
    /// fresh forever.
    pub fn set_now(&mut self, now: SimDuration) {
        self.now = now;
    }

    /// The enforcer's current view of simulated time.
    pub fn now(&self) -> SimDuration {
        self.now
    }

    /// Number of flows currently tracked by the verdict cache.
    pub fn flow_cache_len(&self) -> usize {
        self.flow.len()
    }

    /// Drop every cached flow verdict (statistics are kept).
    pub fn clear_flow_cache(&mut self) {
        self.flow.clear();
    }

    /// Inspect one packet through the compiled plane with the per-flow
    /// verdict cache in front (see
    /// [`EnforcementTables::inspect_flow_cached`]).
    pub fn inspect(&mut self, packet: &Ipv4Packet) -> Verdict {
        self.tables.inspect_flow_cached(
            packet,
            &mut self.flow,
            self.now,
            &mut self.scratch,
            &self.stats,
            &mut self.drop_log,
        )
    }

    /// Inspect one packet through the compiled plane *without* the flow
    /// cache: every packet pays decode + resolution + evaluation.  This is
    /// the baseline the `flow_cache` bench compares the cached path against.
    pub fn inspect_uncached(&mut self, packet: &Ipv4Packet) -> Verdict {
        self.tables
            .inspect_packet(packet, &mut self.scratch, &self.stats, &mut self.drop_log)
    }

    /// Inspect one packet through the original interpretive pipeline: hex-keyed
    /// database lookup, per-frame descriptor *parsing* and string-scanning
    /// policy evaluation.
    ///
    /// Kept as the baseline the `policy_eval` / `enforcer_throughput` benches
    /// compare the compiled plane against; verdicts and statistics match
    /// [`PolicyEnforcer::inspect`].
    pub fn inspect_legacy(&mut self, packet: &Ipv4Packet) -> Verdict {
        self.stats.inspected.fetch_add(1, Ordering::Relaxed);

        // Stage 0: §IV-A4 conformance (mirrors the compiled plane's checks:
        // the duplicate-option spoofing drop is unconditional, the trailing
        // covert-data drop follows the malformed-context knob).
        if packet.options().count(IpOptionKind::BorderPatrolContext) > 1 {
            self.stats.duplicate_context.fetch_add(1, Ordering::Relaxed);
            return record_drop(
                &mut self.drop_log,
                DropReason::Static("duplicate BorderPatrol context options"),
            );
        }
        if self.tables.config().drop_malformed_context && packet.options().has_trailing_data() {
            self.stats.malformed.fetch_add(1, Ordering::Relaxed);
            return record_drop(
                &mut self.drop_log,
                DropReason::Static("non-zero data after end-of-options-list"),
            );
        }

        // Stage 1: extraction.
        let Some(option) = packet.options().find(IpOptionKind::BorderPatrolContext) else {
            if self.tables.config().drop_untagged {
                self.stats.untagged.fetch_add(1, Ordering::Relaxed);
                return record_drop(
                    &mut self.drop_log,
                    DropReason::Static("packet carries no BorderPatrol context"),
                );
            }
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Accept;
        };

        // Stage 2: decoding.
        let decoded = match ContextEncoding::decode(&option.data) {
            Ok(decoded) => decoded,
            Err(e) => {
                if self.tables.config().drop_malformed_context {
                    self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    return record_drop(
                        &mut self.drop_log,
                        format!("malformed context option: {e}").into(),
                    );
                }
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
        };
        let stack = match self
            .database
            .resolve_stack(decoded.app_tag, &decoded.frame_indexes)
        {
            Ok(stack) => stack,
            Err(_) if !self.database.contains(decoded.app_tag) => {
                if self.tables.config().drop_unknown_apps {
                    self.stats.unknown_app.fetch_add(1, Ordering::Relaxed);
                    return record_drop(
                        &mut self.drop_log,
                        format!("unknown application tag {}", decoded.app_tag).into(),
                    );
                }
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
            Err(e) => {
                if self.tables.config().drop_malformed_context {
                    self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    return record_drop(
                        &mut self.drop_log,
                        format!("undecodable stack indexes: {e}").into(),
                    );
                }
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
        };

        // Stage 3: enforcement.
        match self.policies.evaluate(decoded.app_tag, &stack) {
            Decision::Allow => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Verdict::Accept
            }
            Decision::Deny { policy, reason } => {
                self.stats.by_policy.fetch_add(1, Ordering::Relaxed);
                let detail = match policy {
                    Some(policy) => format!("policy {policy} violated: {reason}"),
                    None => reason,
                };
                record_drop(&mut self.drop_log, detail.into())
            }
        }
    }
}

impl QueueHandler for PolicyEnforcer {
    fn name(&self) -> &str {
        "policy-enforcer"
    }

    fn handle(&mut self, packet: &mut Ipv4Packet) -> Verdict {
        self.inspect(packet)
    }

    fn handle_wire_batch(&mut self, frames: &[&[u8]], verdicts: &mut Vec<Verdict>) {
        verdicts.clear();
        verdicts.reserve(frames.len());
        for frame in frames {
            verdicts.push(match wire::decode_frame(frame) {
                Ok(packet) => self.inspect(&packet),
                Err(error) => {
                    self.stats.record_wire_drop(error);
                    record_drop(&mut self.drop_log, DropReason::Static(error.drop_reason()))
                }
            });
        }
    }
}

/// One worker shard: private counters, drop log, decode scratch and flow
/// table.  Batch partitioning is by flow, so a flow's packets always land on
/// the same shard and the flow table needs no cross-shard synchronization.
///
/// **Lock order**: every path that takes more than one of these mutexes
/// must acquire them as `scratch` → `drop_log` → `flow` (see
/// [`EnforcerCore::run_partition`] and [`EnforcerCore::inspect`]).  An
/// inline `inspect` and a batch worker routinely contend for the same
/// shard; inconsistent ordering deadlocks them.
#[derive(Debug, Default)]
pub(crate) struct EnforcerShard {
    pub(crate) stats: AtomicEnforcerStats,
    pub(crate) drop_log: Mutex<DropLog>,
    pub(crate) scratch: Mutex<Vec<u32>>,
    pub(crate) flow: Mutex<FlowTable>,
    /// The shard's seqlock-published telemetry snapshot.  Written at
    /// partition/batch end by whichever thread holds the shard's `drop_log`
    /// mutex — that lock is the single-writer guarantee; readers (the
    /// observability collector) spin on the sequence stamp instead of
    /// locking anything.
    pub(crate) telemetry: TelemetryCell,
    /// The shard's health state machine (Healthy → Degraded → Quarantined),
    /// fed by the runtime's panic recovery, respawn and watchdog paths and
    /// published through the telemetry snapshot.
    pub(crate) health: ShardHealth,
}

impl EnforcerShard {
    fn with_flow_config(config: FlowTableConfig) -> Self {
        EnforcerShard {
            flow: Mutex::new(FlowTable::new(config)),
            ..EnforcerShard::default()
        }
    }
}

/// The shared half of a [`ShardedEnforcer`]: the hot-swappable tables, the
/// per-shard mutable state and the simulated clock.
///
/// Split out behind an `Arc` so the persistent worker threads of the
/// [`WorkerPool`](crate::runtime) can hold it across batches — the pool's
/// shutdown join (on enforcer drop) releases the last worker references.
#[derive(Debug)]
pub(crate) struct EnforcerCore {
    /// The active compiled tables.  Behind an `RwLock` so administrators can
    /// hot-swap policies (a control-plane commit installing a new
    /// generation) while workers are mid-batch.  Workers do **not** take
    /// this lock per packet: they cache the `Arc` and revalidate it against
    /// `tables_generation` (one relaxed load of a rarely-written line per
    /// packet), re-reading the lock only when a swap actually happened — so
    /// every packet inspected after the installation returns uses the new
    /// tables and the new epoch, without cross-shard lock or refcount
    /// traffic in the hot loop.
    tables: RwLock<Arc<EnforcementTables>>,
    /// Bumped (release) after each table installation; workers watch it
    /// (acquire) to notice swaps without touching the lock.
    pub(crate) tables_generation: AtomicU64,
    pub(crate) shards: Vec<EnforcerShard>,
    /// Simulated time in microseconds, advanced by the driving clock owner;
    /// used for flow-table TTL expiry.
    now_micros: AtomicU64,
    /// The armed fault injector, if any (first install wins).  Inert cost on
    /// the hot path is one `OnceLock` load per partition.
    pub(crate) faults: OnceLock<Arc<FaultInjector>>,
}

impl EnforcerCore {
    /// Number of worker shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The currently active compiled tables.
    pub(crate) fn tables(&self) -> Arc<EnforcementTables> {
        Arc::clone(&self.tables.read())
    }

    /// The enforcer's current view of simulated time.
    pub(crate) fn now(&self) -> SimDuration {
        SimDuration::from_micros(self.now_micros.load(Ordering::Relaxed))
    }

    /// The shard a packet is routed to: flows stick to shards so per-flow
    /// packet order is preserved within a shard.
    pub(crate) fn shard_for(&self, packet: &Ipv4Packet) -> usize {
        let source = packet.source();
        let octets = source.ip.octets();
        let mut key = u64::from(u32::from_be_bytes(octets));
        key = (key << 16) | u64::from(source.port);
        // Fibonacci hashing spreads sequential addresses across shards.
        let hashed = key.wrapping_mul(0x9E3779B97F4A7C15);
        (hashed >> 32) as usize % self.shards.len()
    }

    /// Inspect one packet inline on its flow's shard (flow-cached),
    /// publishing the shard's telemetry snapshot before the locks drop —
    /// one inline inspect is its own batch.
    pub(crate) fn inspect(&self, packet: &Ipv4Packet) -> Verdict {
        self.inspect_on_shard(packet, self.shard_for(packet), true)
    }

    /// The inline inspect body.  `publish` controls whether the shard's
    /// telemetry snapshot is published before the locks drop: the
    /// single-packet API publishes per call, while the sequential batch
    /// loop defers to one publication per touched shard at batch end (see
    /// `inspect_sequential` in [`crate::runtime`]).
    pub(crate) fn inspect_on_shard(
        &self,
        packet: &Ipv4Packet,
        shard_index: usize,
        publish: bool,
    ) -> Verdict {
        let tables = self.tables();
        let shard = &self.shards[shard_index];
        // Shard lock order: scratch → drop_log → flow, matching
        // `run_partition` — an inline inspect and a batch worker contending
        // for the same shard must never interleave acquisition.
        let mut scratch = shard.scratch.lock();
        let mut drop_log = shard.drop_log.lock();
        let mut flow = shard.flow.lock();
        let verdict = tables.inspect_flow_cached(
            packet,
            &mut flow,
            self.now(),
            &mut scratch,
            &shard.stats,
            &mut drop_log,
        );
        if publish {
            // Sole writer: this thread holds the shard's drop_log mutex.
            shard
                .telemetry
                .publish(&shard.stats, tables.epoch(), &shard.health);
        }
        verdict
    }

    /// Publish one shard's telemetry snapshot outside a partition loop
    /// (batch-end catch-up for the sequential path).  Takes the shard's
    /// `drop_log` mutex — the telemetry single-writer lock — and nothing
    /// else, so the declared lock order is trivially respected.
    pub(crate) fn publish_shard_telemetry(&self, shard_index: usize) {
        let shard = &self.shards[shard_index];
        let _writer = shard.drop_log.lock();
        shard
            .telemetry
            .publish(&shard.stats, self.tables().epoch(), &shard.health);
    }

    // The batch entry points that dereference borrowed-batch raw pointers —
    // `run_partition`, `inspect_scoped` and `inspect_sequential` — live in
    // `crate::runtime`, the one module allowed to contain `unsafe`.
}

/// A sharded Policy Enforcer: one set of compiled [`EnforcementTables`]
/// shared by `N` worker shards, each with private mutable state.
///
/// [`ShardedEnforcer::inspect_batch`] partitions a batch by flow (source
/// endpoint), inspects each partition on a worker owned by that shard and
/// returns per-packet verdicts in input order.  By default the workers are
/// the **persistent threads** of a [`BatchRuntime::Pool`] (spawned lazily on
/// the first multi-shard batch, parked when idle, joined on drop); the
/// original spawn-per-batch model remains available as
/// [`BatchRuntime::Scoped`].  Statistics merge across shards without
/// stopping the workers.
///
/// # Examples
///
/// ```
/// use bp_core::enforcer::{EnforcerConfig, EnforcementTables, ShardedEnforcer};
/// use bp_core::offline::SignatureDatabase;
/// use bp_core::policy::PolicySet;
///
/// let tables = EnforcementTables::shared(
///     &SignatureDatabase::new(),
///     &PolicySet::new(),
///     EnforcerConfig::default(),
/// );
/// let enforcer = ShardedEnforcer::new(tables, 4);
/// assert_eq!(enforcer.shard_count(), 4);
/// assert_eq!(enforcer.stats().packets_inspected, 0);
/// ```
#[derive(Debug)]
pub struct ShardedEnforcer {
    core: Arc<EnforcerCore>,
    runtime: BatchRuntime,
    /// The persistent worker pool, spawned on the first pooled multi-shard
    /// batch so enforcers that never batch (or run [`BatchRuntime::Scoped`])
    /// cost no threads.  Dropped — shutdown messages, workers joined — with
    /// the enforcer.
    pool: OnceLock<WorkerPool>,
    /// Overload-guard admission watermark in packets per batch; `0` means
    /// the guard is off.  Batches longer than the watermark have their tail
    /// shed fail-closed under [`EnforcerStats::dropped_overload`] before
    /// inspection.
    overload_watermark: AtomicUsize,
}

impl ShardedEnforcer {
    /// Create an enforcer fanning out over `shards` workers (at least one).
    pub fn new(tables: Arc<EnforcementTables>, shards: usize) -> Self {
        Self::with_flow_config(tables, shards, FlowTableConfig::default())
    }

    /// Like [`ShardedEnforcer::new`] with explicit per-shard flow-table
    /// bounds.
    pub fn with_flow_config(
        tables: Arc<EnforcementTables>,
        shards: usize,
        flow: FlowTableConfig,
    ) -> Self {
        Self::with_runtime(tables, shards, flow, BatchRuntime::default())
    }

    /// Like [`ShardedEnforcer::with_flow_config`] with an explicit batch
    /// runtime (see [`BatchRuntime`]).
    pub fn with_runtime(
        tables: Arc<EnforcementTables>,
        shards: usize,
        flow: FlowTableConfig,
        runtime: BatchRuntime,
    ) -> Self {
        let shards = shards.max(1);
        ShardedEnforcer {
            core: Arc::new(EnforcerCore {
                tables: RwLock::new(tables),
                tables_generation: AtomicU64::new(0),
                shards: (0..shards)
                    .map(|_| EnforcerShard::with_flow_config(flow))
                    .collect(),
                now_micros: AtomicU64::new(0),
                faults: OnceLock::new(),
            }),
            runtime,
            pool: OnceLock::new(),
            overload_watermark: AtomicUsize::new(0),
        }
    }

    /// Convenience constructor compiling the tables from interchange forms.
    pub fn from_parts(
        database: &SignatureDatabase,
        policies: &PolicySet,
        config: EnforcerConfig,
        shards: usize,
    ) -> Self {
        Self::new(
            EnforcementTables::shared(database, policies, config),
            shards,
        )
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// The batch runtime this enforcer fans out with.
    pub fn runtime(&self) -> BatchRuntime {
        self.runtime
    }

    /// The currently active compiled tables.
    pub fn tables(&self) -> Arc<EnforcementTables> {
        self.core.tables()
    }

    /// The swap primitive behind the control plane's endpoint installation.
    ///
    /// Safe under concurrent [`ShardedEnforcer::inspect_batch`]: once this
    /// returns, every subsequently inspected packet is evaluated against
    /// `tables`, and flow-table entries cached under the previous epoch can
    /// no longer be served (their probes miss and re-evaluate).  Pool
    /// workers and scoped workers alike observe the swap through the
    /// generation counter they revalidate per packet.
    pub(crate) fn install_tables(&self, tables: Arc<EnforcementTables>) {
        *self.core.tables.write() = tables;
        // Release-publish the swap *after* installation: a worker that
        // observes the new generation (acquire) and re-reads the lock is
        // guaranteed to see the new tables.
        self.core.tables_generation.fetch_add(1, Ordering::Release);
    }

    /// Advance the enforcer's view of simulated time (used for flow-table
    /// TTL expiry).  Callable from the clock owner while workers run.
    pub fn set_now(&self, now: SimDuration) {
        self.core
            .now_micros
            .store(now.as_micros(), Ordering::Relaxed);
    }

    /// The enforcer's current view of simulated time.
    pub fn now(&self) -> SimDuration {
        self.core.now()
    }

    /// Number of flows currently tracked across all shards' verdict caches.
    pub fn flow_cache_len(&self) -> usize {
        self.core.shards.iter().map(|s| s.flow.lock().len()).sum()
    }

    /// Drop every cached flow verdict on every shard (statistics are kept).
    pub fn clear_flow_cache(&self) {
        for shard in &self.core.shards {
            shard.flow.lock().clear();
        }
    }

    /// The shard a packet is routed to: flows stick to shards so per-flow
    /// packet order is preserved within a shard.
    pub fn shard_for(&self, packet: &Ipv4Packet) -> usize {
        self.core.shard_for(packet)
    }

    /// Inspect one packet inline on its flow's shard (flow-cached).
    pub fn inspect(&self, packet: &Ipv4Packet) -> Verdict {
        self.core.inspect(packet)
    }

    /// Inspect a batch of packets, fanning partitions across the shards'
    /// workers, and return verdicts in input order.
    ///
    /// Allocates the returned vector; hot loops that inspect batch after
    /// batch should reuse a buffer through
    /// [`ShardedEnforcer::inspect_batch_into`], which allocates nothing on
    /// the all-accept path.
    pub fn inspect_batch(&self, packets: &[Ipv4Packet]) -> Vec<Verdict> {
        let mut verdicts = Vec::with_capacity(packets.len());
        self.inspect_batch_into(packets, &mut verdicts);
        verdicts
    }

    /// Inspect a batch of packets, writing verdicts (input order, one per
    /// packet) into `verdicts`, which is cleared first.
    ///
    /// With a reused `verdicts` buffer and the [`BatchRuntime::Pool`]
    /// runtime this performs **zero allocations** per batch on the
    /// all-accept path: partitions land in the pool's reused index buffers,
    /// jobs travel through fixed ring slots, and each verdict is written in
    /// place into its slot.
    pub fn inspect_batch_into(&self, packets: &[Ipv4Packet], verdicts: &mut Vec<Verdict>) {
        self.inspect_source_into(PacketSource::slice(packets), verdicts);
    }

    /// Inspect a batch of raw wire frames and return verdicts in frame
    /// order.  Allocating variant of
    /// [`ShardedEnforcer::inspect_wire_batch_into`].
    pub fn inspect_wire_batch(&self, frames: &[&[u8]]) -> Vec<Verdict> {
        let mut verdicts = Vec::with_capacity(frames.len());
        self.inspect_wire_batch_into(frames, &mut verdicts);
        verdicts
    }

    /// Inspect a batch of raw wire frames: decode each through the byte
    /// ingress boundary ([`crate::wire`]), run the packets that parsed
    /// through [`ShardedEnforcer::inspect_batch_into`], and write one
    /// verdict per frame (frame order) into `verdicts`.
    ///
    /// A frame that fails decode never reaches enforcement: it yields a
    /// fail-closed [`Verdict::Drop`] whose reason is the typed
    /// [`WireError::drop_reason`], counted in
    /// [`EnforcerStats::dropped_wire`] and recorded in the drop log.
    /// Malformed frames are charged to shard 0 — an unparsable frame has no
    /// flow key to hash a shard from.  Never panics on malformed input.
    pub fn inspect_wire_batch_into(&self, frames: &[&[u8]], verdicts: &mut Vec<Verdict>) {
        let mut packets = Vec::with_capacity(frames.len());
        let mut failures: Vec<(usize, WireError)> = Vec::new();
        let injector = self.core.faults.get();
        for (index, frame) in frames.iter().enumerate() {
            let corrupt = injector.is_some_and(|i| i.corrupt_next_frame());
            let result = match (corrupt, frame.first()) {
                (true, Some(_)) => {
                    // Injected wire corruption: flip the version/IHL byte so
                    // the frame fails closed through the ordinary typed
                    // wire-error path, deterministically.
                    let mut bytes = frame.to_vec();
                    bytes[0] ^= 0xFF;
                    wire::decode_frame(&bytes)
                }
                _ => wire::decode_frame(frame),
            };
            match result {
                Ok(packet) => packets.push(packet),
                Err(error) => failures.push((index, error)),
            }
        }
        if failures.is_empty() {
            self.inspect_batch_into(&packets, verdicts);
            return;
        }
        let mut failure_verdicts = Vec::with_capacity(failures.len());
        {
            let shard = &self.core.shards[0];
            let mut drop_log = shard.drop_log.lock();
            for &(index, error) in &failures {
                shard.stats.record_wire_drop(error);
                let verdict = record_drop(&mut drop_log, DropReason::Static(error.drop_reason()));
                failure_verdicts.push((index, verdict));
            }
            // Sole writer: this thread holds shard 0's drop_log mutex.
            shard
                .telemetry
                .publish(&shard.stats, self.core.tables().epoch(), &shard.health);
        }
        let mut decoded_verdicts = Vec::with_capacity(packets.len());
        self.inspect_batch_into(&packets, &mut decoded_verdicts);
        verdicts.clear();
        verdicts.reserve(frames.len());
        let mut failure_iter = failure_verdicts.into_iter().peekable();
        let mut decoded = decoded_verdicts.into_iter();
        for index in 0..frames.len() {
            match failure_iter.peek() {
                Some(&(at, _)) if at == index => {
                    let (_, verdict) = failure_iter.next().expect("peeked entry exists");
                    verdicts.push(verdict);
                }
                _ => verdicts.push(decoded.next().expect("one verdict per decoded packet")),
            }
        }
    }

    /// Shared batch implementation over either batch shape (owned slice or
    /// NFQUEUE reference batch).
    fn inspect_source_into(&self, source: PacketSource, verdicts: &mut Vec<Verdict>) {
        verdicts.clear();
        let len = source.len();
        // Overload guard: admit at most the watermark, shed the tail
        // fail-closed after inspection so verdicts stay in input order.
        let watermark = self.overload_watermark.load(Ordering::Relaxed);
        let admitted = if watermark == 0 {
            len
        } else {
            len.min(watermark)
        };
        let source = source.truncated(admitted);
        if self.core.shard_count() == 1 || admitted <= 1 {
            self.core.inspect_sequential(source, verdicts);
        } else {
            // Pre-size the slot array with **fail-closed** placeholders:
            // every slot is overwritten by exactly one worker on the normal
            // path, and a partition whose worker panics has its uninspected
            // slots converted into attributed `dropped_runtime_fault` drops
            // by the recovery path — never silent accepts.  An empty
            // `String` owns no heap, so the resize allocates nothing.
            verdicts.resize(
                admitted,
                Verdict::Drop {
                    reason: String::new(),
                },
            );
            match self.runtime {
                BatchRuntime::Scoped => self.core.inspect_scoped(source, verdicts),
                BatchRuntime::Pool => self
                    .pool
                    .get_or_init(|| WorkerPool::spawn(&self.core))
                    .inspect(source, verdicts),
            }
        }
        if admitted < len {
            self.shed_overload(len - admitted, verdicts);
        }
    }

    /// Shed `count` packets fail-closed under the overload guard, appending
    /// their drop verdicts (they are the batch tail).  Charged to shard 0,
    /// like wire-decode failures: a shed packet was never routed.
    fn shed_overload(&self, count: usize, verdicts: &mut Vec<Verdict>) {
        let shard = &self.core.shards[0];
        let mut drop_log = shard.drop_log.lock();
        for _ in 0..count {
            shard.stats.record_overload();
            verdicts.push(record_drop(
                &mut drop_log,
                DropReason::Static(OVERLOAD_DROP_REASON),
            ));
        }
        // Sole writer: this thread holds shard 0's drop_log mutex.
        shard
            .telemetry
            .publish(&shard.stats, self.core.tables().epoch(), &shard.health);
    }

    /// Merged statistics across all shards.
    pub fn stats(&self) -> EnforcerStats {
        self.core
            .shards
            .iter()
            .map(|shard| shard.stats.snapshot())
            .fold(EnforcerStats::default(), |acc, shard| acc.merged(&shard))
    }

    /// Per-shard statistics snapshots.
    pub fn shard_stats(&self) -> Vec<EnforcerStats> {
        self.core
            .shards
            .iter()
            .map(|shard| shard.stats.snapshot())
            .collect()
    }

    /// One shard's latest seqlock-published telemetry snapshot (consistent:
    /// the reader retries until an attempt lands between publications).
    /// Unlike [`ShardedEnforcer::shard_stats`] — whose relaxed counter
    /// reads can tear across counters — a snapshot is exactly one
    /// publication, so cross-counter invariants hold and deltas between
    /// successive snapshots are exact.
    pub fn shard_telemetry(&self, shard: usize) -> TelemetrySnapshot {
        self.core.shards[shard].telemetry.read()
    }

    /// Every shard's latest telemetry snapshot, in shard order.
    pub fn telemetry(&self) -> Vec<TelemetrySnapshot> {
        self.core
            .shards
            .iter()
            .map(|shard| shard.telemetry.read())
            .collect()
    }

    /// Drop reasons across all shards (grouped by shard, oldest first within
    /// each shard).
    pub fn drop_log(&self) -> Vec<String> {
        self.core
            .shards
            .iter()
            .flat_map(|shard| shard.drop_log.lock().to_vec())
            .collect()
    }

    /// Arm a deterministic fault injector on this enforcer's data plane
    /// (worker panics, stalls, wire corruption — see
    /// [`crate::faults::FaultPlan`]).  First install wins; later calls are
    /// ignored.  Without an installed injector the hooks cost one
    /// `OnceLock` load per partition.
    pub fn install_faults(&self, injector: Arc<FaultInjector>) {
        let _ = self.core.faults.set(injector);
    }

    /// The armed fault injector, if any.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.core.faults.get()
    }

    /// Set the overload-guard admission watermark in packets per batch
    /// (`0` disables the guard).  Batches longer than the watermark have
    /// their tail shed fail-closed under
    /// [`EnforcerStats::dropped_overload`] before inspection.
    pub fn set_overload_watermark(&self, watermark: usize) {
        self.overload_watermark.store(watermark, Ordering::Relaxed);
    }

    /// The overload-guard admission watermark (`0` = guard off).
    pub fn overload_watermark(&self) -> usize {
        self.overload_watermark.load(Ordering::Relaxed)
    }

    /// Every shard's current health snapshot, in shard order.
    pub fn shard_health(&self) -> Vec<ShardHealthSnapshot> {
        self.core
            .shards
            .iter()
            .map(|shard| shard.health.snapshot())
            .collect()
    }

    /// True when any shard is [`HealthState::Quarantined`].
    pub fn any_quarantined(&self) -> bool {
        self.core
            .shards
            .iter()
            .any(|shard| shard.health.state() == HealthState::Quarantined)
    }

    /// Reset statistics and drop logs on every shard (flow caches are kept;
    /// see [`ShardedEnforcer::clear_flow_cache`]).
    pub fn reset_stats(&self) {
        for shard in &self.core.shards {
            shard.stats.reset();
            let mut drop_log = shard.drop_log.lock();
            drop_log.clear();
            // Holding drop_log makes this thread the telemetry writer.
            shard.telemetry.reset();
        }
    }
}

impl QueueHandler for ShardedEnforcer {
    fn name(&self) -> &str {
        "sharded-policy-enforcer"
    }

    fn handle(&mut self, packet: &mut Ipv4Packet) -> Verdict {
        ShardedEnforcer::inspect(self, packet)
    }

    fn handle_batch_into(&mut self, packets: &mut [&mut Ipv4Packet], verdicts: &mut Vec<Verdict>) {
        // The enforcer only reads packets; view the reference batch directly
        // instead of collecting an intermediate `Vec<&Ipv4Packet>`.
        self.inspect_source_into(PacketSource::refs(packets), verdicts);
    }

    fn handle_wire_batch(&mut self, frames: &[&[u8]], verdicts: &mut Vec<Verdict>) {
        // Typed ingress: unlike the default trait impl this counts decode
        // failures in `dropped_wire` and the drop log.
        self.inspect_wire_batch_into(frames, verdicts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineAnalyzer;
    use crate::policy::Policy;
    use bp_appsim::generator::CorpusGenerator;
    use bp_netsim::addr::Endpoint;
    use bp_netsim::options::IpOption;
    use bp_types::EnforcementLevel;

    fn tagged_packet(payload_option: Vec<u8>) -> Ipv4Packet {
        let mut packet = Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 4], 40001),
            Endpoint::new([31, 13, 71, 36], 443),
            b"POST /beacon HTTP/1.1".to_vec(),
        );
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::BorderPatrolContext, payload_option).unwrap())
            .unwrap();
        packet
    }

    fn untagged_packet() -> Ipv4Packet {
        Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 4], 40001),
            Endpoint::new([31, 13, 71, 36], 443),
            b"GET / HTTP/1.1".to_vec(),
        )
    }

    /// Build a database + a context payload whose decoded stack includes the
    /// Facebook analytics frames of the SolCalendar model.
    fn solcalendar_fixture() -> (SignatureDatabase, Vec<u8>, Vec<u8>) {
        let spec = CorpusGenerator::solcalendar();
        let apk = spec.build_apk();
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let table = bp_dex::MethodTable::from_apk(&apk).unwrap();

        let indexes_for = |functionality: &str| -> Vec<u32> {
            spec.functionality(functionality)
                .unwrap()
                .call_chain
                .iter()
                .rev()
                .map(|sig| table.index_of(sig).unwrap())
                .collect()
        };
        let analytics =
            ContextEncoding::encode(apk.hash().tag(), &indexes_for("fb-analytics"), false).unwrap();
        let login =
            ContextEncoding::encode(apk.hash().tag(), &indexes_for("fb-login"), false).unwrap();
        (db, analytics, login)
    }

    #[test]
    fn policy_violations_are_dropped_and_logged() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);
        let mut enforcer = PolicyEnforcer::new(db, policies, EnforcerConfig::default());

        let verdict = enforcer.inspect(&tagged_packet(analytics_payload));
        assert!(!verdict.is_accept());
        let verdict = enforcer.inspect(&tagged_packet(login_payload));
        assert!(verdict.is_accept());

        let stats = enforcer.stats();
        assert_eq!(stats.packets_inspected, 2);
        assert_eq!(stats.dropped_by_policy, 1);
        assert_eq!(stats.packets_accepted, 1);
        assert_eq!(enforcer.drop_log().len(), 1);
        assert!(enforcer.drop_log()[0].contains("com/facebook/appevents"));
    }

    #[test]
    fn untagged_packets_follow_configuration() {
        let (db, _, _) = solcalendar_fixture();
        let mut permissive =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(permissive.inspect(&untagged_packet()).is_accept());
        assert_eq!(permissive.stats().dropped_untagged, 0);

        let mut strict = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::strict());
        assert!(!strict.inspect(&untagged_packet()).is_accept());
        assert_eq!(strict.stats().dropped_untagged, 1);
    }

    #[test]
    fn unknown_app_tags_follow_configuration() {
        let (db, _, _) = solcalendar_fixture();
        let bogus_payload = ContextEncoding::encode(
            bp_types::ApkHash::digest(b"never-analyzed").tag(),
            &[0, 1],
            false,
        )
        .unwrap();

        let mut default =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(!default
            .inspect(&tagged_packet(bogus_payload.clone()))
            .is_accept());
        assert_eq!(default.stats().dropped_unknown_app, 1);

        let mut permissive =
            PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::permissive());
        assert!(permissive
            .inspect(&tagged_packet(bogus_payload))
            .is_accept());
    }

    #[test]
    fn malformed_context_is_dropped_by_default() {
        let (db, _, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        // 3 bytes is shorter than the payload header.
        let verdict = enforcer.inspect(&tagged_packet(vec![1, 2, 3]));
        assert!(!verdict.is_accept());
        assert_eq!(enforcer.stats().dropped_malformed, 1);
    }

    #[test]
    fn dangling_index_counts_as_malformed_for_known_app() {
        let (db, _, _) = solcalendar_fixture();
        let tag = db
            .iter()
            .next()
            .map(|(tag_hex, _)| bp_types::AppTag::from_hex(tag_hex).unwrap())
            .unwrap();
        let payload = ContextEncoding::encode(tag, &[60_000], false).unwrap();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        assert!(!enforcer.inspect(&tagged_packet(payload)).is_accept());
        assert_eq!(enforcer.stats().dropped_malformed, 1);
    }

    #[test]
    fn reconfiguration_changes_behaviour_without_rebuilding() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let mut control = crate::control::ControlPlane::new(
            db.clone(),
            PolicySet::new(),
            EnforcerConfig::default(),
        );
        let enforcer = Arc::new(Mutex::new(PolicyEnforcer::new(
            db,
            PolicySet::new(),
            EnforcerConfig::default(),
        )));
        control.register(Arc::clone(&enforcer) as _);
        assert!(enforcer
            .lock()
            .inspect(&tagged_packet(analytics_payload.clone()))
            .is_accept());

        control
            .begin()
            .replace_policies(PolicySet::from_policies(vec![Policy::deny(
                EnforcementLevel::Library,
                "com/facebook",
            )]))
            .commit()
            .unwrap();
        assert!(!enforcer
            .lock()
            .inspect(&tagged_packet(analytics_payload))
            .is_accept());
        enforcer.lock().reset_stats();
        assert_eq!(enforcer.lock().stats().packets_inspected, 0);
        assert!(enforcer.lock().drop_log().is_empty());
    }

    #[test]
    fn stats_total_dropped_sums_reasons() {
        let stats = EnforcerStats {
            packets_inspected: 12,
            packets_accepted: 4,
            dropped_by_policy: 3,
            dropped_untagged: 1,
            dropped_unknown_app: 1,
            dropped_malformed: 1,
            dropped_duplicate_context: 1,
            dropped_context_switch: 1,
            ..EnforcerStats::default()
        };
        assert_eq!(stats.total_dropped(), 8);
    }

    #[test]
    fn legacy_and_compiled_paths_agree_on_the_fixture() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![
            Policy::deny(EnforcementLevel::Class, "com/facebook/appevents"),
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
        ]);
        let mut compiled =
            PolicyEnforcer::new(db.clone(), policies.clone(), EnforcerConfig::default());
        let mut legacy = PolicyEnforcer::new(db, policies, EnforcerConfig::default());

        for payload in [analytics_payload, login_payload, vec![1, 2, 3]] {
            let packet = tagged_packet(payload);
            assert_eq!(compiled.inspect(&packet), legacy.inspect_legacy(&packet));
        }
        let untagged = untagged_packet();
        assert_eq!(
            compiled.inspect(&untagged),
            legacy.inspect_legacy(&untagged)
        );
        // Outcome counters must agree; the legacy pipeline has no flow cache,
        // so the hit/miss bookkeeping is excluded from the comparison.
        assert_eq!(
            compiled.stats().without_flow_counters(),
            legacy.stats().without_flow_counters()
        );
        assert_eq!(legacy.stats().flow_misses, 0);
        assert_eq!(compiled.drop_log(), legacy.drop_log());
    }

    #[test]
    fn mid_flow_context_switch_is_counted_and_reevaluated_by_default() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());

        // Same 5-tuple, two different payloads: the second is flagged as a
        // mid-flow switch but — with the knob off — still re-evaluated.
        assert!(enforcer
            .inspect(&tagged_packet(analytics_payload.clone()))
            .is_accept());
        assert!(enforcer
            .inspect(&tagged_packet(login_payload.clone()))
            .is_accept());
        let stats = enforcer.stats();
        assert_eq!(stats.flow_context_switches, 1);
        assert_eq!(stats.dropped_context_switch, 0);
        assert_eq!(stats.flow_misses, 2);
        assert_eq!(stats.packets_accepted, 2);

        // The switch overwrote the entry: the new payload now hits.
        assert!(enforcer.inspect(&tagged_packet(login_payload)).is_accept());
        assert_eq!(enforcer.stats().flow_hits, 1);
    }

    #[test]
    fn context_switch_drop_keeps_the_original_flow_entry() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let config = EnforcerConfig {
            drop_context_switch: true,
            ..EnforcerConfig::default()
        };
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), config);

        assert!(enforcer
            .inspect(&tagged_packet(analytics_payload.clone()))
            .is_accept());
        // Replayed context on the live flow: dropped, attributed to the
        // context-switch counter, and logged.
        let verdict = enforcer.inspect(&tagged_packet(login_payload));
        assert!(!verdict.is_accept());
        let stats = enforcer.stats();
        assert_eq!(stats.dropped_context_switch, 1);
        assert_eq!(stats.flow_context_switches, 1);
        assert!(enforcer.drop_log()[0].contains("mid-flow context change"));

        // The legitimate context was not evicted by the injection: the
        // flow's original payload still replays from the cache.
        assert!(enforcer
            .inspect(&tagged_packet(analytics_payload))
            .is_accept());
        assert_eq!(enforcer.stats().flow_hits, 1);
        assert_eq!(enforcer.stats().flow_misses, 1);
    }

    #[test]
    fn strict_config_enables_context_switch_drops() {
        assert!(EnforcerConfig::strict().drop_context_switch);
        assert!(!EnforcerConfig::default().drop_context_switch);
        assert!(!EnforcerConfig::permissive().drop_context_switch);
    }

    #[test]
    fn drop_log_ring_buffer_evicts_oldest_in_order() {
        let mut log = DropLog::new(3);
        for i in 0..5 {
            log.push(format!("drop {i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.to_vec(), vec!["drop 2", "drop 3", "drop 4"]);
        assert_eq!(log.capacity(), 3);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn drop_log_stays_bounded_under_sustained_drops() {
        let (db, _, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::strict());
        for _ in 0..(DROP_LOG_CAPACITY + 50) {
            enforcer.inspect(&untagged_packet());
        }
        assert_eq!(enforcer.drop_log().len(), DROP_LOG_CAPACITY);
        assert_eq!(
            enforcer.stats().dropped_untagged,
            (DROP_LOG_CAPACITY + 50) as u64
        );
    }

    #[test]
    fn sharded_enforcer_matches_single_shard_on_a_packet_stream() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);

        // A stream mixing allowed, denied, malformed and untagged packets
        // across many source ports (flows).
        let mut packets = Vec::new();
        for i in 0..200u16 {
            let mut packet = Ipv4Packet::new(
                Endpoint::new([10, 0, (i >> 8) as u8, i as u8], 40_000 + i),
                Endpoint::new([31, 13, 71, 36], 443),
                b"POST /beacon HTTP/1.1".to_vec(),
            );
            let payload = match i % 4 {
                0 => Some(analytics_payload.clone()),
                1 => Some(login_payload.clone()),
                2 => Some(vec![9, 9, 9]),
                _ => None,
            };
            if let Some(payload) = payload {
                packet
                    .options_mut()
                    .push(IpOption::new(IpOptionKind::BorderPatrolContext, payload).unwrap())
                    .unwrap();
            }
            packets.push(packet);
        }

        let mut single =
            PolicyEnforcer::new(db.clone(), policies.clone(), EnforcerConfig::default());
        let expected: Vec<Verdict> = packets.iter().map(|p| single.inspect(p)).collect();

        let sharded = ShardedEnforcer::from_parts(&db, &policies, EnforcerConfig::default(), 4);
        let verdicts = sharded.inspect_batch(&packets);

        assert_eq!(verdicts, expected);
        assert_eq!(sharded.stats(), single.stats());
        // Work actually spread across shards.
        let busy = sharded
            .shard_stats()
            .iter()
            .filter(|s| s.packets_inspected > 0)
            .count();
        assert!(busy > 1, "expected multiple busy shards, got {busy}");
        // Drop logs hold the same multiset of reasons.
        let mut sharded_log = sharded.drop_log();
        let mut single_log = single.drop_log();
        sharded_log.sort();
        single_log.sort();
        assert_eq!(sharded_log, single_log);

        sharded.reset_stats();
        assert_eq!(sharded.stats(), EnforcerStats::default());
        assert!(sharded.drop_log().is_empty());
    }

    #[test]
    fn duplicate_context_options_are_dropped_as_spoofing() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        // The login context is benign; a second (spoofed) analytics context
        // rides behind it.  Enforcing on only the first would accept.
        let mut packet = tagged_packet(login_payload.clone());
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::BorderPatrolContext, analytics_payload).unwrap())
            .unwrap();

        let mut enforcer = PolicyEnforcer::new(
            db.clone(),
            PolicySet::from_policies(vec![Policy::deny(
                EnforcementLevel::Class,
                "com/facebook/appevents",
            )]),
            EnforcerConfig::default(),
        );
        let verdict = enforcer.inspect(&packet);
        assert!(!verdict.is_accept());
        let stats = enforcer.stats();
        assert_eq!(stats.dropped_duplicate_context, 1);
        assert_eq!(stats.total_dropped(), 1);
        // Non-conforming packets never reach the flow cache.
        assert_eq!(stats.flow_misses, 0);
        assert_eq!(enforcer.flow_cache_len(), 0);
        assert!(enforcer.drop_log()[0].contains("duplicate"));

        // The legacy pipeline agrees.
        let mut legacy =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert_eq!(legacy.inspect_legacy(&packet), verdict);
        assert_eq!(legacy.stats().dropped_duplicate_context, 1);

        // The drop is unconditional: even permissive deployments (which
        // still apply deny policies) must not enforce on only the first
        // option — that would reopen the bypass for them.
        let mut permissive =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::permissive());
        assert!(!permissive.inspect(&packet).is_accept());
        assert_eq!(permissive.stats().dropped_duplicate_context, 1);
        assert!(!permissive.inspect_legacy(&packet).is_accept());

        // A single context option (the same first one) still passes.
        let mut single = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        assert!(single.inspect(&tagged_packet(login_payload)).is_accept());
    }

    #[test]
    fn trailing_covert_data_is_dropped_as_nonconforming() {
        let (db, _, _) = solcalendar_fixture();
        // Craft the wire form: a context option, End-of-List, then covert
        // bytes riding the padding area.  The conformance check fires before
        // any decoding, so a short payload suffices.
        let mut packet = untagged_packet();
        let mut wire = vec![IpOptionKind::BorderPatrolContext.type_byte(), 5, 1, 2, 3];
        wire.push(IpOptionKind::EndOfList.type_byte());
        wire.extend_from_slice(&[0xDE, 0xAD]);
        let options = bp_netsim::options::IpOptions::parse(&wire).unwrap();
        assert!(options.has_trailing_data());
        *packet.options_mut() = options;

        let mut enforcer =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(!enforcer.inspect(&packet).is_accept());
        assert_eq!(enforcer.stats().dropped_malformed, 1);
        assert!(enforcer.drop_log()[0].contains("end-of-options-list"));

        let mut legacy =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(!legacy.inspect_legacy(&packet).is_accept());

        // Permissive deployments (drop_malformed_context = false) still
        // evaluate the context instead of dropping.
        let mut permissive =
            PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::permissive());
        assert!(permissive.inspect(&packet).is_accept());
        assert_eq!(permissive.stats().dropped_malformed, 0);
    }

    #[test]
    fn flow_cache_replays_verdicts_and_counts_hits() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);
        let mut cached =
            PolicyEnforcer::new(db.clone(), policies.clone(), EnforcerConfig::default());
        let mut uncached = PolicyEnforcer::new(db, policies, EnforcerConfig::default());

        let accept_packet = tagged_packet(login_payload);
        let deny_packet = tagged_packet(analytics_payload);
        for _ in 0..5 {
            assert_eq!(
                cached.inspect(&accept_packet),
                uncached.inspect_uncached(&accept_packet)
            );
            assert_eq!(
                cached.inspect(&deny_packet),
                uncached.inspect_uncached(&deny_packet)
            );
        }

        // Identical outcome counters and drop logs, hit-accelerated.
        assert_eq!(
            cached.stats().without_flow_counters(),
            uncached.stats().without_flow_counters()
        );
        assert_eq!(cached.drop_log(), uncached.drop_log());
        let stats = cached.stats();
        // Both packets share one flow (same 5-tuple) but alternate payloads,
        // so every probe after the first is a payload mismatch: the
        // cache re-evaluates instead of replaying the wrong verdict.
        assert_eq!(stats.flow_hits, 0);
        assert_eq!(stats.flow_misses, 10);

        // On distinct flows the repeats hit.
        cached.reset_stats();
        cached.clear_flow_cache();
        let mut packets = Vec::new();
        for port in 0..4u16 {
            let mut packet = Ipv4Packet::new(
                Endpoint::new([10, 0, 0, 4], 41_000 + port),
                Endpoint::new([31, 13, 71, 36], 443),
                b"POST /beacon HTTP/1.1".to_vec(),
            );
            packet
                .options_mut()
                .push(
                    IpOption::new(
                        IpOptionKind::BorderPatrolContext,
                        cached_payload_for(port, &accept_packet, &deny_packet),
                    )
                    .unwrap(),
                )
                .unwrap();
            packets.push(packet);
        }
        for _ in 0..3 {
            for packet in &packets {
                cached.inspect(packet);
            }
        }
        let stats = cached.stats();
        assert_eq!(stats.flow_misses, 4);
        assert_eq!(stats.flow_hits, 8);
        assert_eq!(cached.flow_cache_len(), 4);
    }

    /// Payload helper for the distinct-flow test above: alternate accept and
    /// deny contexts across flows.
    fn cached_payload_for(
        port: u16,
        accept_packet: &Ipv4Packet,
        deny_packet: &Ipv4Packet,
    ) -> Vec<u8> {
        let source = if port % 2 == 0 {
            accept_packet
        } else {
            deny_packet
        };
        source
            .options()
            .find(IpOptionKind::BorderPatrolContext)
            .unwrap()
            .data
            .clone()
    }

    #[test]
    fn policy_swap_bumps_epoch_and_invalidates_cached_verdicts() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let mut control = crate::control::ControlPlane::new(
            db.clone(),
            PolicySet::new(),
            EnforcerConfig::default(),
        );
        let enforcer = Arc::new(Mutex::new(PolicyEnforcer::new(
            db,
            PolicySet::new(),
            EnforcerConfig::default(),
        )));
        control.register(Arc::clone(&enforcer) as _);
        let packet = tagged_packet(analytics_payload);

        let epoch_before = enforcer.lock().tables().epoch();
        assert!(enforcer.lock().inspect(&packet).is_accept());
        assert!(enforcer.lock().inspect(&packet).is_accept());
        assert_eq!(enforcer.lock().stats().flow_hits, 1);

        control
            .begin()
            .replace_policies(PolicySet::from_policies(vec![Policy::deny(
                EnforcementLevel::Library,
                "com/facebook",
            )]))
            .commit()
            .unwrap();
        assert!(enforcer.lock().tables().epoch() > epoch_before);

        // The cached accept was computed under the old epoch: it must not be
        // served.  The probe misses, re-evaluates and drops.
        assert!(!enforcer.lock().inspect(&packet).is_accept());
        let stats = enforcer.lock().stats();
        assert_eq!(stats.flow_hits, 1);
        assert_eq!(stats.flow_misses, 2);
        assert_eq!(stats.dropped_by_policy, 1);
    }

    #[test]
    fn flow_cache_evictions_are_counted_and_bounded() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::with_flow_config(
            db,
            PolicySet::new(),
            EnforcerConfig::default(),
            crate::flow::FlowTableConfig {
                capacity: 8,
                ttl: bp_netsim::clock::SimDuration::ZERO,
            },
        );
        for port in 0..32u16 {
            let mut packet = Ipv4Packet::new(
                Endpoint::new([10, 0, 0, 4], 42_000 + port),
                Endpoint::new([31, 13, 71, 36], 443),
                b"POST /beacon HTTP/1.1".to_vec(),
            );
            packet
                .options_mut()
                .push(
                    IpOption::new(IpOptionKind::BorderPatrolContext, analytics_payload.clone())
                        .unwrap(),
                )
                .unwrap();
            enforcer.inspect(&packet);
        }
        assert_eq!(enforcer.flow_cache_len(), 8);
        assert_eq!(enforcer.stats().flow_evictions, 24);
        enforcer.clear_flow_cache();
        assert_eq!(enforcer.flow_cache_len(), 0);
    }

    #[test]
    fn sharded_install_tables_hot_swaps_without_stale_verdicts() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let sharded =
            ShardedEnforcer::from_parts(&db, &PolicySet::new(), EnforcerConfig::default(), 4);
        let packet = tagged_packet(analytics_payload);

        // Warm the flow cache under the permissive tables.
        assert!(sharded.inspect(&packet).is_accept());
        assert!(sharded.inspect(&packet).is_accept());
        assert_eq!(sharded.stats().flow_hits, 1);

        let deny = EnforcementTables::shared(
            &db,
            &PolicySet::from_policies(vec![Policy::deny(
                EnforcementLevel::Library,
                "com/facebook",
            )]),
            EnforcerConfig::default(),
        );
        sharded.install_tables(Arc::clone(&deny));
        assert_eq!(sharded.tables().epoch(), deny.epoch());

        // The swap bumped the epoch: the warmed entry cannot be replayed.
        assert!(!sharded.inspect(&packet).is_accept());
        assert_eq!(sharded.stats().dropped_by_policy, 1);
    }

    #[test]
    fn sharded_enforcer_keeps_flows_on_one_shard() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let sharded =
            ShardedEnforcer::from_parts(&db, &PolicySet::new(), EnforcerConfig::default(), 8);
        let packet = tagged_packet(analytics_payload);
        let shard = sharded.shard_for(&packet);
        for _ in 0..10 {
            assert_eq!(sharded.shard_for(&packet), shard);
        }
    }

    /// A multi-flow stream mixing accepted, denied, malformed and untagged
    /// packets.
    fn mixed_stream(analytics: &[u8], login: &[u8], count: u16) -> Vec<Ipv4Packet> {
        (0..count)
            .map(|i| {
                let mut packet = Ipv4Packet::new(
                    Endpoint::new([10, 0, (i >> 8) as u8, i as u8], 40_000 + i),
                    Endpoint::new([31, 13, 71, 36], 443),
                    b"POST /beacon HTTP/1.1".to_vec(),
                );
                let payload = match i % 4 {
                    0 => Some(analytics.to_vec()),
                    1 => Some(login.to_vec()),
                    2 => Some(vec![9, 9, 9]),
                    _ => None,
                };
                if let Some(payload) = payload {
                    packet
                        .options_mut()
                        .push(IpOption::new(IpOptionKind::BorderPatrolContext, payload).unwrap())
                        .unwrap();
                }
                packet
            })
            .collect()
    }

    #[test]
    fn pool_and_scoped_runtimes_agree_on_a_mixed_stream() {
        let (db, analytics, login) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);
        let tables = EnforcementTables::shared(&db, &policies, EnforcerConfig::default());
        let packets = mixed_stream(&analytics, &login, 256);

        for shards in [2usize, 4, 8] {
            let pool = ShardedEnforcer::with_runtime(
                Arc::clone(&tables),
                shards,
                FlowTableConfig::default(),
                BatchRuntime::Pool,
            );
            let scoped = ShardedEnforcer::with_runtime(
                Arc::clone(&tables),
                shards,
                FlowTableConfig::default(),
                BatchRuntime::Scoped,
            );
            assert_eq!(pool.runtime(), BatchRuntime::Pool);
            assert_eq!(scoped.runtime(), BatchRuntime::Scoped);
            // Several batches so the second round replays from the flow
            // caches on both runtimes.
            for _ in 0..3 {
                assert_eq!(pool.inspect_batch(&packets), scoped.inspect_batch(&packets));
            }
            assert_eq!(pool.stats(), scoped.stats());
            let mut pool_log = pool.drop_log();
            let mut scoped_log = scoped.drop_log();
            pool_log.sort();
            scoped_log.sort();
            assert_eq!(pool_log, scoped_log);
        }
    }

    #[test]
    fn inspect_batch_into_reuses_the_buffer_and_matches_inspect_batch() {
        let (db, analytics, login) = solcalendar_fixture();
        let sharded =
            ShardedEnforcer::from_parts(&db, &PolicySet::new(), EnforcerConfig::default(), 4);
        let packets = mixed_stream(&analytics, &login, 64);
        let mut reused = Vec::new();
        for _ in 0..3 {
            sharded.inspect_batch_into(&packets, &mut reused);
            assert_eq!(reused.len(), packets.len());
        }
        let fresh = sharded.inspect_batch(&packets);
        sharded.inspect_batch_into(&packets, &mut reused);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn dropping_the_enforcer_shuts_down_and_joins_all_pool_workers() {
        let (db, analytics, login) = solcalendar_fixture();
        let sharded =
            ShardedEnforcer::from_parts(&db, &PolicySet::new(), EnforcerConfig::strict(), 4);
        let packets = mixed_stream(&analytics, &login, 64);
        // Force the pool to spawn, then watch its workers and the shared
        // core across the enforcer's drop.
        let verdicts = sharded.inspect_batch(&packets);
        assert_eq!(verdicts.len(), packets.len());
        let pool = sharded.pool.get().expect("pool spawned by the batch");
        let live = pool.live_workers();
        assert_eq!(live.load(Ordering::Relaxed), 4);
        let core = Arc::downgrade(&sharded.core);

        drop(sharded);

        // Drop joined every worker (no detached threads), and with the
        // workers gone nothing still references the shared core (no leaked
        // flow tables, stats or table snapshots).
        assert_eq!(live.load(Ordering::Acquire), 0);
        assert!(
            core.upgrade().is_none(),
            "enforcer core leaked past drop (a worker still holds it)"
        );
    }

    #[test]
    fn an_unbatched_enforcer_spawns_no_pool_threads() {
        let (db, analytics, _) = solcalendar_fixture();
        let sharded =
            ShardedEnforcer::from_parts(&db, &PolicySet::new(), EnforcerConfig::default(), 4);
        // Inline single-packet inspection and single-packet "batches" never
        // touch the pool.
        assert!(sharded
            .inspect(&tagged_packet(analytics.clone()))
            .is_accept());
        let _ = sharded.inspect_batch(&[tagged_packet(analytics)]);
        assert!(
            sharded.pool.get().is_none(),
            "quiet enforcer spawned threads"
        );
    }

    /// Drop-log regression: the rendered text must be byte-identical to what
    /// the `String`-based log recorded before [`DropReason`] (operator
    /// tooling greps these lines).
    #[test]
    fn drop_log_text_is_byte_identical_to_the_string_log() {
        let (db, analytics, _) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);
        let config = EnforcerConfig {
            drop_untagged: true,
            drop_context_switch: true,
            ..EnforcerConfig::default()
        };
        let mut enforcer = PolicyEnforcer::new(db, policies, config);

        // One distinct flow per case so the flow cache never reroutes a
        // later case into a mid-flow context switch.
        let flow_packet = |port: u16, payload: Option<Vec<u8>>| {
            let mut packet = Ipv4Packet::new(
                Endpoint::new([10, 0, 0, 4], port),
                Endpoint::new([31, 13, 71, 36], 443),
                b"POST /beacon HTTP/1.1".to_vec(),
            );
            if let Some(payload) = payload {
                packet
                    .options_mut()
                    .push(IpOption::new(IpOptionKind::BorderPatrolContext, payload).unwrap())
                    .unwrap();
            }
            packet
        };

        // Untagged.
        enforcer.inspect(&flow_packet(50_000, None));
        // Malformed (short payload).
        enforcer.inspect(&flow_packet(50_001, Some(vec![1, 2, 3])));
        // Unknown app.
        let bogus = ContextEncoding::encode(
            bp_types::ApkHash::digest(b"never-analyzed").tag(),
            &[0],
            false,
        )
        .unwrap();
        enforcer.inspect(&flow_packet(50_002, Some(bogus)));
        // Duplicate options.
        let mut duplicate = flow_packet(50_003, Some(analytics.clone()));
        duplicate
            .options_mut()
            .push(IpOption::new(IpOptionKind::BorderPatrolContext, analytics.clone()).unwrap())
            .unwrap();
        enforcer.inspect(&duplicate);
        // Policy deny, then a mid-flow switch on the same live flow.
        enforcer.inspect(&flow_packet(50_004, Some(analytics)));
        enforcer.inspect(&flow_packet(50_004, Some(vec![7; 12])));

        let log = enforcer.drop_log();
        assert_eq!(log[0], "packet carries no BorderPatrol context");
        assert!(
            log[1].starts_with("malformed context option: "),
            "unexpected malformed rendering: {}",
            log[1]
        );
        assert!(
            log[2].starts_with("unknown application tag "),
            "unexpected unknown-app rendering: {}",
            log[2]
        );
        assert_eq!(log[3], "duplicate BorderPatrol context options");
        assert!(
            log[4].starts_with("policy ")
                && log[4].contains("violated: ")
                && log[4].contains("com/facebook/appevents"),
            "unexpected deny rendering: {}",
            log[4]
        );
        assert_eq!(
            log[5],
            "mid-flow context change (replayed or injected context)"
        );
        // Every drop verdict's reason equals its log line.
        assert_eq!(enforcer.stats().total_dropped(), log.len() as u64);
    }

    #[test]
    fn drop_reason_renders_and_converts() {
        assert_eq!(DropReason::Static("static").as_str(), "static");
        assert_eq!(DropReason::from("static"), DropReason::Static("static"));
        let rendered = DropReason::from(String::from("rendered"));
        assert_eq!(rendered.as_str(), "rendered");
        assert_eq!(rendered.to_string(), "rendered");
        let shared: Arc<str> = "shared".into();
        assert_eq!(DropReason::from(&shared).as_str(), "shared");
    }
}
