//! The Policy Enforcer (network-side component).
//!
//! The Policy Enforcer consumes packets from an NFQUEUE and performs the three
//! stages of §IV-A3: **extraction** of the app tag and index sequence from
//! `IP_OPTIONS`, **decoding** of indexes back to method signatures through the
//! signature database, and **enforcement** of the policy set.  Packets that
//! violate policy are dropped; conforming packets continue to the Packet
//! Sanitizer.
//!
//! # Architecture: compiled data plane
//!
//! Enforcement state is split into two halves so the hot path scales:
//!
//! * [`EnforcementTables`] — the **immutable, compiled** half: a
//!   [`CompiledSignatureDb`] (per-app tables keyed by the tag's `u64` form,
//!   descriptors pre-parsed) plus a [`CompiledPolicySet`] (targets pre-split
//!   into slice comparisons) plus the [`EnforcerConfig`].  Built once, shared
//!   via `Arc` by every worker.
//! * Per-shard **mutable** state — [`AtomicEnforcerStats`] counters, a
//!   [`DropLog`] ring buffer and a reusable index-decode scratch buffer.
//!
//! [`PolicyEnforcer`] is the single-shard facade with the historical API;
//! [`ShardedEnforcer`] fans packet batches across N shards with merged
//! statistics.  On the accept path the compiled plane performs no signature
//! parsing and no `String` allocation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use bp_netsim::netfilter::{QueueHandler, Verdict};
use bp_netsim::options::IpOptionKind;
use bp_netsim::packet::Ipv4Packet;

use crate::encoding::ContextEncoding;
use crate::offline::{CompiledSignatureDb, SignatureDatabase};
use crate::policy::{CompiledPolicySet, CompiledVerdict, Decision, PolicySet};

/// Configuration of the Policy Enforcer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcerConfig {
    /// Drop packets that carry no BorderPatrol context option at all.
    ///
    /// In the paper's deployment model (§VII "Compatibility") every packet
    /// leaving the work profile is tagged, so untagged packets indicate
    /// traffic from outside BorderPatrol's control and are dropped in strict
    /// deployments; permissive deployments let them pass (useful while rolling
    /// the system out).
    pub drop_untagged: bool,
    /// Drop packets whose app tag is not present in the signature database.
    pub drop_unknown_apps: bool,
    /// Drop packets whose context option fails to decode.
    pub drop_malformed_context: bool,
}

impl Default for EnforcerConfig {
    fn default() -> Self {
        EnforcerConfig {
            drop_untagged: false,
            drop_unknown_apps: true,
            drop_malformed_context: true,
        }
    }
}

impl EnforcerConfig {
    /// The strict deployment described in §VII: untagged packets are dropped.
    pub fn strict() -> Self {
        EnforcerConfig {
            drop_untagged: true,
            drop_unknown_apps: true,
            drop_malformed_context: true,
        }
    }

    /// A permissive configuration that only enforces explicit policies.
    pub fn permissive() -> Self {
        EnforcerConfig {
            drop_untagged: false,
            drop_unknown_apps: false,
            drop_malformed_context: false,
        }
    }
}

/// Counters the enforcer keeps, broken down by outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcerStats {
    /// Packets inspected.
    pub packets_inspected: u64,
    /// Packets accepted.
    pub packets_accepted: u64,
    /// Packets dropped because a policy matched.
    pub dropped_by_policy: u64,
    /// Packets dropped because they carried no context option.
    pub dropped_untagged: u64,
    /// Packets dropped because the app tag was unknown.
    pub dropped_unknown_app: u64,
    /// Packets dropped because the context failed to decode.
    pub dropped_malformed: u64,
}

impl EnforcerStats {
    /// Total packets dropped for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_by_policy
            + self.dropped_untagged
            + self.dropped_unknown_app
            + self.dropped_malformed
    }

    /// Sum two snapshots (used when merging shards).
    pub fn merged(&self, other: &EnforcerStats) -> EnforcerStats {
        EnforcerStats {
            packets_inspected: self.packets_inspected + other.packets_inspected,
            packets_accepted: self.packets_accepted + other.packets_accepted,
            dropped_by_policy: self.dropped_by_policy + other.dropped_by_policy,
            dropped_untagged: self.dropped_untagged + other.dropped_untagged,
            dropped_unknown_app: self.dropped_unknown_app + other.dropped_unknown_app,
            dropped_malformed: self.dropped_malformed + other.dropped_malformed,
        }
    }
}

/// Lock-free enforcement counters, readable while shard workers are counting.
#[derive(Debug, Default)]
pub struct AtomicEnforcerStats {
    inspected: AtomicU64,
    accepted: AtomicU64,
    by_policy: AtomicU64,
    untagged: AtomicU64,
    unknown_app: AtomicU64,
    malformed: AtomicU64,
}

impl AtomicEnforcerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AtomicEnforcerStats::default()
    }

    /// A consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> EnforcerStats {
        EnforcerStats {
            packets_inspected: self.inspected.load(Ordering::Relaxed),
            packets_accepted: self.accepted.load(Ordering::Relaxed),
            dropped_by_policy: self.by_policy.load(Ordering::Relaxed),
            dropped_untagged: self.untagged.load(Ordering::Relaxed),
            dropped_unknown_app: self.unknown_app.load(Ordering::Relaxed),
            dropped_malformed: self.malformed.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.inspected.store(0, Ordering::Relaxed);
        self.accepted.store(0, Ordering::Relaxed);
        self.by_policy.store(0, Ordering::Relaxed);
        self.untagged.store(0, Ordering::Relaxed);
        self.unknown_app.store(0, Ordering::Relaxed);
        self.malformed.store(0, Ordering::Relaxed);
    }
}

/// Default capacity of the drop log ring buffer.
pub const DROP_LOG_CAPACITY: usize = 10_000;

/// Bounded log of drop reasons (most recent last).
///
/// Backed by a `VecDeque` ring buffer: hitting the capacity evicts the oldest
/// entry in O(1), unlike the `Vec::remove(0)` eviction the interpretive
/// prototype used, which shifted the remaining 10,000 entries on every drop
/// past capacity.
#[derive(Debug, Clone)]
pub struct DropLog {
    entries: VecDeque<String>,
    capacity: usize,
}

impl Default for DropLog {
    fn default() -> Self {
        DropLog::new(DROP_LOG_CAPACITY)
    }
}

impl DropLog {
    /// An empty log bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        DropLog {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append a reason, evicting the oldest entry if the log is full.
    pub fn push(&mut self, reason: String) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(reason);
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no drops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate over retained reasons, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(String::as_str)
    }

    /// Copy the retained reasons into a vector, oldest first.
    pub fn to_vec(&self) -> Vec<String> {
        self.entries.iter().cloned().collect()
    }

    /// Discard all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The immutable, compiled half of the enforcement plane: compiled signature
/// database + compiled policy set + configuration.  Built once from the
/// interchange forms and shared (via [`Arc`]) by every shard and facade.
#[derive(Debug, Clone)]
pub struct EnforcementTables {
    database: CompiledSignatureDb,
    policies: CompiledPolicySet,
    config: EnforcerConfig,
}

impl EnforcementTables {
    /// Compile `database` and `policies` into enforcement-ready tables.
    pub fn build(
        database: &SignatureDatabase,
        policies: &PolicySet,
        config: EnforcerConfig,
    ) -> Self {
        EnforcementTables {
            database: CompiledSignatureDb::compile(database),
            policies: policies.compile(),
            config,
        }
    }

    /// Like [`EnforcementTables::build`], wrapped for sharing.
    pub fn shared(
        database: &SignatureDatabase,
        policies: &PolicySet,
        config: EnforcerConfig,
    ) -> Arc<Self> {
        Arc::new(Self::build(database, policies, config))
    }

    /// The compiled signature database.
    pub fn database(&self) -> &CompiledSignatureDb {
        &self.database
    }

    /// The compiled policy set.
    pub fn policies(&self) -> &CompiledPolicySet {
        &self.policies
    }

    /// The enforcement configuration.
    pub fn config(&self) -> EnforcerConfig {
        self.config
    }

    /// Inspect one packet against the compiled tables (the three-stage
    /// pipeline), charging counters to `stats`, drop reasons to `drop_log`
    /// and reusing `scratch` for index decoding.
    ///
    /// On the accept path this performs no signature parsing and no `String`
    /// allocation: extraction borrows the option payload, decoding refills
    /// `scratch`, resolution is a `u64` map probe plus slice lookups, and
    /// evaluation works on pre-split targets.
    pub fn inspect_packet(
        &self,
        packet: &Ipv4Packet,
        scratch: &mut Vec<u32>,
        stats: &AtomicEnforcerStats,
        drop_log: &mut DropLog,
    ) -> Verdict {
        stats.inspected.fetch_add(1, Ordering::Relaxed);

        // Stage 1: extraction.
        let Some(option) = packet.options().find(IpOptionKind::BorderPatrolContext) else {
            if self.config.drop_untagged {
                stats.untagged.fetch_add(1, Ordering::Relaxed);
                return record_drop(
                    drop_log,
                    "packet carries no BorderPatrol context".to_string(),
                );
            }
            stats.accepted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Accept;
        };

        // Stage 2: decoding (into the reusable scratch buffer).
        let header = match ContextEncoding::decode_into(&option.data, scratch) {
            Ok(header) => header,
            Err(e) => {
                if self.config.drop_malformed_context {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    return record_drop(drop_log, format!("malformed context option: {e}"));
                }
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
        };
        let Some(entry) = self.database.entry(header.app_tag) else {
            if self.config.drop_unknown_apps {
                stats.unknown_app.fetch_add(1, Ordering::Relaxed);
                return record_drop(
                    drop_log,
                    format!("unknown application tag {}", header.app_tag),
                );
            }
            stats.accepted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Accept;
        };
        if let Err(e) = entry.validate_indexes(scratch) {
            if self.config.drop_malformed_context {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                return record_drop(drop_log, format!("undecodable stack indexes: {e}"));
            }
            stats.accepted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Accept;
        }

        // Stage 3: enforcement over pre-parsed frames (index lookups only).
        let frame = |i: usize| {
            entry
                .signature(scratch[i])
                .expect("indexes validated above")
        };
        match self
            .policies
            .evaluate_frames(header.app_tag, scratch.len(), frame)
        {
            CompiledVerdict::Allow => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                Verdict::Accept
            }
            verdict @ CompiledVerdict::Deny { policy, .. } => {
                stats.by_policy.fetch_add(1, Ordering::Relaxed);
                let decision = self.policies.verdict_to_decision(verdict, frame);
                let Decision::Deny { reason, .. } = decision else {
                    unreachable!("deny verdict renders to deny decision");
                };
                let detail = match policy.and_then(|i| self.policies.policy(i)) {
                    Some(policy) => format!("policy {policy} violated: {reason}"),
                    None => reason,
                };
                record_drop(drop_log, detail)
            }
        }
    }
}

fn record_drop(drop_log: &mut DropLog, reason: String) -> Verdict {
    drop_log.push(reason.clone());
    Verdict::Drop { reason }
}

/// The Policy Enforcer NFQUEUE consumer — the single-shard facade over the
/// compiled enforcement plane.
///
/// Retains the interchange [`SignatureDatabase`] / [`PolicySet`] so
/// reconfiguration (§IV "Reconfigurability") recompiles the tables in place.
///
/// # Examples
///
/// ```
/// use bp_core::enforcer::{EnforcerConfig, PolicyEnforcer};
/// use bp_core::offline::SignatureDatabase;
/// use bp_core::policy::PolicySet;
///
/// let enforcer = PolicyEnforcer::new(
///     SignatureDatabase::new(),
///     PolicySet::new(),
///     EnforcerConfig::default(),
/// );
/// assert_eq!(enforcer.stats().packets_inspected, 0);
/// ```
#[derive(Debug)]
pub struct PolicyEnforcer {
    database: SignatureDatabase,
    policies: PolicySet,
    tables: Arc<EnforcementTables>,
    stats: AtomicEnforcerStats,
    drop_log: DropLog,
    scratch: Vec<u32>,
}

impl Clone for PolicyEnforcer {
    fn clone(&self) -> Self {
        let mut clone = PolicyEnforcer::new(
            self.database.clone(),
            self.policies.clone(),
            self.tables.config(),
        );
        clone.drop_log = self.drop_log.clone();
        let stats = self.stats.snapshot();
        clone
            .stats
            .inspected
            .store(stats.packets_inspected, Ordering::Relaxed);
        clone
            .stats
            .accepted
            .store(stats.packets_accepted, Ordering::Relaxed);
        clone
            .stats
            .by_policy
            .store(stats.dropped_by_policy, Ordering::Relaxed);
        clone
            .stats
            .untagged
            .store(stats.dropped_untagged, Ordering::Relaxed);
        clone
            .stats
            .unknown_app
            .store(stats.dropped_unknown_app, Ordering::Relaxed);
        clone
            .stats
            .malformed
            .store(stats.dropped_malformed, Ordering::Relaxed);
        clone
    }
}

impl PolicyEnforcer {
    /// Create an enforcer with a signature database, a policy set and a
    /// configuration; compiles the enforcement tables once.
    pub fn new(database: SignatureDatabase, policies: PolicySet, config: EnforcerConfig) -> Self {
        let tables = EnforcementTables::shared(&database, &policies, config);
        PolicyEnforcer {
            database,
            policies,
            tables,
            stats: AtomicEnforcerStats::new(),
            drop_log: DropLog::default(),
            scratch: Vec::with_capacity(ContextEncoding::max_frames(false)),
        }
    }

    /// The active policy set (interchange form).
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    /// Replace the policy set and recompile the tables (administrators
    /// reconfigure policies centrally; this is the "Reconfigurability" design
    /// goal of §IV).
    pub fn set_policies(&mut self, policies: PolicySet) {
        self.policies = policies;
        self.recompile();
    }

    /// Replace the signature database (e.g. after new apps are analyzed) and
    /// recompile the tables.
    pub fn set_database(&mut self, database: SignatureDatabase) {
        self.database = database;
        self.recompile();
    }

    fn recompile(&mut self) {
        self.tables =
            EnforcementTables::shared(&self.database, &self.policies, self.tables.config());
    }

    /// The signature database (interchange form).
    pub fn database(&self) -> &SignatureDatabase {
        &self.database
    }

    /// The compiled tables this enforcer currently shares with its callers.
    pub fn tables(&self) -> Arc<EnforcementTables> {
        Arc::clone(&self.tables)
    }

    /// Enforcement statistics.
    pub fn stats(&self) -> EnforcerStats {
        self.stats.snapshot()
    }

    /// Human-readable reasons of the most recent drops (most recent last).
    pub fn drop_log(&self) -> Vec<String> {
        self.drop_log.to_vec()
    }

    /// Reset statistics and the drop log.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.drop_log.clear();
    }

    /// Inspect one packet and produce a verdict through the compiled plane.
    pub fn inspect(&mut self, packet: &Ipv4Packet) -> Verdict {
        self.tables
            .inspect_packet(packet, &mut self.scratch, &self.stats, &mut self.drop_log)
    }

    /// Inspect one packet through the original interpretive pipeline: hex-keyed
    /// database lookup, per-frame descriptor *parsing* and string-scanning
    /// policy evaluation.
    ///
    /// Kept as the baseline the `policy_eval` / `enforcer_throughput` benches
    /// compare the compiled plane against; verdicts and statistics match
    /// [`PolicyEnforcer::inspect`].
    pub fn inspect_legacy(&mut self, packet: &Ipv4Packet) -> Verdict {
        self.stats.inspected.fetch_add(1, Ordering::Relaxed);

        // Stage 1: extraction.
        let Some(option) = packet.options().find(IpOptionKind::BorderPatrolContext) else {
            if self.tables.config().drop_untagged {
                self.stats.untagged.fetch_add(1, Ordering::Relaxed);
                return record_drop(
                    &mut self.drop_log,
                    "packet carries no BorderPatrol context".to_string(),
                );
            }
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Accept;
        };

        // Stage 2: decoding.
        let decoded = match ContextEncoding::decode(&option.data) {
            Ok(decoded) => decoded,
            Err(e) => {
                if self.tables.config().drop_malformed_context {
                    self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    return record_drop(
                        &mut self.drop_log,
                        format!("malformed context option: {e}"),
                    );
                }
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
        };
        let stack = match self
            .database
            .resolve_stack(decoded.app_tag, &decoded.frame_indexes)
        {
            Ok(stack) => stack,
            Err(_) if !self.database.contains(decoded.app_tag) => {
                if self.tables.config().drop_unknown_apps {
                    self.stats.unknown_app.fetch_add(1, Ordering::Relaxed);
                    return record_drop(
                        &mut self.drop_log,
                        format!("unknown application tag {}", decoded.app_tag),
                    );
                }
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
            Err(e) => {
                if self.tables.config().drop_malformed_context {
                    self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    return record_drop(
                        &mut self.drop_log,
                        format!("undecodable stack indexes: {e}"),
                    );
                }
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                return Verdict::Accept;
            }
        };

        // Stage 3: enforcement.
        match self.policies.evaluate(decoded.app_tag, &stack) {
            Decision::Allow => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Verdict::Accept
            }
            Decision::Deny { policy, reason } => {
                self.stats.by_policy.fetch_add(1, Ordering::Relaxed);
                let detail = match policy {
                    Some(policy) => format!("policy {policy} violated: {reason}"),
                    None => reason,
                };
                record_drop(&mut self.drop_log, detail)
            }
        }
    }
}

impl QueueHandler for PolicyEnforcer {
    fn name(&self) -> &str {
        "policy-enforcer"
    }

    fn handle(&mut self, packet: &mut Ipv4Packet) -> Verdict {
        self.inspect(packet)
    }
}

/// One worker shard: private counters, drop log and decode scratch.
#[derive(Debug, Default)]
struct EnforcerShard {
    stats: AtomicEnforcerStats,
    drop_log: Mutex<DropLog>,
    scratch: Mutex<Vec<u32>>,
}

/// A sharded Policy Enforcer: one set of compiled [`EnforcementTables`]
/// shared by `N` worker shards, each with private mutable state.
///
/// [`ShardedEnforcer::inspect_batch`] partitions a batch by flow (source
/// endpoint), inspects each partition on its own OS thread and returns
/// per-packet verdicts in input order.  Statistics merge across shards
/// without stopping the workers.
///
/// # Examples
///
/// ```
/// use bp_core::enforcer::{EnforcerConfig, EnforcementTables, ShardedEnforcer};
/// use bp_core::offline::SignatureDatabase;
/// use bp_core::policy::PolicySet;
///
/// let tables = EnforcementTables::shared(
///     &SignatureDatabase::new(),
///     &PolicySet::new(),
///     EnforcerConfig::default(),
/// );
/// let enforcer = ShardedEnforcer::new(tables, 4);
/// assert_eq!(enforcer.shard_count(), 4);
/// assert_eq!(enforcer.stats().packets_inspected, 0);
/// ```
#[derive(Debug)]
pub struct ShardedEnforcer {
    tables: Arc<EnforcementTables>,
    shards: Vec<EnforcerShard>,
}

impl ShardedEnforcer {
    /// Create an enforcer fanning out over `shards` workers (at least one).
    pub fn new(tables: Arc<EnforcementTables>, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedEnforcer {
            tables,
            shards: (0..shards).map(|_| EnforcerShard::default()).collect(),
        }
    }

    /// Convenience constructor compiling the tables from interchange forms.
    pub fn from_parts(
        database: &SignatureDatabase,
        policies: &PolicySet,
        config: EnforcerConfig,
        shards: usize,
    ) -> Self {
        Self::new(
            EnforcementTables::shared(database, policies, config),
            shards,
        )
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared compiled tables.
    pub fn tables(&self) -> Arc<EnforcementTables> {
        Arc::clone(&self.tables)
    }

    /// The shard a packet is routed to: flows stick to shards so per-flow
    /// packet order is preserved within a shard.
    pub fn shard_for(&self, packet: &Ipv4Packet) -> usize {
        let source = packet.source();
        let octets = source.ip.octets();
        let mut key = u64::from(u32::from_be_bytes(octets));
        key = (key << 16) | u64::from(source.port);
        // Fibonacci hashing spreads sequential addresses across shards.
        let hashed = key.wrapping_mul(0x9E3779B97F4A7C15);
        (hashed >> 32) as usize % self.shards.len()
    }

    /// Inspect one packet inline on its flow's shard.
    pub fn inspect(&self, packet: &Ipv4Packet) -> Verdict {
        let shard = &self.shards[self.shard_for(packet)];
        self.tables.inspect_packet(
            packet,
            &mut shard.scratch.lock(),
            &shard.stats,
            &mut shard.drop_log.lock(),
        )
    }

    /// Inspect a batch of packets, fanning partitions across the shards'
    /// worker threads, and return verdicts in input order.
    pub fn inspect_batch(&self, packets: &[Ipv4Packet]) -> Vec<Verdict> {
        let refs: Vec<&Ipv4Packet> = packets.iter().collect();
        self.inspect_batch_refs(&refs)
    }

    fn inspect_batch_refs(&self, packets: &[&Ipv4Packet]) -> Vec<Verdict> {
        let shard_count = self.shards.len();
        if shard_count == 1 || packets.len() <= 1 {
            return packets.iter().map(|packet| self.inspect(packet)).collect();
        }

        let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (index, packet) in packets.iter().enumerate() {
            partitions[self.shard_for(packet)].push(index);
        }

        let mut verdicts: Vec<Option<Verdict>> = vec![None; packets.len()];
        let tables = &self.tables;
        std::thread::scope(|scope| {
            let mut pending = Vec::new();
            for (shard, indexes) in self.shards.iter().zip(&partitions) {
                if indexes.is_empty() {
                    continue;
                }
                pending.push(scope.spawn(move || {
                    let mut scratch = shard.scratch.lock();
                    let mut drop_log = shard.drop_log.lock();
                    indexes
                        .iter()
                        .map(|&index| {
                            let verdict = tables.inspect_packet(
                                packets[index],
                                &mut scratch,
                                &shard.stats,
                                &mut drop_log,
                            );
                            (index, verdict)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for worker in pending {
                for (index, verdict) in worker.join().expect("enforcer shard panicked") {
                    verdicts[index] = Some(verdict);
                }
            }
        });
        verdicts
            .into_iter()
            .map(|verdict| verdict.expect("every packet was partitioned to a shard"))
            .collect()
    }

    /// Merged statistics across all shards.
    pub fn stats(&self) -> EnforcerStats {
        self.shards
            .iter()
            .map(|shard| shard.stats.snapshot())
            .fold(EnforcerStats::default(), |acc, shard| acc.merged(&shard))
    }

    /// Per-shard statistics snapshots.
    pub fn shard_stats(&self) -> Vec<EnforcerStats> {
        self.shards
            .iter()
            .map(|shard| shard.stats.snapshot())
            .collect()
    }

    /// Drop reasons across all shards (grouped by shard, oldest first within
    /// each shard).
    pub fn drop_log(&self) -> Vec<String> {
        self.shards
            .iter()
            .flat_map(|shard| shard.drop_log.lock().to_vec())
            .collect()
    }

    /// Reset statistics and drop logs on every shard.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.stats.reset();
            shard.drop_log.lock().clear();
        }
    }
}

impl QueueHandler for ShardedEnforcer {
    fn name(&self) -> &str {
        "sharded-policy-enforcer"
    }

    fn handle(&mut self, packet: &mut Ipv4Packet) -> Verdict {
        ShardedEnforcer::inspect(self, packet)
    }

    fn handle_batch(&mut self, packets: &mut [&mut Ipv4Packet]) -> Vec<Verdict> {
        // The enforcer only reads packets; reborrow the batch immutably so
        // the partitions can be inspected concurrently.
        let refs: Vec<&Ipv4Packet> = packets.iter().map(|packet| &**packet).collect();
        self.inspect_batch_refs(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineAnalyzer;
    use crate::policy::Policy;
    use bp_appsim::generator::CorpusGenerator;
    use bp_netsim::addr::Endpoint;
    use bp_netsim::options::IpOption;
    use bp_types::EnforcementLevel;

    fn tagged_packet(payload_option: Vec<u8>) -> Ipv4Packet {
        let mut packet = Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 4], 40001),
            Endpoint::new([31, 13, 71, 36], 443),
            b"POST /beacon HTTP/1.1".to_vec(),
        );
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::BorderPatrolContext, payload_option).unwrap())
            .unwrap();
        packet
    }

    fn untagged_packet() -> Ipv4Packet {
        Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 4], 40001),
            Endpoint::new([31, 13, 71, 36], 443),
            b"GET / HTTP/1.1".to_vec(),
        )
    }

    /// Build a database + a context payload whose decoded stack includes the
    /// Facebook analytics frames of the SolCalendar model.
    fn solcalendar_fixture() -> (SignatureDatabase, Vec<u8>, Vec<u8>) {
        let spec = CorpusGenerator::solcalendar();
        let apk = spec.build_apk();
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();
        let table = bp_dex::MethodTable::from_apk(&apk).unwrap();

        let indexes_for = |functionality: &str| -> Vec<u32> {
            spec.functionality(functionality)
                .unwrap()
                .call_chain
                .iter()
                .rev()
                .map(|sig| table.index_of(sig).unwrap())
                .collect()
        };
        let analytics =
            ContextEncoding::encode(apk.hash().tag(), &indexes_for("fb-analytics"), false).unwrap();
        let login =
            ContextEncoding::encode(apk.hash().tag(), &indexes_for("fb-login"), false).unwrap();
        (db, analytics, login)
    }

    #[test]
    fn policy_violations_are_dropped_and_logged() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);
        let mut enforcer = PolicyEnforcer::new(db, policies, EnforcerConfig::default());

        let verdict = enforcer.inspect(&tagged_packet(analytics_payload));
        assert!(!verdict.is_accept());
        let verdict = enforcer.inspect(&tagged_packet(login_payload));
        assert!(verdict.is_accept());

        let stats = enforcer.stats();
        assert_eq!(stats.packets_inspected, 2);
        assert_eq!(stats.dropped_by_policy, 1);
        assert_eq!(stats.packets_accepted, 1);
        assert_eq!(enforcer.drop_log().len(), 1);
        assert!(enforcer.drop_log()[0].contains("com/facebook/appevents"));
    }

    #[test]
    fn untagged_packets_follow_configuration() {
        let (db, _, _) = solcalendar_fixture();
        let mut permissive =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(permissive.inspect(&untagged_packet()).is_accept());
        assert_eq!(permissive.stats().dropped_untagged, 0);

        let mut strict = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::strict());
        assert!(!strict.inspect(&untagged_packet()).is_accept());
        assert_eq!(strict.stats().dropped_untagged, 1);
    }

    #[test]
    fn unknown_app_tags_follow_configuration() {
        let (db, _, _) = solcalendar_fixture();
        let bogus_payload = ContextEncoding::encode(
            bp_types::ApkHash::digest(b"never-analyzed").tag(),
            &[0, 1],
            false,
        )
        .unwrap();

        let mut default =
            PolicyEnforcer::new(db.clone(), PolicySet::new(), EnforcerConfig::default());
        assert!(!default
            .inspect(&tagged_packet(bogus_payload.clone()))
            .is_accept());
        assert_eq!(default.stats().dropped_unknown_app, 1);

        let mut permissive =
            PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::permissive());
        assert!(permissive
            .inspect(&tagged_packet(bogus_payload))
            .is_accept());
    }

    #[test]
    fn malformed_context_is_dropped_by_default() {
        let (db, _, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        // 3 bytes is shorter than the payload header.
        let verdict = enforcer.inspect(&tagged_packet(vec![1, 2, 3]));
        assert!(!verdict.is_accept());
        assert_eq!(enforcer.stats().dropped_malformed, 1);
    }

    #[test]
    fn dangling_index_counts_as_malformed_for_known_app() {
        let (db, _, _) = solcalendar_fixture();
        let tag = db
            .iter()
            .next()
            .map(|(tag_hex, _)| bp_types::AppTag::from_hex(tag_hex).unwrap())
            .unwrap();
        let payload = ContextEncoding::encode(tag, &[60_000], false).unwrap();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        assert!(!enforcer.inspect(&tagged_packet(payload)).is_accept());
        assert_eq!(enforcer.stats().dropped_malformed, 1);
    }

    #[test]
    fn reconfiguration_changes_behaviour_without_rebuilding() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::default());
        assert!(enforcer
            .inspect(&tagged_packet(analytics_payload.clone()))
            .is_accept());

        enforcer.set_policies(PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Library,
            "com/facebook",
        )]));
        assert!(!enforcer
            .inspect(&tagged_packet(analytics_payload))
            .is_accept());
        enforcer.reset_stats();
        assert_eq!(enforcer.stats().packets_inspected, 0);
        assert!(enforcer.drop_log().is_empty());
    }

    #[test]
    fn stats_total_dropped_sums_reasons() {
        let stats = EnforcerStats {
            packets_inspected: 10,
            packets_accepted: 4,
            dropped_by_policy: 3,
            dropped_untagged: 1,
            dropped_unknown_app: 1,
            dropped_malformed: 1,
        };
        assert_eq!(stats.total_dropped(), 6);
    }

    #[test]
    fn legacy_and_compiled_paths_agree_on_the_fixture() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![
            Policy::deny(EnforcementLevel::Class, "com/facebook/appevents"),
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
        ]);
        let mut compiled =
            PolicyEnforcer::new(db.clone(), policies.clone(), EnforcerConfig::default());
        let mut legacy = PolicyEnforcer::new(db, policies, EnforcerConfig::default());

        for payload in [analytics_payload, login_payload, vec![1, 2, 3]] {
            let packet = tagged_packet(payload);
            assert_eq!(compiled.inspect(&packet), legacy.inspect_legacy(&packet));
        }
        let untagged = untagged_packet();
        assert_eq!(
            compiled.inspect(&untagged),
            legacy.inspect_legacy(&untagged)
        );
        assert_eq!(compiled.stats(), legacy.stats());
        assert_eq!(compiled.drop_log(), legacy.drop_log());
    }

    #[test]
    fn drop_log_ring_buffer_evicts_oldest_in_order() {
        let mut log = DropLog::new(3);
        for i in 0..5 {
            log.push(format!("drop {i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.to_vec(), vec!["drop 2", "drop 3", "drop 4"]);
        assert_eq!(log.capacity(), 3);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn drop_log_stays_bounded_under_sustained_drops() {
        let (db, _, _) = solcalendar_fixture();
        let mut enforcer = PolicyEnforcer::new(db, PolicySet::new(), EnforcerConfig::strict());
        for _ in 0..(DROP_LOG_CAPACITY + 50) {
            enforcer.inspect(&untagged_packet());
        }
        assert_eq!(enforcer.drop_log().len(), DROP_LOG_CAPACITY);
        assert_eq!(
            enforcer.stats().dropped_untagged,
            (DROP_LOG_CAPACITY + 50) as u64
        );
    }

    #[test]
    fn sharded_enforcer_matches_single_shard_on_a_packet_stream() {
        let (db, analytics_payload, login_payload) = solcalendar_fixture();
        let policies = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/facebook/appevents",
        )]);

        // A stream mixing allowed, denied, malformed and untagged packets
        // across many source ports (flows).
        let mut packets = Vec::new();
        for i in 0..200u16 {
            let mut packet = Ipv4Packet::new(
                Endpoint::new([10, 0, (i >> 8) as u8, i as u8], 40_000 + i),
                Endpoint::new([31, 13, 71, 36], 443),
                b"POST /beacon HTTP/1.1".to_vec(),
            );
            let payload = match i % 4 {
                0 => Some(analytics_payload.clone()),
                1 => Some(login_payload.clone()),
                2 => Some(vec![9, 9, 9]),
                _ => None,
            };
            if let Some(payload) = payload {
                packet
                    .options_mut()
                    .push(IpOption::new(IpOptionKind::BorderPatrolContext, payload).unwrap())
                    .unwrap();
            }
            packets.push(packet);
        }

        let mut single =
            PolicyEnforcer::new(db.clone(), policies.clone(), EnforcerConfig::default());
        let expected: Vec<Verdict> = packets.iter().map(|p| single.inspect(p)).collect();

        let sharded = ShardedEnforcer::from_parts(&db, &policies, EnforcerConfig::default(), 4);
        let verdicts = sharded.inspect_batch(&packets);

        assert_eq!(verdicts, expected);
        assert_eq!(sharded.stats(), single.stats());
        // Work actually spread across shards.
        let busy = sharded
            .shard_stats()
            .iter()
            .filter(|s| s.packets_inspected > 0)
            .count();
        assert!(busy > 1, "expected multiple busy shards, got {busy}");
        // Drop logs hold the same multiset of reasons.
        let mut sharded_log = sharded.drop_log();
        let mut single_log = single.drop_log();
        sharded_log.sort();
        single_log.sort();
        assert_eq!(sharded_log, single_log);

        sharded.reset_stats();
        assert_eq!(sharded.stats(), EnforcerStats::default());
        assert!(sharded.drop_log().is_empty());
    }

    #[test]
    fn sharded_enforcer_keeps_flows_on_one_shard() {
        let (db, analytics_payload, _) = solcalendar_fixture();
        let sharded =
            ShardedEnforcer::from_parts(&db, &PolicySet::new(), EnforcerConfig::default(), 8);
        let packet = tagged_packet(analytics_payload);
        let shard = sharded.shard_for(&packet);
        for _ in 0..10 {
            assert_eq!(sharded.shard_for(&packet), shard);
        }
    }
}
