//! Connection-tracking flow table with epoch-versioned verdict caching.
//!
//! The Policy Enforcer sits on the path of **every packet** (paper §IV-A3),
//! yet the packets of a long-lived flow almost always carry the *same*
//! context option: the stack is captured once per `connect` and re-injected
//! verbatim on every packet of the socket.  Re-running context decode,
//! signature resolution and policy evaluation for each of them is pure waste
//! — Poise makes the same observation for in-network BYOD enforcement and
//! keeps per-flow context state in the data plane to reach line rate.
//!
//! [`FlowTable`] is that state here: a bounded per-shard map from the 5-tuple
//! [`FlowKey`] (the exact key `bp-netsim`'s network-side flow accounting
//! uses, so the two planes agree on flow identity) to the cached outcome of
//! the last evaluation, together with
//!
//! * the **exact context-option payload** that produced the outcome, stored
//!   inline (RFC 791 bounds it to 38 bytes) and byte-compared on every probe
//!   — any context change (new stack, new tag, tampered bytes) on a live
//!   flow is surfaced as a [`FlowProbe::ContextSwitch`] (the set-once kernel
//!   never re-tags a socket, so a mid-flow change is the signature of
//!   context replay or injection), and no hash-collision replay is possible;
//!   and
//! * the **epoch** of the compiled [`EnforcementTables`] the outcome was
//!   computed under — recompiling (policy or database hot-swap) bumps the
//!   epoch, so entries cached before the swap are lazily invalidated on
//!   their next probe and a stale verdict is never served.  This holds even
//!   when the control plane compiles a generation *incrementally* (an
//!   append-only policy delta extends the previous generation's index
//!   instead of rebuilding it): every committed generation is stamped with a
//!   fresh epoch regardless of how much compiled structure it reuses, so
//!   reuse changes compile cost only, never cache-coherence semantics.
//!
//! Eviction is LRU (lazy, via a touch queue) bounded by
//! [`FlowTableConfig::capacity`], plus TTL on the simulated clock: entries
//! idle longer than [`FlowTableConfig::ttl`] are treated as dead flows.
//!
//! Flow tables are *shard-local*. [`ShardedEnforcer`] partitions batches by
//! flow, so a flow's packets always land on the same shard and the tables
//! need no cross-shard synchronization.
//!
//! [`EnforcementTables`]: crate::enforcer::EnforcementTables
//! [`ShardedEnforcer`]: crate::enforcer::ShardedEnforcer

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use bp_netsim::clock::SimDuration;
use bp_netsim::packet::FlowKey;

use crate::encoding::MAX_CONTEXT_PAYLOAD;

/// Default bound on the number of flows one shard tracks.
pub const DEFAULT_FLOW_CAPACITY: usize = 4_096;

/// Default idle TTL after which a cached flow entry is considered dead.
pub const DEFAULT_FLOW_TTL: SimDuration = SimDuration::from_millis(30_000);

/// The Fx multiplier (a.k.a. the Firefox hasher constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Inline copy of a context-option payload.
///
/// RFC 791 bounds the payload to [`MAX_CONTEXT_PAYLOAD`] (38) bytes, so the
/// cache stores the **exact** bytes and compares them on every probe — a
/// 38-byte memcmp costs about as much as hashing would, and unlike a 64-bit
/// payload hash it cannot be collided: an app that controls its own call
/// chains could otherwise craft a *denied* context whose hash matches its
/// cached *allowed* one and replay the stale accept.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PayloadBuf {
    len: u8,
    bytes: [u8; MAX_CONTEXT_PAYLOAD],
}

impl PayloadBuf {
    /// Copy `payload` inline; `None` if it exceeds the RFC 791 bound (such a
    /// payload cannot come from a real options area, so it is not cached).
    fn new(payload: &[u8]) -> Option<Self> {
        if payload.len() > MAX_CONTEXT_PAYLOAD {
            return None;
        }
        let mut bytes = [0u8; MAX_CONTEXT_PAYLOAD];
        bytes[..payload.len()].copy_from_slice(payload);
        Some(PayloadBuf {
            len: payload.len() as u8,
            bytes,
        })
    }

    fn as_slice(&self) -> &[u8] {
        &self.bytes[..usize::from(self.len)]
    }
}

/// Fx-style hasher for [`FlowKey`] map probes: the key is 13 bytes of
/// already-well-distributed address material, so a multiply-rotate mix is
/// plenty and roughly an order of magnitude cheaper than the default
/// SipHash — the probe *is* the hot path the flow table exists to shorten.
#[derive(Debug, Default)]
pub struct FlowKeyHasher {
    hash: u64,
}

impl Hasher for FlowKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.hash = (self.hash.rotate_left(5) ^ u64::from(byte)).wrapping_mul(FX_SEED);
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.hash = (self.hash.rotate_left(5) ^ u64::from(value)).wrapping_mul(FX_SEED);
    }

    fn write_u16(&mut self, value: u16) {
        self.hash = (self.hash.rotate_left(5) ^ u64::from(value)).wrapping_mul(FX_SEED);
    }

    fn write_u8(&mut self, value: u8) {
        self.hash = (self.hash.rotate_left(5) ^ u64::from(value)).wrapping_mul(FX_SEED);
    }

    fn write_u64(&mut self, value: u64) {
        self.hash = (self.hash.rotate_left(5) ^ value).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

type FlowMap = HashMap<FlowKey, FlowEntry, BuildHasherDefault<FlowKeyHasher>>;

/// The cacheable outcome of evaluating one context payload against the
/// compiled tables.
///
/// This is the *configuration-independent* evaluation result: how it maps to
/// an accept/drop verdict (and which statistics counter it charges) is
/// decided by `EnforcementTables::apply_outcome`, so replaying a cached
/// outcome produces byte-identical verdicts, statistics and drop-log entries
/// to a fresh evaluation.
///
/// Diagnostics are carried as `Arc<str>`: cloning an outcome into (or out
/// of) the flow table, and appending its reason to the drop log, bumps a
/// refcount instead of copying string bytes — the rendering is paid once,
/// at evaluation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedOutcome {
    /// No policy matched (or an allow won): the packet passes.
    Accept,
    /// The payload failed to decode or referenced indexes outside the app's
    /// method table; the reason is the rendered diagnostic.
    Malformed(Arc<str>),
    /// The app tag is not present in the signature database.
    UnknownApp(Arc<str>),
    /// A deny policy matched; the reason is the fully rendered drop detail.
    Deny(Arc<str>),
}

/// The result of one [`FlowTable::probe`].
///
/// Distinguishing a plain miss from a **context switch** matters for
/// enforcement: the hardened kernel injects the context once per socket
/// (set-once `setsockopt`, paper §IV-A2/§VII), so the packets of a live flow
/// can never legitimately change their context payload.  A live, same-epoch
/// entry whose payload no longer matches is therefore the signature of
/// context replay or injection riding an established flow, and the enforcer
/// surfaces it in its own statistics counter (and, when configured, drops
/// the packet) instead of silently re-evaluating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowProbe<'a> {
    /// A live entry matched flow, epoch and exact payload bytes; the cached
    /// outcome can be replayed.
    Hit(&'a CachedOutcome),
    /// No usable entry: the flow is untracked, its entry expired (dead flow —
    /// the 5-tuple may be legitimately reused by a new socket), or it was
    /// cached under an older tables epoch.  Stale entries are dropped.
    Miss,
    /// A live, same-epoch entry carries **different** payload bytes: the
    /// flow's context changed mid-flow, which the set-once kernel never
    /// produces.  The existing entry is *kept* so that an enforcer
    /// configured to drop such packets keeps serving the flow's original
    /// context (an attacker must not be able to evict the legitimate entry
    /// by injection); callers that re-evaluate instead simply overwrite it
    /// via [`FlowTable::insert`].
    ContextSwitch,
}

impl<'a> FlowProbe<'a> {
    /// True if the probe found a replayable cached outcome.
    pub fn is_hit(&self) -> bool {
        matches!(self, FlowProbe::Hit(_))
    }

    /// The cached outcome, if the probe hit.
    pub fn outcome(&self) -> Option<&'a CachedOutcome> {
        match self {
            FlowProbe::Hit(outcome) => Some(outcome),
            _ => None,
        }
    }
}

/// Sizing and expiry knobs of a [`FlowTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTableConfig {
    /// Maximum number of flows tracked; the least-recently-used entry is
    /// evicted to admit a new flow at capacity.
    pub capacity: usize,
    /// Maximum idle age (on the simulated clock) before an entry is treated
    /// as a dead flow and re-evaluated.  [`SimDuration::ZERO`] disables TTL
    /// expiry, which is what standalone benches (no clock source) want.
    pub ttl: SimDuration,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            capacity: DEFAULT_FLOW_CAPACITY,
            ttl: DEFAULT_FLOW_TTL,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowEntry {
    payload: PayloadBuf,
    epoch: u64,
    outcome: CachedOutcome,
    last_seen: SimDuration,
    /// Tick of this entry's most recent touch; queue entries with an older
    /// tick are stale and skipped during eviction.
    tick: u64,
}

/// A bounded per-shard flow table: [`FlowKey`] → cached verdict, versioned by
/// exact payload bytes and tables epoch, with lazy-LRU + TTL eviction.
///
/// # Examples
///
/// ```
/// use bp_core::flow::{CachedOutcome, FlowProbe, FlowTable, FlowTableConfig};
/// use bp_netsim::addr::Endpoint;
/// use bp_netsim::clock::SimDuration;
/// use bp_netsim::packet::Ipv4Packet;
///
/// let mut table = FlowTable::new(FlowTableConfig::default());
/// let key = Ipv4Packet::new(
///     Endpoint::new([10, 0, 0, 1], 40_000),
///     Endpoint::new([1, 1, 1, 1], 443),
///     vec![],
/// )
/// .flow_key();
/// let now = SimDuration::ZERO;
///
/// assert_eq!(table.probe(&key, b"payload", 1, now), FlowProbe::Miss);
/// table.insert(key, b"payload", 1, CachedOutcome::Accept, now);
/// assert_eq!(
///     table.probe(&key, b"payload", 1, now),
///     FlowProbe::Hit(&CachedOutcome::Accept)
/// );
/// // A bumped epoch misses (and drops the stale entry) …
/// assert_eq!(table.probe(&key, b"payload", 2, now), FlowProbe::Miss);
/// // … while a payload change on a *live* entry is a mid-flow context
/// // switch, which the set-once kernel never produces.
/// table.insert(key, b"payload", 2, CachedOutcome::Accept, now);
/// assert_eq!(
///     table.probe(&key, b"other", 2, now),
///     FlowProbe::ContextSwitch
/// );
/// ```
#[derive(Debug)]
pub struct FlowTable {
    config: FlowTableConfig,
    entries: FlowMap,
    /// Lazy LRU order: every touch appends `(key, tick)`; entries whose tick
    /// no longer matches the live entry are skipped (and compacted away once
    /// the queue grows past a multiple of capacity).
    order: VecDeque<(FlowKey, u64)>,
    tick: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new(FlowTableConfig::default())
    }
}

impl FlowTable {
    /// An empty table with the given bounds (capacity is clamped to ≥ 1).
    pub fn new(config: FlowTableConfig) -> Self {
        let config = FlowTableConfig {
            capacity: config.capacity.max(1),
            ..config
        };
        FlowTable {
            config,
            entries: FlowMap::with_capacity_and_hasher(
                config.capacity.min(1_024),
                BuildHasherDefault::default(),
            ),
            order: VecDeque::new(),
            tick: 0,
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> FlowTableConfig {
        self.config
    }

    /// Number of flows currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every tracked flow.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Bound the touch queue: stale touches accumulate one per hit, so
    /// compact once the queue outgrows a small multiple of capacity.  Called
    /// before the map is borrowed so hit probes can return a reference
    /// without re-probing.
    fn maybe_compact(&mut self) {
        if self.order.len() > self.config.capacity.saturating_mul(4).max(64) {
            let entries = &self.entries;
            self.order
                .retain(|(key, tick)| entries.get(key).is_some_and(|e| e.tick == *tick));
        }
    }

    /// Probe for a cached outcome: [`FlowProbe::Hit`] only when the flow is
    /// present, was cached under the same `epoch`, carries **byte-identical**
    /// context `payload`, and has not idled past the TTL.  A hit refreshes
    /// the entry's LRU position and timestamp.  An entry cached under an
    /// older epoch or idle past the TTL is removed and reported as a
    /// [`FlowProbe::Miss`]; a *live* same-epoch entry whose payload differs
    /// is reported as a [`FlowProbe::ContextSwitch`] and **kept** (see the
    /// variant documentation for why).
    pub fn probe(
        &mut self,
        key: &FlowKey,
        payload: &[u8],
        epoch: u64,
        now: SimDuration,
    ) -> FlowProbe<'_> {
        self.maybe_compact();
        let ttl = self.config.ttl;
        match self.entries.entry(*key) {
            std::collections::hash_map::Entry::Vacant(_) => FlowProbe::Miss,
            std::collections::hash_map::Entry::Occupied(occupied) => {
                let entry = occupied.get();
                if entry.epoch != epoch
                    || (ttl > SimDuration::ZERO && now.saturating_sub(entry.last_seen) > ttl)
                {
                    occupied.remove();
                    return FlowProbe::Miss;
                }
                if entry.payload.as_slice() != payload {
                    return FlowProbe::ContextSwitch;
                }
                self.tick += 1;
                let tick = self.tick;
                self.order.push_back((*key, tick));
                let entry = occupied.into_mut();
                entry.last_seen = now;
                entry.tick = tick;
                FlowProbe::Hit(&entry.outcome)
            }
        }
    }

    /// Cache `outcome` for `key`, evicting least-recently-used entries if the
    /// table is at capacity; returns how many entries were evicted.  Payloads
    /// beyond the RFC 791 bound are not cached (no real options area can
    /// produce them).
    pub fn insert(
        &mut self,
        key: FlowKey,
        payload: &[u8],
        epoch: u64,
        outcome: CachedOutcome,
        now: SimDuration,
    ) -> u64 {
        let Some(payload) = PayloadBuf::new(payload) else {
            return 0;
        };
        self.maybe_compact();
        let mut evicted = 0;
        if !self.entries.contains_key(&key) {
            while self.entries.len() >= self.config.capacity {
                if self.evict_lru() {
                    evicted += 1;
                } else {
                    break;
                }
            }
        }
        self.tick += 1;
        let tick = self.tick;
        self.order.push_back((key, tick));
        self.entries.insert(
            key,
            FlowEntry {
                payload,
                epoch,
                outcome,
                last_seen: now,
                tick,
            },
        );
        evicted
    }

    /// Remove the least-recently-used live entry; returns false only if the
    /// table is empty.
    fn evict_lru(&mut self) -> bool {
        while let Some((key, tick)) = self.order.pop_front() {
            if self.entries.get(&key).is_some_and(|e| e.tick == tick) {
                self.entries.remove(&key);
                return true;
            }
        }
        // The touch queue always contains a live touch for every entry, so
        // reaching here means the table is empty.
        debug_assert!(self.entries.is_empty());
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_netsim::addr::Endpoint;
    use bp_netsim::packet::Ipv4Packet;

    fn key(port: u16) -> FlowKey {
        Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 1], port),
            Endpoint::new([1, 1, 1, 1], 443),
            vec![],
        )
        .flow_key()
    }

    fn table(capacity: usize, ttl: SimDuration) -> FlowTable {
        FlowTable::new(FlowTableConfig { capacity, ttl })
    }

    #[test]
    fn payloads_are_compared_exactly_including_length() {
        let mut t = table(8, SimDuration::ZERO);
        let now = SimDuration::ZERO;
        t.insert(key(1), &[0], 1, CachedOutcome::Accept, now);
        // A zero-extended payload is a different context, not a hit.
        assert_eq!(t.probe(&key(1), &[0, 0], 1, now), FlowProbe::ContextSwitch);

        // Oversized payloads (impossible on a real options area) never cache.
        assert_eq!(t.insert(key(2), &[7; 64], 1, CachedOutcome::Accept, now), 0);
        assert_eq!(t.probe(&key(2), &[7; 64], 1, now), FlowProbe::Miss);
    }

    #[test]
    fn probe_flags_payload_change_and_misses_on_epoch_bump() {
        let mut t = table(8, SimDuration::ZERO);
        let now = SimDuration::ZERO;
        t.insert(key(1), b"ctx-a", 1, CachedOutcome::Accept, now);
        assert_eq!(
            t.probe(&key(1), b"ctx-a", 1, now),
            FlowProbe::Hit(&CachedOutcome::Accept)
        );

        // Context change: same flow, different payload bytes on a live
        // entry — the signature of mid-flow context replay/injection.
        assert_eq!(t.probe(&key(1), b"ctx-b", 1, now), FlowProbe::ContextSwitch);
        // The legitimate entry is kept: the original payload still hits, so
        // an attacker cannot evict the flow's real context by injection.
        assert!(t.probe(&key(1), b"ctx-a", 1, now).is_hit());

        // Epoch bump: tables were recompiled; the stale entry is dropped.
        assert_eq!(t.probe(&key(1), b"ctx-a", 2, now), FlowProbe::Miss);
        assert!(t.is_empty());
        // With no live entry, a different payload is a plain miss, not a
        // context switch.
        assert_eq!(t.probe(&key(1), b"ctx-b", 2, now), FlowProbe::Miss);
    }

    #[test]
    fn ttl_expires_idle_entries_on_the_sim_clock() {
        let mut t = table(8, SimDuration::from_millis(10));
        t.insert(key(1), b"ctx", 1, CachedOutcome::Accept, SimDuration::ZERO);
        // Within TTL (inclusive boundary): still live, and the hit refreshes.
        assert!(t
            .probe(&key(1), b"ctx", 1, SimDuration::from_millis(10))
            .is_hit());
        assert!(t
            .probe(&key(1), b"ctx", 1, SimDuration::from_millis(20))
            .is_hit());
        // Past TTL since the refresh: dead flow.
        assert_eq!(
            t.probe(&key(1), b"ctx", 1, SimDuration::from_millis(31)),
            FlowProbe::Miss
        );
        assert!(t.is_empty());
        // Port reuse after expiry is legitimate: a different payload on the
        // reused 5-tuple is a plain miss, not a context switch.
        t.insert(key(1), b"ctx", 1, CachedOutcome::Accept, SimDuration::ZERO);
        assert_eq!(
            t.probe(&key(1), b"ctx2", 1, SimDuration::from_millis(40)),
            FlowProbe::Miss
        );
    }

    #[test]
    fn lru_eviction_prefers_the_coldest_flow() {
        let mut t = table(2, SimDuration::ZERO);
        let now = SimDuration::ZERO;
        assert_eq!(t.insert(key(1), b"ctx", 1, CachedOutcome::Accept, now), 0);
        assert_eq!(t.insert(key(2), b"ctx", 1, CachedOutcome::Accept, now), 0);
        // Touch flow 1 so flow 2 becomes the LRU victim.
        assert!(t.probe(&key(1), b"ctx", 1, now).is_hit());
        assert_eq!(t.insert(key(3), b"ctx", 1, CachedOutcome::Accept, now), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.probe(&key(2), b"ctx", 1, now), FlowProbe::Miss);
        assert!(t.probe(&key(1), b"ctx", 1, now).is_hit());
        assert!(t.probe(&key(3), b"ctx", 1, now).is_hit());
    }

    #[test]
    fn reinserting_an_existing_flow_does_not_evict() {
        let mut t = table(2, SimDuration::ZERO);
        let now = SimDuration::ZERO;
        t.insert(key(1), b"ctx", 1, CachedOutcome::Accept, now);
        t.insert(key(2), b"ctx", 1, CachedOutcome::Accept, now);
        // Updating flow 1 in place must not evict flow 2.
        assert_eq!(
            t.insert(
                key(1),
                b"ctx2",
                2,
                CachedOutcome::Deny("re-eval".into()),
                now
            ),
            0
        );
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.probe(&key(1), b"ctx2", 2, now),
            FlowProbe::Hit(&CachedOutcome::Deny("re-eval".into()))
        );
        assert_eq!(
            t.probe(&key(1), b"ctx2", 2, now).outcome(),
            Some(&CachedOutcome::Deny("re-eval".into()))
        );
    }

    #[test]
    fn touch_queue_stays_bounded_under_sustained_hits() {
        let mut t = table(4, SimDuration::ZERO);
        let now = SimDuration::ZERO;
        for p in 0..4u16 {
            t.insert(key(p), b"ctx", 1, CachedOutcome::Accept, now);
        }
        for _ in 0..10_000 {
            for p in 0..4u16 {
                assert!(t.probe(&key(p), b"ctx", 1, now).is_hit());
            }
        }
        // Compaction triggers past max(4 * capacity, 64) touches; the queue
        // never grows more than one touch beyond that threshold.
        assert!(
            t.order.len() <= t.config.capacity.saturating_mul(4).max(64) + 1,
            "touch queue grew unboundedly: {}",
            t.order.len()
        );
        // Eviction still works after heavy compaction.
        t.insert(key(100), b"ctx", 1, CachedOutcome::Accept, now);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn capacity_is_clamped_and_clear_resets() {
        let mut t = table(0, SimDuration::ZERO);
        assert_eq!(t.config().capacity, 1);
        t.insert(key(1), b"ctx", 1, CachedOutcome::Accept, SimDuration::ZERO);
        t.insert(key(2), b"ctx", 1, CachedOutcome::Accept, SimDuration::ZERO);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(
            t.probe(&key(2), b"ctx", 1, SimDuration::ZERO),
            FlowProbe::Miss
        );
    }
}
