//! The Policy Extractor (administrator tooling, paper §V-E).
//!
//! Administrators run an app twice: once exercising only the allowed
//! functionality (the baseline profile) and once exercising the undesirable
//! functionality.  The extractor diffs the two sets of observed stack traces,
//! identifies the method signatures that appear *only* in the undesired run,
//! and emits deny policies at a chosen enforcement level.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use bp_types::{EnforcementLevel, MethodSignature, StackTrace};

use crate::policy::{Policy, PolicySet};

/// The observed stack traces of one profiling run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRun {
    traces: Vec<StackTrace>,
}

impl ProfileRun {
    /// An empty run.
    pub fn new() -> Self {
        ProfileRun::default()
    }

    /// Build a run from recorded traces.
    pub fn from_traces(traces: Vec<StackTrace>) -> Self {
        ProfileRun { traces }
    }

    /// Record one connection's stack trace.
    pub fn record(&mut self, trace: StackTrace) {
        self.traces.push(trace);
    }

    /// Number of recorded traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The set of distinct method signatures appearing anywhere in the run.
    pub fn signature_set(&self) -> BTreeSet<MethodSignature> {
        self.traces
            .iter()
            .flat_map(|t| t.signatures().cloned())
            .collect()
    }
}

/// The differential policy extractor.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyExtractor;

impl PolicyExtractor {
    /// Create an extractor.
    pub fn new() -> Self {
        PolicyExtractor
    }

    /// The method signatures that appear in `undesired` but never in
    /// `baseline` — the candidates for deny targets.
    pub fn unique_signatures(
        &self,
        baseline: &ProfileRun,
        undesired: &ProfileRun,
    ) -> Vec<MethodSignature> {
        let baseline_set = baseline.signature_set();
        undesired
            .signature_set()
            .into_iter()
            .filter(|sig| !baseline_set.contains(sig))
            .collect()
    }

    /// Derive deny policies at `level` from the unique signatures of the
    /// undesired run.
    ///
    /// * `Method` level: one policy per unique signature (full descriptor).
    /// * `Class` level: one policy per distinct fully qualified class.
    /// * `Library` level: one policy per distinct two-segment package prefix.
    /// * `Hash` level is not meaningful for differential extraction and
    ///   produces an empty set.
    pub fn extract(
        &self,
        baseline: &ProfileRun,
        undesired: &ProfileRun,
        level: EnforcementLevel,
    ) -> PolicySet {
        let unique = self.unique_signatures(baseline, undesired);
        let mut targets: BTreeSet<String> = BTreeSet::new();
        for sig in &unique {
            match level {
                EnforcementLevel::Method => {
                    targets.insert(sig.to_descriptor());
                }
                EnforcementLevel::Class => {
                    targets.insert(sig.qualified_class());
                }
                EnforcementLevel::Library => {
                    let prefix = sig.library_prefix(2);
                    if !prefix.is_empty() {
                        targets.insert(prefix);
                    }
                }
                EnforcementLevel::Hash => {}
            }
        }
        targets
            .into_iter()
            .map(|t| Policy::deny(level, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_appsim::generator::CorpusGenerator;
    use bp_device::runtime::java_stack_for;
    use bp_types::ApkHash;

    fn dropbox_runs() -> (ProfileRun, ProfileRun) {
        let app = CorpusGenerator::dropbox();
        let mut baseline = ProfileRun::new();
        for name in ["auth", "browse", "download"] {
            baseline.record(java_stack_for(&app, app.functionality(name).unwrap()));
        }
        let mut undesired = ProfileRun::new();
        undesired.record(java_stack_for(&app, app.functionality("upload").unwrap()));
        (baseline, undesired)
    }

    #[test]
    fn unique_signatures_exclude_shared_frames() {
        let extractor = PolicyExtractor::new();
        let (baseline, undesired) = dropbox_runs();
        let unique = extractor.unique_signatures(&baseline, &undesired);
        assert!(!unique.is_empty());
        // The shared Socket.connect frame and shared UI/activity frames must
        // not appear.
        assert!(unique.iter().all(|s| s.class_name() != "Socket"));
        // The UploadTask method must appear.
        assert!(unique.iter().any(|s| s.class_name() == "UploadTask"));
    }

    #[test]
    fn method_level_extraction_blocks_upload_only() {
        let extractor = PolicyExtractor::new();
        let (baseline, undesired) = dropbox_runs();
        let set = extractor.extract(&baseline, &undesired, EnforcementLevel::Method);
        assert!(!set.is_empty());

        let app = CorpusGenerator::dropbox();
        let tag = ApkHash::digest(b"dropbox").tag();
        let upload_stack: Vec<MethodSignature> =
            java_stack_for(&app, app.functionality("upload").unwrap())
                .signatures()
                .cloned()
                .collect();
        let download_stack: Vec<MethodSignature> =
            java_stack_for(&app, app.functionality("download").unwrap())
                .signatures()
                .cloned()
                .collect();
        assert!(!set.evaluate(tag, &upload_stack).is_allow());
        assert!(set.evaluate(tag, &download_stack).is_allow());
    }

    #[test]
    fn class_and_library_levels_aggregate_targets() {
        let extractor = PolicyExtractor::new();
        let (baseline, undesired) = dropbox_runs();
        let class_set = extractor.extract(&baseline, &undesired, EnforcementLevel::Class);
        let method_set = extractor.extract(&baseline, &undesired, EnforcementLevel::Method);
        let library_set = extractor.extract(&baseline, &undesired, EnforcementLevel::Library);
        assert!(class_set.len() <= method_set.len());
        assert!(library_set.len() <= class_set.len());
        assert!(library_set
            .iter()
            .all(|p| p.level() == EnforcementLevel::Library));
        // Hash-level extraction yields nothing.
        assert!(extractor
            .extract(&baseline, &undesired, EnforcementLevel::Hash)
            .is_empty());
    }

    #[test]
    fn identical_runs_produce_no_policies() {
        let extractor = PolicyExtractor::new();
        let (baseline, _) = dropbox_runs();
        let set = extractor.extract(&baseline, &baseline.clone(), EnforcementLevel::Method);
        assert!(set.is_empty());
    }

    #[test]
    fn profile_run_accessors() {
        let (baseline, undesired) = dropbox_runs();
        assert_eq!(baseline.len(), 3);
        assert_eq!(undesired.len(), 1);
        assert!(!baseline.is_empty());
        assert!(ProfileRun::new().is_empty());
        assert!(baseline.signature_set().len() > 3);
        let rebuilt = ProfileRun::from_traces(vec![]);
        assert!(rebuilt.is_empty());
    }
}
