//! The policy grammar and evaluation semantics.
//!
//! Policies follow the grammar of the paper's Snippet 1:
//!
//! ```text
//! <POLICY> ::= {[<ACTION>] [<LEVEL>] [<TARGET>]}
//! <ACTION> ::= (allow | deny)
//! <LEVEL>  ::= (hash | library | class | method)
//! ```
//!
//! Evaluation follows §IV-B: for the stack signatures `s ∈ H` of a packet and
//! a policy target `θ` at enforcement level `L`,
//!
//! * a **deny** policy drops the packet if **at least one** stack signature
//!   matches the target at level `L` or finer (blacklisting);
//! * an **allow** policy admits the packet only if **every** stack signature
//!   matches the target at level `L` or finer (whitelisting) — when any allow
//!   policies are present, packets that satisfy none of them are dropped.
//!
//! Hash-level targets match against the application tag rather than stack
//! signatures.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use serde::{DeError, Deserialize, Serialize, Value};

use bp_types::{AppTag, EnforcementLevel, Error, MethodSignature};

use crate::policy_index::{PolicyIndex, NO_RULE};

/// The decision a policy prescribes for matching packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Whitelist: admit only matching traffic.
    Allow,
    /// Blacklist: drop matching traffic.
    Deny,
}

impl PolicyAction {
    /// The grammar keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            PolicyAction::Allow => "allow",
            PolicyAction::Deny => "deny",
        }
    }
}

impl FromStr for PolicyAction {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "allow" => Ok(PolicyAction::Allow),
            "deny" => Ok(PolicyAction::Deny),
            other => Err(Error::PolicyParse {
                input: other.to_string(),
                detail: "expected allow or deny".to_string(),
            }),
        }
    }
}

impl fmt::Display for PolicyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Policy {
    action: PolicyAction,
    level: EnforcementLevel,
    target: String,
}

impl Policy {
    /// Create a policy from its parts.
    pub fn new(action: PolicyAction, level: EnforcementLevel, target: impl Into<String>) -> Self {
        Policy {
            action,
            level,
            target: target.into(),
        }
    }

    /// Convenience constructor for a deny rule.
    pub fn deny(level: EnforcementLevel, target: impl Into<String>) -> Self {
        Policy::new(PolicyAction::Deny, level, target)
    }

    /// Convenience constructor for an allow (whitelist) rule.
    pub fn allow(level: EnforcementLevel, target: impl Into<String>) -> Self {
        Policy::new(PolicyAction::Allow, level, target)
    }

    /// The policy action.
    pub fn action(&self) -> PolicyAction {
        self.action
    }

    /// The enforcement level.
    pub fn level(&self) -> EnforcementLevel {
        self.level
    }

    /// The target string (library prefix, class path, method descriptor or
    /// truncated/full app hash depending on the level).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Whether `signature` matches this policy's target at the policy's level
    /// or finer.
    pub fn matches_signature(&self, signature: &MethodSignature) -> bool {
        match self.level {
            EnforcementLevel::Hash => false,
            level => signature.matches_target(level, &self.target),
        }
    }

    /// Whether `tag` matches a hash-level policy (the target may be the
    /// 16-hex-character truncated tag or the full 32-character apk hash).
    pub fn matches_tag(&self, tag: AppTag) -> bool {
        if self.level != EnforcementLevel::Hash {
            return false;
        }
        let t = self.target.to_ascii_lowercase();
        let tag_hex = tag.to_hex();
        t == tag_hex || t.starts_with(&tag_hex)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{[{}][{}][\"{}\"]}}",
            self.action, self.level, self.target
        )
    }
}

impl FromStr for Policy {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_error = |detail: &str| Error::PolicyParse {
            input: s.to_string(),
            detail: detail.to_string(),
        };
        let trimmed = s.trim();
        let body = trimmed
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| parse_error("policy must be enclosed in braces"))?;

        let mut fields = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let open = rest.find('[').ok_or_else(|| parse_error("expected '['"))?;
            let close = rest[open..]
                .find(']')
                .map(|i| i + open)
                .ok_or_else(|| parse_error("unterminated '['"))?;
            fields.push(rest[open + 1..close].trim().to_string());
            rest = rest[close + 1..].trim();
        }
        if fields.len() != 3 {
            return Err(parse_error("expected exactly three bracketed fields"));
        }
        let action: PolicyAction = fields[0].parse()?;
        let level: EnforcementLevel = fields[1].parse()?;
        let raw_target = fields[2].trim();
        let target = raw_target
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .unwrap_or(raw_target)
            .to_string();
        if target.is_empty() {
            return Err(parse_error("empty target"));
        }
        Ok(Policy {
            action,
            level,
            target,
        })
    }
}

/// The outcome of evaluating a packet's context against a policy set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The packet conforms to policy and may proceed.
    Allow,
    /// The packet violates policy and must be dropped.
    Deny {
        /// The policy that caused the drop (absent for whitelist-miss drops).
        policy: Option<Policy>,
        /// Human-readable explanation.
        reason: String,
    },
}

impl Decision {
    /// True if the decision is to allow the packet.
    pub fn is_allow(&self) -> bool {
        matches!(self, Decision::Allow)
    }

    /// Construct a deny decision caused by `policy`.
    pub fn deny_by(policy: &Policy, reason: impl Into<String>) -> Self {
        Decision::Deny {
            policy: Some(policy.clone()),
            reason: reason.into(),
        }
    }
}

/// Copy-on-append storage: an `Arc`-shared base chunk plus a small owned
/// tail.  Cloning shares the base, so staging a transaction against a
/// 100k-policy set copies pointers, not policies — the property the control
/// plane's incremental commit path is built on.
#[derive(Debug, Clone)]
pub(crate) struct Chunked<T> {
    base: Arc<[T]>,
    tail: Vec<T>,
}

impl<T> Default for Chunked<T> {
    fn default() -> Self {
        Chunked {
            base: Vec::new().into(),
            tail: Vec::new(),
        }
    }
}

impl<T> Chunked<T> {
    pub(crate) fn from_vec(items: Vec<T>) -> Self {
        Chunked {
            base: items.into(),
            tail: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.base.len() + self.tail.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.base.is_empty() && self.tail.is_empty()
    }

    pub(crate) fn get(&self, index: usize) -> Option<&T> {
        if index < self.base.len() {
            self.base.get(index)
        } else {
            self.tail.get(index - self.base.len())
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.base.iter().chain(self.tail.iter())
    }

    /// Iterate items from position `start` on.
    pub(crate) fn iter_from(&self, start: usize) -> impl Iterator<Item = &T> {
        let b = start.min(self.base.len());
        let t = (start - b).min(self.tail.len());
        self.base[b..].iter().chain(self.tail[t..].iter())
    }

    pub(crate) fn push(&mut self, item: T) {
        self.tail.push(item);
    }

    /// A copy with the tail folded into the shared base (so future clones
    /// share everything).
    pub(crate) fn compacted(&self) -> Self
    where
        T: Clone,
    {
        if self.tail.is_empty() {
            self.clone()
        } else {
            Chunked::from_vec(self.iter().cloned().collect())
        }
    }
}

/// An ordered collection of policies evaluated together.
///
/// Internally the set is copy-on-append (`Chunked`): cloning shares the
/// bulk of the policies, and appending stages only the new ones.  Equality,
/// serialization and iteration all observe the flat logical list, so the
/// representation is invisible to callers.
#[derive(Debug, Clone, Default)]
pub struct PolicySet {
    policies: Chunked<Policy>,
}

impl PolicySet {
    /// An empty policy set (allows everything).
    pub fn new() -> Self {
        PolicySet::default()
    }

    /// Build a set from a list of policies.
    pub fn from_policies(policies: Vec<Policy>) -> Self {
        PolicySet {
            policies: Chunked::from_vec(policies),
        }
    }

    /// Parse a policy file: one policy per line, `//` comments and blank lines
    /// ignored.
    ///
    /// # Examples
    ///
    /// ```
    /// use bp_core::policy::PolicySet;
    ///
    /// // Paper Snippet 1: administrators write `{[action][level][target]}`.
    /// let set = PolicySet::parse(
    ///     r#"
    ///     // Example 1: no ad-library connections.
    ///     {[deny][library]["com/flurry"]}
    ///     // Example 3: no uploads from the Dropbox task queue.
    ///     {[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;->c"]}
    ///     "#,
    /// )?;
    /// assert_eq!(set.len(), 2);
    /// assert!(!set.has_whitelist());
    /// # Ok::<(), bp_types::Error>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first parse error encountered.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let mut policies = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            policies.push(line.parse()?);
        }
        Ok(PolicySet::from_policies(policies))
    }

    /// Add a policy.
    pub fn push(&mut self, policy: Policy) {
        self.policies.push(policy);
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if the set has no policies.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Iterate over the policies.
    pub fn iter(&self) -> impl Iterator<Item = &Policy> {
        self.policies.iter()
    }

    /// The policy at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Policy> {
        self.policies.get(index)
    }

    /// If `self` equals `base` plus zero or more appended policies, return
    /// the split position (`base.len()`); otherwise `None`.
    ///
    /// The fast path recognizes sets staged by cloning `base` and pushing —
    /// shared base chunk, extended tail — in O(tail); the fallback compares
    /// the first `base.len()` policies logically.
    pub(crate) fn append_split(&self, base: &PolicySet) -> Option<usize> {
        let base_len = base.len();
        if self.len() < base_len {
            return None;
        }
        let shared = Arc::ptr_eq(&self.policies.base, &base.policies.base)
            && self.policies.tail.len() >= base.policies.tail.len()
            && self.policies.tail[..base.policies.tail.len()] == base.policies.tail[..];
        if shared || self.iter().zip(base.iter()).all(|(a, b)| a == b) {
            Some(base_len)
        } else {
            None
        }
    }

    /// A copy whose storage is one shared chunk (cheap to clone wholesale).
    pub(crate) fn compacted(&self) -> PolicySet {
        PolicySet {
            policies: self.policies.compacted(),
        }
    }

    /// Iterate policies from position `start` on.
    pub(crate) fn iter_from(&self, start: usize) -> impl Iterator<Item = &Policy> {
        self.policies.iter_from(start)
    }

    /// Whether the set contains any allow (whitelist) policies.
    pub fn has_whitelist(&self) -> bool {
        self.policies
            .iter()
            .any(|p| p.action == PolicyAction::Allow)
    }

    /// Render the set in the grammar's textual form, one policy per line.
    pub fn to_text(&self) -> String {
        self.policies
            .iter()
            .map(Policy::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Evaluate a packet's decoded context against the set.
    ///
    /// `app_tag` is the application tag from the packet header; `stack` is the
    /// decoded stack of method signatures (innermost first).
    pub fn evaluate(&self, app_tag: AppTag, stack: &[MethodSignature]) -> Decision {
        // 1. Deny rules: ∃ s matching ⇒ drop.
        for policy in self
            .policies
            .iter()
            .filter(|p| p.action == PolicyAction::Deny)
        {
            if policy.level() == EnforcementLevel::Hash {
                if policy.matches_tag(app_tag) {
                    return Decision::deny_by(policy, "application hash is blacklisted");
                }
            } else if let Some(matched) = stack.iter().find(|s| policy.matches_signature(s)) {
                return Decision::deny_by(
                    policy,
                    format!("stack frame {matched} matches denied target"),
                );
            }
        }

        // 2. Allow (whitelist) rules: if any exist, the packet must satisfy at
        //    least one of them — hash-level allow matches the tag, finer
        //    levels require every stack frame to match.
        let allows: Vec<&Policy> = self
            .policies
            .iter()
            .filter(|p| p.action == PolicyAction::Allow)
            .collect();
        if allows.is_empty() {
            return Decision::Allow;
        }
        for policy in allows {
            let satisfied = if policy.level() == EnforcementLevel::Hash {
                policy.matches_tag(app_tag)
            } else {
                !stack.is_empty() && stack.iter().all(|s| policy.matches_signature(s))
            };
            if satisfied {
                return Decision::Allow;
            }
        }
        Decision::Deny {
            policy: None,
            reason: "no whitelist policy is satisfied by every stack frame".to_string(),
        }
    }
}

impl PolicySet {
    /// Compile the set into the pre-split, pre-bucketed form the enforcement
    /// data plane evaluates (see [`CompiledPolicySet`]).
    pub fn compile(&self) -> CompiledPolicySet {
        CompiledPolicySet::compile(self)
    }
}

impl FromIterator<Policy> for PolicySet {
    fn from_iter<T: IntoIterator<Item = Policy>>(iter: T) -> Self {
        PolicySet::from_policies(iter.into_iter().collect())
    }
}

// Equality, hashing-free: logical comparison of the flat policy lists, with
// a pointer fast path for clones sharing the same base chunk.
impl PartialEq for PolicySet {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.policies.base, &other.policies.base) {
            return self.policies.tail == other.policies.tail;
        }
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for PolicySet {}

// Manual serde impls preserving the `{"policies": [...]}` shape the derived
// form produced before the storage became chunked.
impl Serialize for PolicySet {
    fn to_value(&self) -> Value {
        Value::Map(vec![(
            "policies".to_string(),
            Value::Seq(self.iter().map(Serialize::to_value).collect()),
        )])
    }
}

impl Deserialize for PolicySet {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let field = value
            .get_field("policies")
            .ok_or_else(|| DeError::missing_field("policies"))?;
        let items = field
            .as_seq()
            .ok_or_else(|| DeError::expected("array", field))?;
        let policies = items
            .iter()
            .map(Policy::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PolicySet::from_policies(policies))
    }
}

// ---------------------------------------------------------------------------
// Compiled policy evaluation
// ---------------------------------------------------------------------------

// Target normalization and prefix matching reuse the exact primitives of
// `MethodSignature::matches_target`, so compiled and interpretive verdicts
// cannot drift apart.
use bp_types::signature::{normalize_package, segment_prefix};

/// A policy target pre-split into the comparisons `evaluate` performs, so the
/// per-packet work is slice/prefix comparisons with no string building.
/// Crate-visible so [`crate::policy_index`] can lower matchers into its
/// flat tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CompiledMatcher {
    /// Hash-level rule: the target's first 16 hex characters, pre-decoded to
    /// tag bytes.  `None` when the target can never match any tag.
    Hash(Option<AppTag>),
    /// Library-level rule: pre-normalized package prefix.
    Library(String),
    /// Class-level rule: pre-normalized class path (or package prefix).
    Class(String),
    /// Method-level rule pre-split into descriptor components.  `params:
    /// None` means the target omitted the parameter list entirely; `ret:
    /// None` means it omitted the return type.
    Method {
        class_path: String,
        method: String,
        params: Option<String>,
        ret: Option<String>,
    },
    /// Fallback for method targets whose shape does not decompose cleanly:
    /// replicates the interpretive string comparisons verbatim.
    MethodVerbatim(String),
    /// A target that can never match (e.g. empty after trimming).
    Never,
}

impl CompiledMatcher {
    fn compile(level: EnforcementLevel, target: &str) -> CompiledMatcher {
        if level == EnforcementLevel::Hash {
            // `Policy::matches_tag` compares the *untrimmed* lowercased
            // target; a tag matches iff the target's first 16 characters are
            // its hex form.
            let lowered = target.to_ascii_lowercase();
            return CompiledMatcher::Hash(lowered.get(..16).and_then(AppTag::from_hex));
        }
        // `MethodSignature::matches_target` trims and rejects empty targets.
        let raw = target.trim();
        if raw.is_empty() {
            return CompiledMatcher::Never;
        }
        match level {
            EnforcementLevel::Hash => unreachable!("handled above"),
            EnforcementLevel::Library => CompiledMatcher::Library(normalize_package(raw)),
            EnforcementLevel::Class => CompiledMatcher::Class(normalize_package(raw)),
            EnforcementLevel::Method => Self::compile_method(raw),
        }
    }

    /// Split a method target of the form `L<class>;-><method>[(<params>)[<ret>]]`.
    fn compile_method(raw: &str) -> CompiledMatcher {
        let verbatim = || CompiledMatcher::MethodVerbatim(raw.to_string());
        let Some(body) = raw.strip_prefix('L') else {
            // None of the three descriptor forms can start without `L`.
            return CompiledMatcher::Never;
        };
        let Some((class_path, rest)) = body.split_once(";->") else {
            return CompiledMatcher::Never;
        };
        match rest.split_once('(') {
            None => CompiledMatcher::Method {
                class_path: class_path.to_string(),
                method: rest.to_string(),
                params: None,
                ret: None,
            },
            Some((method, after)) => {
                // The descriptor forms close the parameter list with the
                // first `)`; anything trailing is the return type.
                let Some((params, ret)) = after.split_once(')') else {
                    // `(` without `)` — defer to the verbatim comparisons.
                    return verbatim();
                };
                if params.contains('(') || params.contains(')') {
                    return verbatim();
                }
                CompiledMatcher::Method {
                    class_path: class_path.to_string(),
                    method: method.to_string(),
                    params: Some(params.to_string()),
                    ret: (!ret.is_empty()).then(|| ret.to_string()),
                }
            }
        }
    }

    /// Whether a hash-level matcher matches `tag` (tag comparisons only).
    fn matches_tag(&self, tag: AppTag) -> bool {
        matches!(self, CompiledMatcher::Hash(Some(t)) if *t == tag)
    }

    /// Whether a signature-level matcher matches `signature`.
    fn matches_signature(&self, signature: &MethodSignature) -> bool {
        match self {
            CompiledMatcher::Hash(_) | CompiledMatcher::Never => false,
            CompiledMatcher::Library(prefix) => segment_prefix(signature.package(), prefix),
            CompiledMatcher::Class(path) => class_matches(signature, path),
            CompiledMatcher::Method {
                class_path,
                method,
                params,
                ret,
            } => {
                if signature.method_name() != method
                    || !qualified_class_equals(signature, class_path)
                {
                    return false;
                }
                match (params, ret) {
                    (None, _) => true,
                    (Some(p), None) => signature.params() == p,
                    (Some(p), Some(r)) => signature.params() == p && signature.return_type() == r,
                }
            }
            CompiledMatcher::MethodVerbatim(target) => {
                signature.matches_target(EnforcementLevel::Method, target)
            }
        }
    }
}

/// `signature.qualified_class() == path`, compared piecewise so no `String`
/// is built per evaluation.
fn qualified_class_equals(signature: &MethodSignature, path: &str) -> bool {
    let package = signature.package();
    let class = signature.class_name();
    if package.is_empty() {
        return class == path;
    }
    path.len() == package.len() + 1 + class.len()
        && path.as_bytes()[package.len()] == b'/'
        && path.starts_with(package)
        && path.ends_with(class)
}

/// Class-level matching: `qc == t || segment_prefix(qc, t)` over the virtual
/// qualified class path, without materializing it.
fn class_matches(signature: &MethodSignature, target: &str) -> bool {
    let package = signature.package();
    let class = signature.class_name();
    if target.is_empty() {
        // `qc == ""` requires both parts empty; segment_prefix rejects "".
        return package.is_empty() && class.is_empty();
    }
    if qualified_class_equals(signature, target) {
        return true;
    }
    if package.is_empty() {
        // qc == class, which contains no `/`: only exact equality matches.
        return false;
    }
    // A strict segment prefix of `package/Class` must end inside the package
    // part (the class name contains no further `/` boundary).
    if target.len() < package.len() {
        return package.starts_with(target) && package.as_bytes()[target.len()] == b'/';
    }
    target.len() == package.len() && package == target
}

/// A compiled rule kept in policy order: the pre-split target plus the two
/// classification bits evaluation branches on.  The rule's position *is* the
/// policy index, so no per-rule attribution field is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LinearRule {
    action: PolicyAction,
    /// Hash-level rules match the app tag; all other levels match frames.
    tag_level: bool,
    matcher: CompiledMatcher,
}

impl LinearRule {
    fn compile(policy: &Policy) -> LinearRule {
        LinearRule {
            action: policy.action(),
            tag_level: policy.level() == EnforcementLevel::Hash,
            matcher: CompiledMatcher::compile(policy.level(), policy.target()),
        }
    }
}

/// The verdict of the compiled evaluator, free of allocation: policies and
/// frames are referenced by index and only formatted when a drop is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledVerdict {
    /// The packet conforms to policy.
    Allow,
    /// The packet violates policy.
    Deny {
        /// Index of the violated policy in the originating set (`None` for
        /// whitelist-miss denials).
        policy: Option<usize>,
        /// Index of the matching stack frame, when a frame triggered the
        /// denial.
        frame: Option<usize>,
    },
}

impl CompiledVerdict {
    /// True if the verdict allows the packet.
    pub fn is_allow(self) -> bool {
        matches!(self, CompiledVerdict::Allow)
    }
}

/// The compiled, evaluation-ready form of a [`PolicySet`].
///
/// Compilation pre-splits every target (normalized package prefix, class
/// path, descriptor components, decoded tag bytes) and lowers the rule list
/// into the flat match-action tables of the private `policy_index` module: an
/// open-addressed tag table for hash-level rules and a hash-accelerated
/// prefix table (plus method arena) for stack-level rules.  Per-packet cost
/// is therefore a function of the packet's stack depth, not of the rule
/// count — the curve stays flat from 3 to 100k rules.
///
/// Deny evaluation checks tag-level rules before stack-level rules (each in
/// policy order); since any matching deny rule drops the packet, this only
/// affects which policy a drop is *attributed* to when several match, not
/// the decision itself.  The pre-table linear scan is retained as
/// [`CompiledPolicySet::evaluate_frames_linear`], an equivalence oracle the
/// property tests drive against the indexed path.
///
/// Compilation is incremental where possible: when a new set extends a
/// previously compiled one (the common control-plane delta), the compiled
/// matchers and index rows of the unchanged prefix are reused rather than
/// recompiled (the private `extend_compile` path).
///
/// # Examples
///
/// ```
/// use bp_core::policy::{Policy, PolicySet};
/// use bp_types::{ApkHash, EnforcementLevel};
///
/// let set = PolicySet::from_policies(vec![Policy::deny(
///     EnforcementLevel::Library,
///     "com/flurry",
/// )]);
/// let compiled = set.compile();
/// let stack = vec!["Lcom/flurry/sdk/Agent;->report()V".parse().unwrap()];
/// let tag = ApkHash::digest(b"app").tag();
/// assert!(!compiled.evaluate(tag, &stack).is_allow());
/// ```
#[derive(Debug, Clone)]
pub struct CompiledPolicySet {
    /// The original policies, for attribution and reporting.
    policies: PolicySet,
    /// One compiled rule per policy, same position: the equivalence oracle
    /// and the linear fallback for inputs outside the index's assumptions.
    rules: Chunked<LinearRule>,
    /// The flat match-action tables the hot path evaluates.
    index: PolicyIndex,
    /// Rule count at the last full (non-incremental) build.
    base_len: usize,
    /// Rules reused from the previous generation by the last
    /// [`CompiledPolicySet::extend_compile`] (0 after a full build).
    reused: usize,
}

// Compilation is deterministic in the policy list, so logical equality of
// the policies is equality of the compiled sets (the index layout may differ
// between full and incremental builds without observable effect).
impl PartialEq for CompiledPolicySet {
    fn eq(&self, other: &Self) -> bool {
        self.policies == other.policies
    }
}

impl Eq for CompiledPolicySet {}

impl CompiledPolicySet {
    /// Compile `set` from scratch (see the type-level documentation).
    pub fn compile(set: &PolicySet) -> Self {
        assert!(
            set.len() < u32::MAX as usize,
            "policy set too large to index"
        );
        let policies = set.compacted();
        let rules: Vec<LinearRule> = policies.iter().map(LinearRule::compile).collect();
        let index = PolicyIndex::build(
            rules
                .iter()
                .enumerate()
                .map(|(i, r)| (i as u32, r.action, &r.matcher)),
        );
        let base_len = rules.len();
        CompiledPolicySet {
            policies,
            rules: Chunked::from_vec(rules),
            index,
            base_len,
            reused: 0,
        }
    }

    /// Compile `set` by extending `prev`'s tables, given that `set` equals
    /// `prev`'s policies plus the tail from position `split` on (as
    /// established by [`PolicySet::append_split`]).  Only the appended
    /// policies are compiled; everything else is reused structurally.
    ///
    /// Returns `None` — caller should fall back to a full
    /// [`CompiledPolicySet::compile`] — when the accumulated delta since the
    /// last full build grows past an eighth of its size (keeping lookup
    /// structures compact and re-amortizing the shared base).
    pub(crate) fn extend_compile(
        prev: &CompiledPolicySet,
        set: &PolicySet,
        split: usize,
    ) -> Option<Self> {
        debug_assert_eq!(split, prev.policies.len());
        if set.len() >= u32::MAX as usize {
            return None;
        }
        let accumulated = set.len() - prev.base_len;
        if accumulated > 256.max(prev.base_len / 8) {
            return None;
        }
        let appended: Vec<LinearRule> = set.iter_from(split).map(LinearRule::compile).collect();
        let index = prev.index.extend(
            appended
                .iter()
                .enumerate()
                .map(|(k, r)| ((split + k) as u32, r.action, &r.matcher)),
        );
        let mut rules = prev.rules.clone();
        for rule in appended {
            rules.push(rule);
        }
        Some(CompiledPolicySet {
            policies: set.clone(),
            rules,
            index,
            base_len: prev.base_len,
            reused: split,
        })
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether the set contains any allow (whitelist) rules.
    pub fn has_whitelist(&self) -> bool {
        self.index.allow_rule_count() > 0
    }

    /// The original policy at `index` (as reported by [`CompiledVerdict`]).
    pub fn policy(&self, index: usize) -> Option<&Policy> {
        self.policies.get(index)
    }

    /// Number of compiled rules carried over from the previous generation by
    /// the incremental compile path; 0 after a full build.  Exposed so the
    /// control plane (and its regression tests) can observe that a delta
    /// commit did not rebuild unchanged index structure.
    pub fn reused_rule_count(&self) -> usize {
        self.reused
    }

    /// Evaluate against stack frames provided by index — the allocation-free
    /// core shared by the slice and enforcer entry points.  `frame(i)` must
    /// return the `i`-th innermost frame for `i < frame_count`.
    ///
    /// This is the indexed path: one tag-table probe plus
    /// `O(stack depth × package segments × log keys)` prefix probes,
    /// independent of the rule count.  Equivalent — verdict *and*
    /// attribution — to [`CompiledPolicySet::evaluate_frames_linear`].
    pub fn evaluate_frames<'s, F>(
        &self,
        app_tag: AppTag,
        frame_count: usize,
        frame: F,
    ) -> CompiledVerdict
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        // 1. Deny rules: ∃ matching rule ⇒ drop.  Tag rules attribute first;
        //    stack attribution is (minimum matching rule, its first frame),
        //    identical to the linear rule-outer/frame-inner scan order.
        let (tag_deny, tag_allow) = self.index.tag_lookup(app_tag.as_u64());
        if tag_deny != NO_RULE {
            return CompiledVerdict::Deny {
                policy: Some(tag_deny as usize),
                frame: None,
            };
        }
        let mut best = NO_RULE;
        let mut best_frame = 0usize;
        for i in 0..frame_count {
            let m = self.index.frame_deny_min(frame(i));
            if m < best {
                best = m;
                best_frame = i;
            }
        }
        if best != NO_RULE {
            return CompiledVerdict::Deny {
                policy: Some(best as usize),
                frame: Some(best_frame),
            };
        }

        // 2. Allow (whitelist) rules: if any exist, at least one must be
        //    satisfied — tag rules by the tag, stack rules by *every* frame.
        if self.index.allow_rule_count() == 0 {
            return CompiledVerdict::Allow;
        }
        if tag_allow {
            return CompiledVerdict::Allow;
        }
        if frame_count > 0 {
            // The whitelist fold assumes class names contain no `/` (true of
            // every parsed signature); hand-built outliers take the linear
            // allow pass so the indexed path never diverges from the oracle.
            let allowed = if PolicyIndex::frames_need_linear_allow(frame_count, &frame) {
                self.linear_stack_allowed(frame_count, &frame)
            } else {
                self.index.stack_allowed(frame_count, &frame)
            };
            if allowed {
                return CompiledVerdict::Allow;
            }
        }
        CompiledVerdict::Deny {
            policy: None,
            frame: None,
        }
    }

    /// The pre-index linear scan over the rule list, retained verbatim as an
    /// equivalence oracle: same verdict and same policy/frame attribution as
    /// [`CompiledPolicySet::evaluate_frames`] on every input.
    pub fn evaluate_frames_linear<'s, F>(
        &self,
        app_tag: AppTag,
        frame_count: usize,
        frame: F,
    ) -> CompiledVerdict
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        // 1. Deny rules: ∃ matching rule ⇒ drop (tag bucket first).
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.action == PolicyAction::Deny
                && rule.tag_level
                && rule.matcher.matches_tag(app_tag)
            {
                return CompiledVerdict::Deny {
                    policy: Some(i),
                    frame: None,
                };
            }
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.action == PolicyAction::Deny && !rule.tag_level {
                if let Some(hit) =
                    (0..frame_count).find(|&f| rule.matcher.matches_signature(frame(f)))
                {
                    return CompiledVerdict::Deny {
                        policy: Some(i),
                        frame: Some(hit),
                    };
                }
            }
        }

        // 2. Allow (whitelist) rules.
        if !self.rules.iter().any(|r| r.action == PolicyAction::Allow) {
            return CompiledVerdict::Allow;
        }
        if self.rules.iter().any(|rule| {
            rule.action == PolicyAction::Allow
                && rule.tag_level
                && rule.matcher.matches_tag(app_tag)
        }) {
            return CompiledVerdict::Allow;
        }
        if frame_count > 0 && self.linear_stack_allowed(frame_count, &frame) {
            return CompiledVerdict::Allow;
        }
        CompiledVerdict::Deny {
            policy: None,
            frame: None,
        }
    }

    /// Linear form of the whitelist stack pass: some stack-level allow rule
    /// is matched by every frame.
    fn linear_stack_allowed<'s, F>(&self, frame_count: usize, frame: &F) -> bool
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        self.rules.iter().any(|rule| {
            rule.action == PolicyAction::Allow
                && !rule.tag_level
                && (0..frame_count).all(|f| rule.matcher.matches_signature(frame(f)))
        })
    }

    /// Evaluate a decoded stack slice; same semantics as
    /// [`PolicySet::evaluate`].
    pub fn evaluate(&self, app_tag: AppTag, stack: &[MethodSignature]) -> Decision {
        let verdict = self.evaluate_frames(app_tag, stack.len(), |i| &stack[i]);
        self.verdict_to_decision(verdict, |i| &stack[i])
    }

    /// Render a [`CompiledVerdict`] into the interpretive [`Decision`] form,
    /// reproducing the same policy attribution and reason strings.
    pub fn verdict_to_decision<'s, F>(&self, verdict: CompiledVerdict, frame: F) -> Decision
    where
        F: Fn(usize) -> &'s MethodSignature,
    {
        match verdict {
            CompiledVerdict::Allow => Decision::Allow,
            CompiledVerdict::Deny {
                policy: Some(index),
                frame: hit,
            } => {
                let policy = self
                    .policies
                    .get(index)
                    .expect("verdict policy index in range");
                let reason = match hit {
                    Some(i) => format!("stack frame {} matches denied target", frame(i)),
                    None => "application hash is blacklisted".to_string(),
                };
                Decision::deny_by(policy, reason)
            }
            CompiledVerdict::Deny { policy: None, .. } => Decision::Deny {
                policy: None,
                reason: "no whitelist policy is satisfied by every stack frame".to_string(),
            },
        }
    }
}

impl From<&PolicySet> for CompiledPolicySet {
    fn from(set: &PolicySet) -> Self {
        CompiledPolicySet::compile(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::ApkHash;

    fn sig(s: &str) -> MethodSignature {
        s.parse().unwrap()
    }

    fn flurry_stack() -> Vec<MethodSignature> {
        vec![
            sig("Ljava/net/Socket;->connect(Ljava/net/SocketAddress;)V"),
            sig("Lcom/flurry/sdk/Transport;->send(Ljava/lang/String;)V"),
            sig("Lcom/flurry/sdk/Agent;->onSessionStart(Landroid/content/Context;)V"),
            sig("Lcom/example/app/MainActivity;->onResume()V"),
        ]
    }

    fn dropbox_upload_stack() -> Vec<MethodSignature> {
        vec![
            sig("Ljava/net/Socket;->connect(Ljava/net/SocketAddress;)V"),
            sig("Lcom/dropbox/core/DbxRequestUtil;->doPut(Ljava/lang/String;)Lcom/dropbox/core/http/HttpRequestor$Response;"),
            sig("Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"),
            sig("Lcom/dropbox/android/BrowserActivity;->onUploadSelected()V"),
        ]
    }

    fn tag(seed: &[u8]) -> AppTag {
        ApkHash::digest(seed).tag()
    }

    #[test]
    fn parse_paper_examples() {
        // Example 1: library level.
        let p: Policy = r#"{[deny][library]["com/flurry"]}"#.parse().unwrap();
        assert_eq!(p.action(), PolicyAction::Deny);
        assert_eq!(p.level(), EnforcementLevel::Library);
        assert_eq!(p.target(), "com/flurry");

        // Example 2: class level.
        let p: Policy = r#"{[deny][class]["com/google/gms"]}"#.parse().unwrap();
        assert_eq!(p.level(), EnforcementLevel::Class);

        // Example 3: method level (Dropbox UploadTask).
        let p: Policy = r#"{[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult"]}"#
            .parse()
            .unwrap();
        assert_eq!(p.level(), EnforcementLevel::Method);

        // Example 4: hash-level whitelist.
        let p: Policy = r#"{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}"#
            .parse()
            .unwrap();
        assert_eq!(p.action(), PolicyAction::Allow);
        assert_eq!(p.level(), EnforcementLevel::Hash);
    }

    #[test]
    fn parse_rejects_malformed_policies() {
        for bad in [
            "",
            "deny library com/flurry",
            "{[deny][library]}",
            "{[deny][library][\"\"]}",
            "{[maybe][library][\"x\"]}",
            "{[deny][package][\"x\"]}",
            "{[deny][library][\"x\"]",
            "[deny][library][\"x\"]",
        ] {
            assert!(bad.parse::<Policy>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let policies = [
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
            Policy::allow(EnforcementLevel::Hash, "da6880ab1f991974"),
            Policy::deny(
                EnforcementLevel::Method,
                "Lcom/dropbox/android/taskqueue/UploadTask;->c",
            ),
        ];
        for p in policies {
            let reparsed: Policy = p.to_string().parse().unwrap();
            assert_eq!(reparsed, p);
        }
    }

    #[test]
    fn policy_set_parse_skips_comments_and_blank_lines() {
        let text = r#"
            // Example 1: prevent ad library connections
            {[deny][library]["com/flurry"]}

            // whitelist the business app
            {[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}
        "#;
        let set = PolicySet::parse(text).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.has_whitelist());
        let rendered = set.to_text();
        assert!(rendered.contains("com/flurry"));
    }

    #[test]
    fn deny_library_blocks_flurry_but_not_dropbox() {
        let set =
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Library, "com/flurry")]);
        assert!(!set.evaluate(tag(b"app"), &flurry_stack()).is_allow());
        assert!(set
            .evaluate(tag(b"app"), &dropbox_upload_stack())
            .is_allow());
    }

    #[test]
    fn deny_method_blocks_upload_but_not_download() {
        let set = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Method,
            "Lcom/dropbox/android/taskqueue/UploadTask;->c",
        )]);
        assert!(!set
            .evaluate(tag(b"dropbox"), &dropbox_upload_stack())
            .is_allow());

        let download_stack = vec![
            sig("Ljava/net/Socket;->connect(Ljava/net/SocketAddress;)V"),
            sig("Lcom/dropbox/android/taskqueue/DownloadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"),
        ];
        assert!(set.evaluate(tag(b"dropbox"), &download_stack).is_allow());
    }

    #[test]
    fn deny_class_blocks_whole_package_tree() {
        let set = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Class,
            "com/google/gms",
        )]);
        let stack = vec![sig(
            "Lcom/google/gms/analytics/Tracker;->send(Ljava/util/Map;)V",
        )];
        assert!(!set.evaluate(tag(b"x"), &stack).is_allow());
    }

    #[test]
    fn hash_policies_match_the_app_tag() {
        let the_tag = tag(b"corporate-app");
        let deny_set =
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Hash, the_tag.to_hex())]);
        assert!(!deny_set
            .evaluate(the_tag, &dropbox_upload_stack())
            .is_allow());
        assert!(deny_set
            .evaluate(tag(b"other-app"), &dropbox_upload_stack())
            .is_allow());
    }

    #[test]
    fn whitelist_requires_all_frames_to_match() {
        // Paper semantics: allow iff ∀ s match the target at level ≥ L.
        let set =
            PolicySet::from_policies(vec![Policy::allow(EnforcementLevel::Library, "com/flurry")]);
        // Mixed stack (app + flurry frames): not all frames match ⇒ deny.
        assert!(!set.evaluate(tag(b"a"), &flurry_stack()).is_allow());
        // Pure flurry stack ⇒ allow.
        let pure: Vec<MethodSignature> = flurry_stack()
            .into_iter()
            .filter(|s| s.package().starts_with("com/flurry"))
            .collect();
        assert!(set.evaluate(tag(b"a"), &pure).is_allow());
        // Empty stack can never satisfy a signature whitelist.
        assert!(!set.evaluate(tag(b"a"), &[]).is_allow());
    }

    #[test]
    fn hash_whitelist_admits_only_that_app() {
        let corporate = tag(b"corporate");
        let set = PolicySet::from_policies(vec![Policy::allow(
            EnforcementLevel::Hash,
            corporate.to_hex(),
        )]);
        assert!(set.evaluate(corporate, &dropbox_upload_stack()).is_allow());
        assert!(!set
            .evaluate(tag(b"game"), &dropbox_upload_stack())
            .is_allow());
    }

    #[test]
    fn deny_takes_precedence_over_whitelist() {
        let corporate = tag(b"corporate");
        let set = PolicySet::from_policies(vec![
            Policy::allow(EnforcementLevel::Hash, corporate.to_hex()),
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
        ]);
        assert!(!set.evaluate(corporate, &flurry_stack()).is_allow());
        assert!(set.evaluate(corporate, &dropbox_upload_stack()).is_allow());
    }

    #[test]
    fn empty_set_allows_everything() {
        let set = PolicySet::new();
        assert!(set.is_empty());
        assert!(set.evaluate(tag(b"x"), &flurry_stack()).is_allow());
        assert!(set.evaluate(tag(b"x"), &[]).is_allow());
    }

    #[test]
    fn decision_reports_the_matching_policy() {
        let set =
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Library, "com/flurry")]);
        match set.evaluate(tag(b"x"), &flurry_stack()) {
            Decision::Deny {
                policy: Some(policy),
                reason,
            } => {
                assert_eq!(policy.target(), "com/flurry");
                assert!(reason.contains("com/flurry"));
            }
            other => panic!("expected deny with policy, got {other:?}"),
        }
    }

    #[test]
    fn from_iterator_collects() {
        let set: PolicySet = vec![Policy::deny(EnforcementLevel::Library, "com/mopub")]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 1);
    }

    /// Exhaustive scenario sweep: compiled evaluation must agree with the
    /// interpretive evaluation on every decision.
    #[test]
    fn compiled_set_agrees_with_interpretive_evaluation() {
        let corporate = tag(b"corporate");
        let sets = vec![
            PolicySet::new(),
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Library, "com/flurry")]),
            PolicySet::from_policies(vec![Policy::deny(
                EnforcementLevel::Method,
                "Lcom/dropbox/android/taskqueue/UploadTask;->c",
            )]),
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Class, "com/google/gms")]),
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Hash, corporate.to_hex())]),
            PolicySet::from_policies(vec![Policy::allow(EnforcementLevel::Library, "com/flurry")]),
            PolicySet::from_policies(vec![Policy::allow(EnforcementLevel::Hash, corporate.to_hex())]),
            PolicySet::from_policies(vec![
                Policy::allow(EnforcementLevel::Hash, corporate.to_hex()),
                Policy::deny(EnforcementLevel::Library, "com/flurry"),
            ]),
            PolicySet::from_policies(vec![
                Policy::deny(EnforcementLevel::Method, "Lcom/dropbox/android/taskqueue/UploadTask;->c()"),
                Policy::deny(
                    EnforcementLevel::Method,
                    "Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;",
                ),
            ]),
        ];
        let stacks: Vec<Vec<MethodSignature>> = vec![
            vec![],
            flurry_stack(),
            dropbox_upload_stack(),
            vec![sig(
                "Lcom/google/gms/analytics/Tracker;->send(Ljava/util/Map;)V",
            )],
            flurry_stack()
                .into_iter()
                .filter(|s| s.package().starts_with("com/flurry"))
                .collect(),
        ];
        for set in &sets {
            let compiled = set.compile();
            assert_eq!(compiled.len(), set.len());
            assert_eq!(compiled.has_whitelist(), set.has_whitelist());
            for stack in &stacks {
                for t in [corporate, tag(b"other")] {
                    let interpreted = set.evaluate(t, stack);
                    let fast = compiled.evaluate(t, stack);
                    assert_eq!(
                        interpreted.is_allow(),
                        fast.is_allow(),
                        "set {:?} stack {:?}",
                        set.to_text(),
                        stack
                    );
                }
            }
        }
    }

    /// With a single policy, the compiled path must also reproduce the exact
    /// attribution and reason strings.
    #[test]
    fn compiled_set_reproduces_attribution_for_single_policies() {
        let the_tag = tag(b"corporate");
        let cases = vec![
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
            Policy::deny(EnforcementLevel::Class, "com/flurry/sdk"),
            Policy::deny(EnforcementLevel::Method, "Lcom/flurry/sdk/Transport;->send"),
            Policy::deny(EnforcementLevel::Hash, the_tag.to_hex()),
            Policy::allow(EnforcementLevel::Library, "com/dropbox"),
        ];
        for policy in cases {
            let set = PolicySet::from_policies(vec![policy]);
            let compiled = set.compile();
            for stack in [flurry_stack(), dropbox_upload_stack(), vec![]] {
                assert_eq!(
                    set.evaluate(the_tag, &stack),
                    compiled.evaluate(the_tag, &stack),
                    "set {}",
                    set.to_text()
                );
            }
        }
    }

    #[test]
    fn compiled_hash_rules_match_full_and_truncated_hashes() {
        let full = ApkHash::digest(b"corp-apk");
        let the_tag = full.tag();
        for target in [
            the_tag.to_hex(),
            full.to_hex(),
            full.to_hex().to_uppercase(),
        ] {
            let set = PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Hash, target)]);
            let compiled = set.compile();
            assert!(!compiled.evaluate(the_tag, &[]).is_allow());
            assert!(compiled.evaluate(tag(b"other"), &[]).is_allow());
        }
        // Non-hex and too-short targets never match (same as interpretive).
        for target in ["zz", "da68", ""] {
            let set = PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Hash, target)]);
            assert!(set.compile().evaluate(the_tag, &[]).is_allow());
            assert!(set.evaluate(the_tag, &[]).is_allow());
        }
    }

    #[test]
    fn compiled_deny_checks_tag_rules_before_stack_rules() {
        let the_tag = tag(b"app");
        let set = PolicySet::from_policies(vec![
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
            Policy::deny(EnforcementLevel::Hash, the_tag.to_hex()),
        ]);
        // Both rules match: the interpretive path reports the library rule
        // (insertion order), the compiled path the hash rule (tag bucket
        // first) — the decision itself is identical.
        let interpreted = set.evaluate(the_tag, &flurry_stack());
        let fast = set.compile().evaluate(the_tag, &flurry_stack());
        assert!(!interpreted.is_allow());
        assert!(!fast.is_allow());
        match fast {
            Decision::Deny {
                policy: Some(policy),
                ..
            } => {
                assert_eq!(policy.level(), EnforcementLevel::Hash);
            }
            other => panic!("expected attributed deny, got {other:?}"),
        }
    }

    #[test]
    fn compiled_verdict_exposes_policy_and_frame_indexes() {
        let set = PolicySet::from_policies(vec![
            Policy::deny(EnforcementLevel::Library, "com/none"),
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
        ]);
        let compiled = set.compile();
        let stack = flurry_stack();
        let verdict = compiled.evaluate_frames(tag(b"x"), stack.len(), |i| &stack[i]);
        match verdict {
            CompiledVerdict::Deny {
                policy: Some(1),
                frame: Some(frame),
            } => {
                assert!(stack[frame].package().starts_with("com/flurry"));
            }
            other => panic!("expected deny by policy 1, got {other:?}"),
        }
        assert!(!verdict.is_allow());
        assert_eq!(compiled.policy(1).unwrap().target(), "com/flurry");
    }
}
