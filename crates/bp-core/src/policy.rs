//! The policy grammar and evaluation semantics.
//!
//! Policies follow the grammar of the paper's Snippet 1:
//!
//! ```text
//! <POLICY> ::= {[<ACTION>] [<LEVEL>] [<TARGET>]}
//! <ACTION> ::= (allow | deny)
//! <LEVEL>  ::= (hash | library | class | method)
//! ```
//!
//! Evaluation follows §IV-B: for the stack signatures `s ∈ H` of a packet and
//! a policy target `θ` at enforcement level `L`,
//!
//! * a **deny** policy drops the packet if **at least one** stack signature
//!   matches the target at level `L` or finer (blacklisting);
//! * an **allow** policy admits the packet only if **every** stack signature
//!   matches the target at level `L` or finer (whitelisting) — when any allow
//!   policies are present, packets that satisfy none of them are dropped.
//!
//! Hash-level targets match against the application tag rather than stack
//! signatures.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use bp_types::{AppTag, EnforcementLevel, Error, MethodSignature};

/// The decision a policy prescribes for matching packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Whitelist: admit only matching traffic.
    Allow,
    /// Blacklist: drop matching traffic.
    Deny,
}

impl PolicyAction {
    /// The grammar keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            PolicyAction::Allow => "allow",
            PolicyAction::Deny => "deny",
        }
    }
}

impl FromStr for PolicyAction {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "allow" => Ok(PolicyAction::Allow),
            "deny" => Ok(PolicyAction::Deny),
            other => Err(Error::PolicyParse {
                input: other.to_string(),
                detail: "expected allow or deny".to_string(),
            }),
        }
    }
}

impl fmt::Display for PolicyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Policy {
    action: PolicyAction,
    level: EnforcementLevel,
    target: String,
}

impl Policy {
    /// Create a policy from its parts.
    pub fn new(action: PolicyAction, level: EnforcementLevel, target: impl Into<String>) -> Self {
        Policy { action, level, target: target.into() }
    }

    /// Convenience constructor for a deny rule.
    pub fn deny(level: EnforcementLevel, target: impl Into<String>) -> Self {
        Policy::new(PolicyAction::Deny, level, target)
    }

    /// Convenience constructor for an allow (whitelist) rule.
    pub fn allow(level: EnforcementLevel, target: impl Into<String>) -> Self {
        Policy::new(PolicyAction::Allow, level, target)
    }

    /// The policy action.
    pub fn action(&self) -> PolicyAction {
        self.action
    }

    /// The enforcement level.
    pub fn level(&self) -> EnforcementLevel {
        self.level
    }

    /// The target string (library prefix, class path, method descriptor or
    /// truncated/full app hash depending on the level).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Whether `signature` matches this policy's target at the policy's level
    /// or finer.
    pub fn matches_signature(&self, signature: &MethodSignature) -> bool {
        match self.level {
            EnforcementLevel::Hash => false,
            level => signature.matches_target(level, &self.target),
        }
    }

    /// Whether `tag` matches a hash-level policy (the target may be the
    /// 16-hex-character truncated tag or the full 32-character apk hash).
    pub fn matches_tag(&self, tag: AppTag) -> bool {
        if self.level != EnforcementLevel::Hash {
            return false;
        }
        let t = self.target.to_ascii_lowercase();
        let tag_hex = tag.to_hex();
        t == tag_hex || t.starts_with(&tag_hex)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{[{}][{}][\"{}\"]}}", self.action, self.level, self.target)
    }
}

impl FromStr for Policy {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_error = |detail: &str| Error::PolicyParse {
            input: s.to_string(),
            detail: detail.to_string(),
        };
        let trimmed = s.trim();
        let body = trimmed
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| parse_error("policy must be enclosed in braces"))?;

        let mut fields = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let open = rest.find('[').ok_or_else(|| parse_error("expected '['"))?;
            let close = rest[open..]
                .find(']')
                .map(|i| i + open)
                .ok_or_else(|| parse_error("unterminated '['"))?;
            fields.push(rest[open + 1..close].trim().to_string());
            rest = rest[close + 1..].trim();
        }
        if fields.len() != 3 {
            return Err(parse_error("expected exactly three bracketed fields"));
        }
        let action: PolicyAction = fields[0].parse()?;
        let level: EnforcementLevel = fields[1].parse()?;
        let raw_target = fields[2].trim();
        let target = raw_target
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .unwrap_or(raw_target)
            .to_string();
        if target.is_empty() {
            return Err(parse_error("empty target"));
        }
        Ok(Policy { action, level, target })
    }
}

/// The outcome of evaluating a packet's context against a policy set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The packet conforms to policy and may proceed.
    Allow,
    /// The packet violates policy and must be dropped.
    Deny {
        /// The policy that caused the drop (absent for whitelist-miss drops).
        policy: Option<Policy>,
        /// Human-readable explanation.
        reason: String,
    },
}

impl Decision {
    /// True if the decision is to allow the packet.
    pub fn is_allow(&self) -> bool {
        matches!(self, Decision::Allow)
    }

    /// Construct a deny decision caused by `policy`.
    pub fn deny_by(policy: &Policy, reason: impl Into<String>) -> Self {
        Decision::Deny { policy: Some(policy.clone()), reason: reason.into() }
    }
}

/// An ordered collection of policies evaluated together.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicySet {
    policies: Vec<Policy>,
}

impl PolicySet {
    /// An empty policy set (allows everything).
    pub fn new() -> Self {
        PolicySet::default()
    }

    /// Build a set from a list of policies.
    pub fn from_policies(policies: Vec<Policy>) -> Self {
        PolicySet { policies }
    }

    /// Parse a policy file: one policy per line, `//` comments and blank lines
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns the first parse error encountered.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let mut policies = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            policies.push(line.parse()?);
        }
        Ok(PolicySet { policies })
    }

    /// Add a policy.
    pub fn push(&mut self, policy: Policy) {
        self.policies.push(policy);
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if the set has no policies.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Iterate over the policies.
    pub fn iter(&self) -> impl Iterator<Item = &Policy> {
        self.policies.iter()
    }

    /// Whether the set contains any allow (whitelist) policies.
    pub fn has_whitelist(&self) -> bool {
        self.policies.iter().any(|p| p.action == PolicyAction::Allow)
    }

    /// Render the set in the grammar's textual form, one policy per line.
    pub fn to_text(&self) -> String {
        self.policies.iter().map(Policy::to_string).collect::<Vec<_>>().join("\n")
    }

    /// Evaluate a packet's decoded context against the set.
    ///
    /// `app_tag` is the application tag from the packet header; `stack` is the
    /// decoded stack of method signatures (innermost first).
    pub fn evaluate(&self, app_tag: AppTag, stack: &[MethodSignature]) -> Decision {
        // 1. Deny rules: ∃ s matching ⇒ drop.
        for policy in self.policies.iter().filter(|p| p.action == PolicyAction::Deny) {
            if policy.level() == EnforcementLevel::Hash {
                if policy.matches_tag(app_tag) {
                    return Decision::deny_by(policy, "application hash is blacklisted");
                }
            } else if let Some(matched) = stack.iter().find(|s| policy.matches_signature(s)) {
                return Decision::deny_by(
                    policy,
                    format!("stack frame {matched} matches denied target"),
                );
            }
        }

        // 2. Allow (whitelist) rules: if any exist, the packet must satisfy at
        //    least one of them — hash-level allow matches the tag, finer
        //    levels require every stack frame to match.
        let allows: Vec<&Policy> =
            self.policies.iter().filter(|p| p.action == PolicyAction::Allow).collect();
        if allows.is_empty() {
            return Decision::Allow;
        }
        for policy in allows {
            let satisfied = if policy.level() == EnforcementLevel::Hash {
                policy.matches_tag(app_tag)
            } else {
                !stack.is_empty() && stack.iter().all(|s| policy.matches_signature(s))
            };
            if satisfied {
                return Decision::Allow;
            }
        }
        Decision::Deny {
            policy: None,
            reason: "no whitelist policy is satisfied by every stack frame".to_string(),
        }
    }
}

impl FromIterator<Policy> for PolicySet {
    fn from_iter<T: IntoIterator<Item = Policy>>(iter: T) -> Self {
        PolicySet { policies: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::ApkHash;

    fn sig(s: &str) -> MethodSignature {
        s.parse().unwrap()
    }

    fn flurry_stack() -> Vec<MethodSignature> {
        vec![
            sig("Ljava/net/Socket;->connect(Ljava/net/SocketAddress;)V"),
            sig("Lcom/flurry/sdk/Transport;->send(Ljava/lang/String;)V"),
            sig("Lcom/flurry/sdk/Agent;->onSessionStart(Landroid/content/Context;)V"),
            sig("Lcom/example/app/MainActivity;->onResume()V"),
        ]
    }

    fn dropbox_upload_stack() -> Vec<MethodSignature> {
        vec![
            sig("Ljava/net/Socket;->connect(Ljava/net/SocketAddress;)V"),
            sig("Lcom/dropbox/core/DbxRequestUtil;->doPut(Ljava/lang/String;)Lcom/dropbox/core/http/HttpRequestor$Response;"),
            sig("Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"),
            sig("Lcom/dropbox/android/BrowserActivity;->onUploadSelected()V"),
        ]
    }

    fn tag(seed: &[u8]) -> AppTag {
        ApkHash::digest(seed).tag()
    }

    #[test]
    fn parse_paper_examples() {
        // Example 1: library level.
        let p: Policy = r#"{[deny][library]["com/flurry"]}"#.parse().unwrap();
        assert_eq!(p.action(), PolicyAction::Deny);
        assert_eq!(p.level(), EnforcementLevel::Library);
        assert_eq!(p.target(), "com/flurry");

        // Example 2: class level.
        let p: Policy = r#"{[deny][class]["com/google/gms"]}"#.parse().unwrap();
        assert_eq!(p.level(), EnforcementLevel::Class);

        // Example 3: method level (Dropbox UploadTask).
        let p: Policy = r#"{[deny][method]["Lcom/dropbox/android/taskqueue/UploadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult"]}"#
            .parse()
            .unwrap();
        assert_eq!(p.level(), EnforcementLevel::Method);

        // Example 4: hash-level whitelist.
        let p: Policy = r#"{[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}"#.parse().unwrap();
        assert_eq!(p.action(), PolicyAction::Allow);
        assert_eq!(p.level(), EnforcementLevel::Hash);
    }

    #[test]
    fn parse_rejects_malformed_policies() {
        for bad in [
            "",
            "deny library com/flurry",
            "{[deny][library]}",
            "{[deny][library][\"\"]}",
            "{[maybe][library][\"x\"]}",
            "{[deny][package][\"x\"]}",
            "{[deny][library][\"x\"]",
            "[deny][library][\"x\"]",
        ] {
            assert!(bad.parse::<Policy>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let policies = [
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
            Policy::allow(EnforcementLevel::Hash, "da6880ab1f991974"),
            Policy::deny(
                EnforcementLevel::Method,
                "Lcom/dropbox/android/taskqueue/UploadTask;->c",
            ),
        ];
        for p in policies {
            let reparsed: Policy = p.to_string().parse().unwrap();
            assert_eq!(reparsed, p);
        }
    }

    #[test]
    fn policy_set_parse_skips_comments_and_blank_lines() {
        let text = r#"
            // Example 1: prevent ad library connections
            {[deny][library]["com/flurry"]}

            // whitelist the business app
            {[allow][hash]["da6880ab1f9919747d39e2bd895b95a5"]}
        "#;
        let set = PolicySet::parse(text).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.has_whitelist());
        let rendered = set.to_text();
        assert!(rendered.contains("com/flurry"));
    }

    #[test]
    fn deny_library_blocks_flurry_but_not_dropbox() {
        let set = PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Library, "com/flurry")]);
        assert!(!set.evaluate(tag(b"app"), &flurry_stack()).is_allow());
        assert!(set.evaluate(tag(b"app"), &dropbox_upload_stack()).is_allow());
    }

    #[test]
    fn deny_method_blocks_upload_but_not_download() {
        let set = PolicySet::from_policies(vec![Policy::deny(
            EnforcementLevel::Method,
            "Lcom/dropbox/android/taskqueue/UploadTask;->c",
        )]);
        assert!(!set.evaluate(tag(b"dropbox"), &dropbox_upload_stack()).is_allow());

        let download_stack = vec![
            sig("Ljava/net/Socket;->connect(Ljava/net/SocketAddress;)V"),
            sig("Lcom/dropbox/android/taskqueue/DownloadTask;->c()Lcom/dropbox/hairball/taskqueue/TaskResult;"),
        ];
        assert!(set.evaluate(tag(b"dropbox"), &download_stack).is_allow());
    }

    #[test]
    fn deny_class_blocks_whole_package_tree() {
        let set = PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Class, "com/google/gms")]);
        let stack = vec![sig("Lcom/google/gms/analytics/Tracker;->send(Ljava/util/Map;)V")];
        assert!(!set.evaluate(tag(b"x"), &stack).is_allow());
    }

    #[test]
    fn hash_policies_match_the_app_tag() {
        let the_tag = tag(b"corporate-app");
        let deny_set =
            PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Hash, the_tag.to_hex())]);
        assert!(!deny_set.evaluate(the_tag, &dropbox_upload_stack()).is_allow());
        assert!(deny_set.evaluate(tag(b"other-app"), &dropbox_upload_stack()).is_allow());
    }

    #[test]
    fn whitelist_requires_all_frames_to_match() {
        // Paper semantics: allow iff ∀ s match the target at level ≥ L.
        let set = PolicySet::from_policies(vec![Policy::allow(EnforcementLevel::Library, "com/flurry")]);
        // Mixed stack (app + flurry frames): not all frames match ⇒ deny.
        assert!(!set.evaluate(tag(b"a"), &flurry_stack()).is_allow());
        // Pure flurry stack ⇒ allow.
        let pure: Vec<MethodSignature> = flurry_stack()
            .into_iter()
            .filter(|s| s.package().starts_with("com/flurry"))
            .collect();
        assert!(set.evaluate(tag(b"a"), &pure).is_allow());
        // Empty stack can never satisfy a signature whitelist.
        assert!(!set.evaluate(tag(b"a"), &[]).is_allow());
    }

    #[test]
    fn hash_whitelist_admits_only_that_app() {
        let corporate = tag(b"corporate");
        let set =
            PolicySet::from_policies(vec![Policy::allow(EnforcementLevel::Hash, corporate.to_hex())]);
        assert!(set.evaluate(corporate, &dropbox_upload_stack()).is_allow());
        assert!(!set.evaluate(tag(b"game"), &dropbox_upload_stack()).is_allow());
    }

    #[test]
    fn deny_takes_precedence_over_whitelist() {
        let corporate = tag(b"corporate");
        let set = PolicySet::from_policies(vec![
            Policy::allow(EnforcementLevel::Hash, corporate.to_hex()),
            Policy::deny(EnforcementLevel::Library, "com/flurry"),
        ]);
        assert!(!set.evaluate(corporate, &flurry_stack()).is_allow());
        assert!(set.evaluate(corporate, &dropbox_upload_stack()).is_allow());
    }

    #[test]
    fn empty_set_allows_everything() {
        let set = PolicySet::new();
        assert!(set.is_empty());
        assert!(set.evaluate(tag(b"x"), &flurry_stack()).is_allow());
        assert!(set.evaluate(tag(b"x"), &[]).is_allow());
    }

    #[test]
    fn decision_reports_the_matching_policy() {
        let set = PolicySet::from_policies(vec![Policy::deny(EnforcementLevel::Library, "com/flurry")]);
        match set.evaluate(tag(b"x"), &flurry_stack()) {
            Decision::Deny { policy: Some(policy), reason } => {
                assert_eq!(policy.target(), "com/flurry");
                assert!(reason.contains("com/flurry"));
            }
            other => panic!("expected deny with policy, got {other:?}"),
        }
    }

    #[test]
    fn from_iterator_collects() {
        let set: PolicySet =
            vec![Policy::deny(EnforcementLevel::Library, "com/mopub")].into_iter().collect();
        assert_eq!(set.len(), 1);
    }
}
