//! The Context Manager (on-device component).
//!
//! The Context Manager runs inside app processes as a hook module.  When an
//! app is loaded it parses the app's dex file(s) and builds the same
//! deterministic signature↔index mapping the Offline Analyzer produced.  After
//! a socket is connected it gathers the call stack, maps each frame to its
//! index (using source line numbers to disambiguate overloads), encodes the
//! app tag plus index list, and injects the result into the socket's
//! `IP_OPTIONS` through the capability-gated `setsockopt` path.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use std::sync::Arc;

use bp_device::hooks::{HookContext, HookOutcome, SocketConnectHook};
use bp_dex::{ApkFile, MethodTable};
use bp_netsim::kernel::KernelNetStack;
use bp_netsim::options::{IpOption, IpOptionKind, IpOptions};
use bp_types::{ApkHash, AppTag, Error};

use crate::encoding::ContextEncoding;

/// Configuration of the Context Manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextManagerConfig {
    /// Use 3-byte frame indexes even for single-dex apps (normally the wide
    /// encoding is selected automatically for multi-dex apps).
    pub force_wide_encoding: bool,
    /// Skip frames that do not resolve to an app method (framework and
    /// `java.*` frames).  Disabling this makes unresolvable frames an error.
    pub skip_unresolvable_frames: bool,
}

impl Default for ContextManagerConfig {
    fn default() -> Self {
        ContextManagerConfig {
            force_wide_encoding: false,
            skip_unresolvable_frames: true,
        }
    }
}

/// Per-app state the Context Manager keeps after app load.
#[derive(Debug, Clone)]
struct RegisteredApp {
    table: MethodTable,
    multidex: bool,
}

/// Statistics the Context Manager keeps about its own operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextManagerStats {
    /// Connect events handled.
    pub connects_handled: u64,
    /// Contexts successfully injected into `IP_OPTIONS`.
    pub contexts_injected: u64,
    /// Stack frames that could not be resolved to an app method (skipped).
    pub frames_skipped: u64,
    /// Contexts that had to be truncated to fit the options budget.
    pub contexts_truncated: u64,
    /// `setsockopt` failures (e.g. missing kernel patch).
    pub injection_failures: u64,
}

/// The Context Manager hook module.
///
/// # Examples
///
/// ```
/// use bp_core::context::ContextManager;
/// use bp_appsim::generator::CorpusGenerator;
///
/// let mut manager = ContextManager::new();
/// let apk = CorpusGenerator::dropbox().build_apk();
/// let tag = manager.register_app(&apk)?;
/// assert!(manager.is_registered(tag));
/// # Ok::<(), bp_types::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct ContextManager {
    config: ContextManagerConfig,
    apps: BTreeMap<AppTag, RegisteredApp>,
    stats: ContextManagerStats,
}

impl ContextManager {
    /// Create a Context Manager with the default configuration.
    pub fn new() -> Self {
        ContextManager::default()
    }

    /// Create a Context Manager with an explicit configuration.
    pub fn with_config(config: ContextManagerConfig) -> Self {
        ContextManager {
            config,
            apps: BTreeMap::new(),
            stats: ContextManagerStats::default(),
        }
    }

    /// Wrap a Context Manager for installation as a device hook while keeping
    /// a shared handle for statistics inspection.
    pub fn shared(self) -> Arc<Mutex<ContextManager>> {
        Arc::new(Mutex::new(self))
    }

    /// Register an app at load time: parse its dex files and build the
    /// deterministic method table.  Returns the app tag.
    ///
    /// # Errors
    ///
    /// Propagates dex parsing failures.
    pub fn register_app(&mut self, apk: &ApkFile) -> Result<AppTag, Error> {
        let hash: ApkHash = apk.hash();
        let table = MethodTable::from_apk(apk)?;
        let tag = hash.tag();
        self.apps.insert(
            tag,
            RegisteredApp {
                table,
                multidex: apk.is_multidex(),
            },
        );
        Ok(tag)
    }

    /// Whether the app identified by `tag` has been registered.
    pub fn is_registered(&self, tag: AppTag) -> bool {
        self.apps.contains_key(&tag)
    }

    /// Number of registered apps.
    pub fn registered_apps(&self) -> usize {
        self.apps.len()
    }

    /// Operation statistics.
    pub fn stats(&self) -> ContextManagerStats {
        self.stats
    }

    /// Resolve the raw frames of `context` into method-table indexes for the
    /// app `tag`, innermost first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unregistered apps, or for unresolvable
    /// frames when `skip_unresolvable_frames` is disabled.
    pub fn resolve_indexes(
        &mut self,
        tag: AppTag,
        context: &HookContext,
    ) -> Result<Vec<u32>, Error> {
        let app = self
            .apps
            .get(&tag)
            .ok_or_else(|| Error::not_found("registered app", tag.to_hex()))?;
        let mut indexes = Vec::with_capacity(context.stack.len());
        for frame in &context.stack {
            match app
                .table
                .resolve_frame(&frame.qualified_class, &frame.method_name, frame.line)
            {
                Some(index) => indexes.push(index),
                None => {
                    if self.config.skip_unresolvable_frames {
                        self.stats.frames_skipped += 1;
                    } else {
                        return Err(Error::not_found(
                            "stack frame",
                            format!("{}.{}", frame.qualified_class, frame.method_name),
                        ));
                    }
                }
            }
        }
        Ok(indexes)
    }

    /// Encode and inject the context for one connect event.
    ///
    /// # Errors
    ///
    /// Propagates resolution, encoding and `setsockopt` errors.
    pub fn inject(
        &mut self,
        context: &HookContext,
        kernel: &mut KernelNetStack,
    ) -> Result<HookOutcome, Error> {
        self.stats.connects_handled += 1;
        let tag = context.apk_hash.tag();
        let app = self
            .apps
            .get(&tag)
            .ok_or_else(|| Error::not_found("registered app", tag.to_hex()))?;
        let wide = self.config.force_wide_encoding || app.multidex;

        let indexes = self.resolve_indexes(tag, context)?;
        if indexes.len() > ContextEncoding::max_frames(wide) {
            self.stats.contexts_truncated += 1;
        }
        let payload = ContextEncoding::encode(tag, &indexes, wide)?;

        let mut options = IpOptions::new();
        options.push(IpOption::new(IpOptionKind::BorderPatrolContext, payload)?)?;
        match kernel.setsockopt_ip_options(&context.credentials, context.socket, options) {
            Ok(()) => {
                self.stats.contexts_injected += 1;
                Ok(HookOutcome {
                    used_get_stack_trace: true,
                    encoded_context: true,
                    set_ip_options: true,
                })
            }
            Err(e) => {
                self.stats.injection_failures += 1;
                Err(e)
            }
        }
    }
}

impl SocketConnectHook for ContextManager {
    fn name(&self) -> &str {
        "borderpatrol-context-manager"
    }

    fn after_connect(
        &mut self,
        context: &HookContext,
        kernel: &mut KernelNetStack,
    ) -> Result<HookOutcome, Error> {
        self.inject(context, kernel)
    }
}

/// A thin adapter that lets a shared [`ContextManager`] be installed as a
/// device hook while the caller keeps the `Arc` for inspection.
pub struct SharedContextManager(pub Arc<Mutex<ContextManager>>);

impl SocketConnectHook for SharedContextManager {
    fn name(&self) -> &str {
        "borderpatrol-context-manager"
    }

    fn after_connect(
        &mut self,
        context: &HookContext,
        kernel: &mut KernelNetStack,
    ) -> Result<HookOutcome, Error> {
        self.0.lock().inject(context, kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_appsim::generator::CorpusGenerator;
    use bp_device::device::{Device, Profile};
    use bp_netsim::addr::Endpoint;
    use bp_netsim::kernel::KernelConfig;
    use bp_types::DeviceId;

    use crate::offline::{OfflineAnalyzer, SignatureDatabase};

    fn endpoint() -> Endpoint {
        Endpoint::new([162, 125, 4, 1], 443)
    }

    fn device_with_context_manager(
        spec: bp_appsim::app::AppSpec,
        kernel: KernelConfig,
    ) -> (Device, Arc<Mutex<ContextManager>>, bp_types::AppId) {
        let mut manager = ContextManager::new();
        let apk = spec.build_apk();
        manager.register_app(&apk).unwrap();
        let shared = manager.shared();
        let mut device = Device::new(DeviceId::new(1), kernel);
        device.install_hook(Box::new(SharedContextManager(Arc::clone(&shared))));
        let app = device.install_app(spec, Profile::Work);
        (device, shared, app)
    }

    #[test]
    fn register_and_lookup() {
        let mut manager = ContextManager::new();
        let apk = CorpusGenerator::dropbox().build_apk();
        let tag = manager.register_app(&apk).unwrap();
        assert!(manager.is_registered(tag));
        assert_eq!(manager.registered_apps(), 1);
        assert!(!manager.is_registered(ApkHash::digest(b"other").tag()));
    }

    #[test]
    fn invocation_tags_packets_with_decodable_context() {
        let spec = CorpusGenerator::dropbox();
        let (mut device, shared, app) =
            device_with_context_manager(spec.clone(), KernelConfig::borderpatrol_prototype());

        let invocation = device
            .invoke_functionality(app, "upload", endpoint())
            .unwrap();
        assert!(invocation.hook_outcome.encoded_context);
        assert!(invocation.packets.iter().all(|p| p.has_context_option()));

        // Decode through the offline database and confirm the UploadTask frame
        // is present.
        let apk = spec.build_apk();
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();

        let option = invocation.packets[0]
            .options()
            .find(IpOptionKind::BorderPatrolContext)
            .unwrap();
        let decoded = ContextEncoding::decode(&option.data).unwrap();
        assert_eq!(decoded.app_tag, apk.hash().tag());
        let stack = db
            .resolve_stack(decoded.app_tag, &decoded.frame_indexes)
            .unwrap();
        assert!(stack
            .iter()
            .any(|s| s.qualified_class() == "com/dropbox/android/taskqueue/UploadTask"));

        let stats = shared.lock().stats();
        assert_eq!(stats.contexts_injected, 1);
        assert_eq!(stats.injection_failures, 0);
        // The java.net.Socket connect frame is not an app method and is skipped.
        assert!(stats.frames_skipped >= 1);
    }

    #[test]
    fn context_manager_and_offline_analyzer_agree_on_indexes() {
        let spec = CorpusGenerator::solcalendar();
        let apk = spec.build_apk();
        let mut manager = ContextManager::new();
        manager.register_app(&apk).unwrap();
        let mut db = SignatureDatabase::new();
        OfflineAnalyzer::new().analyze_into(&apk, &mut db).unwrap();

        // Every signature index resolved on-device must decode to the same
        // signature off-device.
        let table = MethodTable::from_apk(&apk).unwrap();
        for (i, sig) in table.signatures().iter().enumerate() {
            let resolved = db.resolve_stack(apk.hash().tag(), &[i as u32]).unwrap();
            assert_eq!(&resolved[0], sig);
        }
    }

    #[test]
    fn missing_kernel_patch_causes_injection_failure() {
        let spec = CorpusGenerator::dropbox();
        let (mut device, shared, app) = device_with_context_manager(spec, KernelConfig::default());
        let invocation = device
            .invoke_functionality(app, "browse", endpoint())
            .unwrap();
        // The hook error is swallowed by the framework, so packets go out untagged.
        assert!(invocation.packets.iter().all(|p| !p.has_context_option()));
        assert_eq!(shared.lock().stats().injection_failures, 1);
        assert_eq!(device.hook_stats().errors, 1);
    }

    #[test]
    fn unregistered_app_fails_resolution() {
        let spec = CorpusGenerator::box_app();
        // Install the hook but never register the app with the manager.
        let shared = ContextManager::new().shared();
        let mut device = Device::new(DeviceId::new(2), KernelConfig::borderpatrol_prototype());
        device.install_hook(Box::new(SharedContextManager(Arc::clone(&shared))));
        let app = device.install_app(spec, Profile::Work);
        let invocation = device
            .invoke_functionality(app, "browse", endpoint())
            .unwrap();
        assert!(invocation.packets.iter().all(|p| !p.has_context_option()));
        assert_eq!(device.hook_stats().errors, 1);
    }

    #[test]
    fn multidex_apps_use_wide_encoding() {
        let spec = CorpusGenerator::dropbox().as_multidex();
        let (mut device, _shared, app) =
            device_with_context_manager(spec, KernelConfig::borderpatrol_prototype());
        let invocation = device
            .invoke_functionality(app, "upload", endpoint())
            .unwrap();
        let option = invocation.packets[0]
            .options()
            .find(IpOptionKind::BorderPatrolContext)
            .unwrap();
        let decoded = ContextEncoding::decode(&option.data).unwrap();
        assert!(decoded.wide);
    }

    #[test]
    fn stripped_debug_info_still_produces_context() {
        // Overloads merge (over-approximation) but context is still attached.
        let spec = CorpusGenerator::dropbox().without_debug_info();
        let (mut device, shared, app) =
            device_with_context_manager(spec, KernelConfig::borderpatrol_prototype());
        let invocation = device
            .invoke_functionality(app, "upload", endpoint())
            .unwrap();
        assert!(invocation.packets.iter().all(|p| p.has_context_option()));
        assert_eq!(shared.lock().stats().contexts_injected, 1);
    }
}
