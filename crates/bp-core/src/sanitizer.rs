//! The Packet Sanitizer.
//!
//! Packets leaving the enterprise perimeter must not carry the BorderPatrol
//! context: routers on the open Internet drop packets with unexpected IP
//! options (RFC 7126), and the option leaks execution-context information the
//! company has no reason to publish (paper §IV-A4).  The sanitizer runs as the
//! last NFQUEUE consumer and strips the option from every conforming packet.

use serde::{Deserialize, Serialize};

use bp_netsim::netfilter::{QueueHandler, Verdict};
use bp_netsim::options::IpOptionKind;
use bp_netsim::packet::Ipv4Packet;

/// Counters the sanitizer keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerStats {
    /// Packets inspected.
    pub packets_processed: u64,
    /// Packets from which a context option was removed.
    pub options_stripped: u64,
    /// Packets that also carried a legacy security option that was removed.
    pub security_options_stripped: u64,
    /// Packets whose options area carried non-zero bytes after End-of-List —
    /// a covert channel (paper §IV-A4) — that were scrubbed.
    pub trailing_data_scrubbed: u64,
}

/// The Packet Sanitizer NFQUEUE consumer.
///
/// # Examples
///
/// ```
/// use bp_core::sanitizer::PacketSanitizer;
/// let sanitizer = PacketSanitizer::new();
/// assert_eq!(sanitizer.stats().packets_processed, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PacketSanitizer {
    stats: SanitizerStats,
    /// Also strip RFC 1108 security options (the option class the kernel patch
    /// additionally permits).
    strip_security_options: bool,
}

impl PacketSanitizer {
    /// Create a sanitizer that strips BorderPatrol context options and legacy
    /// security options.
    pub fn new() -> Self {
        PacketSanitizer {
            stats: SanitizerStats::default(),
            strip_security_options: true,
        }
    }

    /// Create a sanitizer that only strips the BorderPatrol context option.
    pub fn context_only() -> Self {
        PacketSanitizer {
            stats: SanitizerStats::default(),
            strip_security_options: false,
        }
    }

    /// Counters.
    pub fn stats(&self) -> SanitizerStats {
        self.stats
    }

    /// Reset counters.
    pub fn reset_stats(&mut self) {
        self.stats = SanitizerStats::default();
    }

    /// Strip context (and optionally security) options from a packet in
    /// place, and scrub any non-conforming data riding after the
    /// End-of-List marker (a covert channel past the perimeter, §IV-A4).
    pub fn sanitize(&mut self, packet: &mut Ipv4Packet) {
        self.stats.packets_processed += 1;
        let removed = packet
            .options_mut()
            .remove(IpOptionKind::BorderPatrolContext);
        if removed > 0 {
            self.stats.options_stripped += 1;
        }
        if self.strip_security_options {
            let removed = packet.options_mut().remove(IpOptionKind::Security);
            if removed > 0 {
                self.stats.security_options_stripped += 1;
            }
        }
        if packet.options_mut().clear_trailing_data() {
            self.stats.trailing_data_scrubbed += 1;
        }
    }

    /// Strip a whole batch in place.
    ///
    /// Equivalent to calling [`PacketSanitizer::sanitize`] on each packet in
    /// order — same packets, same statistics — but reached through one
    /// [`QueueHandler::handle_batch_into`] dispatch, so the batched filter
    /// chain pays one queue delivery (and one handler lock) per batch
    /// instead of per packet.
    pub fn sanitize_batch(&mut self, packets: &mut [&mut Ipv4Packet]) {
        for packet in packets {
            self.sanitize(packet);
        }
    }
}

impl QueueHandler for PacketSanitizer {
    fn name(&self) -> &str {
        "packet-sanitizer"
    }

    fn handle(&mut self, packet: &mut Ipv4Packet) -> Verdict {
        self.sanitize(packet);
        Verdict::Accept
    }

    fn handle_batch_into(&mut self, packets: &mut [&mut Ipv4Packet], verdicts: &mut Vec<Verdict>) {
        self.sanitize_batch(packets);
        verdicts.clear();
        // bp-lint: allow(fail-closed) the sanitizer mutates in place, never filters
        verdicts.resize(packets.len(), Verdict::Accept);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_netsim::addr::Endpoint;
    use bp_netsim::options::IpOption;

    fn packet_with_options() -> Ipv4Packet {
        let mut packet = Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 2], 40000),
            Endpoint::new([1, 1, 1, 1], 443),
            b"payload".to_vec(),
        );
        packet
            .options_mut()
            .push(
                IpOption::new(
                    IpOptionKind::BorderPatrolContext,
                    vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                )
                .unwrap(),
            )
            .unwrap();
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::Security, vec![0xAB, 0xCD]).unwrap())
            .unwrap();
        packet
            .options_mut()
            .push(IpOption::new(IpOptionKind::Timestamp, vec![0; 4]).unwrap())
            .unwrap();
        packet
    }

    #[test]
    fn strips_context_and_security_but_preserves_other_options() {
        let mut sanitizer = PacketSanitizer::new();
        let mut packet = packet_with_options();
        sanitizer.sanitize(&mut packet);
        assert!(!packet.has_context_option());
        assert!(packet.options().find(IpOptionKind::Security).is_none());
        assert!(packet.options().find(IpOptionKind::Timestamp).is_some());
        let stats = sanitizer.stats();
        assert_eq!(stats.packets_processed, 1);
        assert_eq!(stats.options_stripped, 1);
        assert_eq!(stats.security_options_stripped, 1);
    }

    #[test]
    fn context_only_mode_leaves_security_options() {
        let mut sanitizer = PacketSanitizer::context_only();
        let mut packet = packet_with_options();
        sanitizer.sanitize(&mut packet);
        assert!(!packet.has_context_option());
        assert!(packet.options().find(IpOptionKind::Security).is_some());
    }

    #[test]
    fn sanitize_is_idempotent_and_counts_only_real_strips() {
        let mut sanitizer = PacketSanitizer::new();
        let mut packet = packet_with_options();
        sanitizer.sanitize(&mut packet);
        sanitizer.sanitize(&mut packet);
        let stats = sanitizer.stats();
        assert_eq!(stats.packets_processed, 2);
        assert_eq!(stats.options_stripped, 1);
    }

    #[test]
    fn untagged_packets_pass_untouched() {
        let mut sanitizer = PacketSanitizer::new();
        let mut packet = Ipv4Packet::new(
            Endpoint::new([10, 0, 0, 2], 40000),
            Endpoint::new([1, 1, 1, 1], 443),
            b"plain".to_vec(),
        );
        let before = packet.clone();
        sanitizer.sanitize(&mut packet);
        assert_eq!(packet, before);
        assert_eq!(sanitizer.stats().options_stripped, 0);
    }

    #[test]
    fn queue_handler_always_accepts() {
        let mut sanitizer = PacketSanitizer::new();
        let mut packet = packet_with_options();
        assert!(sanitizer.handle(&mut packet).is_accept());
        assert_eq!(sanitizer.name(), "packet-sanitizer");
    }

    #[test]
    fn batch_and_sequential_sanitization_agree_on_packets_and_stats() {
        let make_batch = || -> Vec<Ipv4Packet> {
            let mut packets = vec![
                packet_with_options(),
                Ipv4Packet::new(
                    Endpoint::new([10, 0, 0, 3], 40001),
                    Endpoint::new([2, 2, 2, 2], 443),
                    b"untagged".to_vec(),
                ),
                packet_with_options(),
            ];
            // One packet with covert trailing data in the options area.
            let mut covert = packet_with_options();
            let mut wire = covert.options().to_bytes();
            wire.push(0); // End-of-List
            wire.push(0x5A);
            *covert.options_mut() = bp_netsim::options::IpOptions::parse(&wire).unwrap();
            packets.push(covert);
            packets
        };

        let mut sequential = PacketSanitizer::new();
        let mut expected = make_batch();
        for packet in &mut expected {
            sequential.sanitize(packet);
        }

        let mut batched = PacketSanitizer::new();
        let mut packets = make_batch();
        let mut refs: Vec<&mut Ipv4Packet> = packets.iter_mut().collect();
        let mut verdicts = Vec::new();
        batched.handle_batch_into(&mut refs, &mut verdicts);

        assert!(verdicts.iter().all(Verdict::is_accept));
        assert_eq!(verdicts.len(), expected.len());
        assert_eq!(packets, expected);
        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(batched.stats().packets_processed, 4);
        assert_eq!(batched.stats().trailing_data_scrubbed, 1);
    }

    #[test]
    fn trailing_covert_data_is_scrubbed() {
        // A packet whose options area smuggles bytes after End-of-List.
        let mut packet = packet_with_options();
        let mut wire = packet.options().to_bytes();
        wire.push(0); // End-of-List
        wire.extend_from_slice(&[0xDE, 0xAD]);
        *packet.options_mut() = bp_netsim::options::IpOptions::parse(&wire).unwrap();
        assert!(packet.options().has_trailing_data());

        let mut sanitizer = PacketSanitizer::new();
        sanitizer.sanitize(&mut packet);
        assert!(!packet.options().has_trailing_data());
        assert_eq!(sanitizer.stats().trailing_data_scrubbed, 1);

        // Idempotent: a second pass scrubs nothing further.
        sanitizer.sanitize(&mut packet);
        assert_eq!(sanitizer.stats().trailing_data_scrubbed, 1);
    }

    #[test]
    fn sanitized_packet_still_serializes_with_valid_checksum() {
        let mut sanitizer = PacketSanitizer::new();
        let mut packet = packet_with_options();
        sanitizer.sanitize(&mut packet);
        let parsed = Ipv4Packet::parse(&packet.to_bytes()).unwrap();
        assert!(!parsed.has_context_option());
        assert_eq!(parsed.payload(), b"payload");
    }
}
